#!/usr/bin/env bash
# Offline CI for the skyline-subset workspace.
#
# Everything here runs without network access: the workspace has no
# registry dependencies (proptest and criterion are in-tree shims under
# crates/), so a cold `cargo build` never touches crates.io.
#
#   ./ci.sh         # fmt + clippy + tier-1 build/test + gated targets
#   ./ci.sh quick   # tier-1 only (what the driver enforces)

set -euo pipefail
cd "$(dirname "$0")"

quick=${1:-}

if [[ "$quick" != "quick" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --check

    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets --quiet -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "$quick" != "quick" ]]; then
    echo "==> parallel differential tests (single- and multi-threaded runner)"
    RUST_TEST_THREADS=1 cargo test -q -p skyline-integration-tests \
        --test parallel_agreement
    cargo test -q -p skyline-integration-tests --test parallel_agreement

    echo "==> opt-in: property tests"
    cargo test -q -p skyline-integration-tests --features property-tests \
        --test property_skyline

    echo "==> opt-in: criterion benches compile + smoke"
    cargo clippy -p skyline-bench --features criterion-benches --benches \
        --quiet -- -D warnings
    cargo bench -p skyline-bench --features criterion-benches \
        --bench dominance -- --test >/dev/null

    echo "==> trace smoke: compute --trace + report"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    ./target/release/skyline generate --dist UI -n 500 -d 4 --seed 1 \
        -o "$tmp/ui.csv"
    ./target/release/skyline compute "$tmp/ui.csv" --trace "$tmp/t.jsonl" \
        >/dev/null
    ./target/release/skyline report "$tmp/t.jsonl" | grep -q "algorithm runs"

    echo "==> trace smoke: parallel engine (--threads) emits shard telemetry"
    ./target/release/skyline compute "$tmp/ui.csv" --threads 3 \
        --trace "$tmp/p.jsonl" >/dev/null
    ./target/release/skyline report "$tmp/p.jsonl" | grep -q "parallel engine"
    grep -q '"type":"shard_scan"' "$tmp/p.jsonl"
    grep -q '"type":"parallel_merge"' "$tmp/p.jsonl"
fi

echo "CI OK"

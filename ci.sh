#!/usr/bin/env bash
# Offline CI for the skyline-subset workspace.
#
# Everything here runs without network access: the workspace has no
# registry dependencies (proptest and criterion are in-tree shims under
# crates/), so a cold `cargo build` never touches crates.io.
#
#   ./ci.sh         # fmt + clippy + tier-1 build/test + gated targets
#   ./ci.sh quick   # tier-1 only (what the driver enforces)

set -euo pipefail
cd "$(dirname "$0")"

quick=${1:-}

if [[ "$quick" != "quick" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --check

    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets --quiet -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "$quick" != "quick" ]]; then
    echo "==> parallel differential tests (single- and multi-threaded runner)"
    RUST_TEST_THREADS=1 cargo test -q -p skyline-integration-tests \
        --test parallel_agreement
    cargo test -q -p skyline-integration-tests --test parallel_agreement

    echo "==> delta engine: differential oracle + property suites (tier-1)"
    cargo test -q -p skyline-integration-tests --test delta_oracle
    cargo test -q -p skyline-integration-tests --test delta_properties

    echo "==> opt-in: property tests"
    cargo test -q -p skyline-integration-tests --features property-tests \
        --test property_skyline

    echo "==> opt-in: criterion benches compile + smoke"
    cargo clippy -p skyline-bench --features criterion-benches --benches \
        --quiet -- -D warnings
    cargo bench -p skyline-bench --features criterion-benches \
        --bench dominance -- --test >/dev/null

    echo "==> trace smoke: compute --trace + report"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    ./target/release/skyline generate --dist UI -n 500 -d 4 --seed 1 \
        -o "$tmp/ui.csv"
    ./target/release/skyline compute "$tmp/ui.csv" --trace "$tmp/t.jsonl" \
        >/dev/null
    ./target/release/skyline report "$tmp/t.jsonl" | grep -q "algorithm runs"

    echo "==> trace smoke: parallel engine (--threads) emits shard telemetry"
    ./target/release/skyline compute "$tmp/ui.csv" --threads 3 \
        --trace "$tmp/p.jsonl" >/dev/null
    ./target/release/skyline report "$tmp/p.jsonl" | grep -q "parallel engine"
    grep -q '"type":"shard_scan"' "$tmp/p.jsonl"
    grep -q '"type":"parallel_merge"' "$tmp/p.jsonl"

    echo "==> server smoke: serve + cache hit + mutation patches cache + shutdown"
    ./target/release/skyline serve --port 0 --threads 2 \
        --trace "$tmp/serve.jsonl" > "$tmp/serve.out" &
    serve_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/serve.out" && break
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$tmp/serve.out")
    [[ -n "$addr" ]] || { echo "server never reported its address"; exit 1; }
    curl -sf "http://$addr/healthz" | grep -q '"status":"ok"'
    curl -sf -X POST "http://$addr/datasets" \
        -d '{"name": "ci", "synthetic": {"distribution": "UI", "n": 400, "dims": 4, "seed": 1}}' \
        | grep -q '"points":400'
    curl -sf "http://$addr/skyline?dataset=ci&algo=SDI-Subset" \
        | grep -q '"cached":false'
    curl -sf "http://$addr/skyline?dataset=ci&algo=SDI-Subset" \
        | grep -q '"cached":true'
    curl -sf -X POST "http://$addr/datasets/ci/points" \
        -d '{"rows": [[0.001, 0.001, 0.001, 0.001]]}' \
        | grep -q '"cache_patched":1'
    curl -sf "http://$addr/skyline?dataset=ci&algo=SDI-Subset" \
        | grep -q '"cached":true'
    curl -sf "http://$addr/metrics" | grep -q '"hits":2'
    curl -sf "http://$addr/metrics" | grep -q '"patched":1'
    curl -sf "http://$addr/metrics?format=prometheus" \
        | grep -q '^# TYPE skyline_stage_us histogram'
    curl -sf -X POST "http://$addr/shutdown" | grep -q 'shutting down'
    wait "$serve_pid"   # clean exit after graceful shutdown
    grep -q '"type":"request"' "$tmp/serve.jsonl"
    grep -q '"type":"cache_hit"' "$tmp/serve.jsonl"
    grep -q '"type":"delta_applied"' "$tmp/serve.jsonl"

    echo "==> serve bench artefact (quick)"
    ./target/release/repro bench-json --serve --requests 3 \
        --out "$tmp/BENCH_SERVE.json" 2>/dev/null
    grep -q '"req_per_sec"' "$tmp/BENCH_SERVE.json"

    echo "==> cluster smoke: 2 shards + coordinator, scatter-gather, shard loss"
    ./target/release/skyline serve --port 0 --threads 2 \
        --trace "$tmp/shard0.jsonl" > "$tmp/shard0.out" &
    shard0_pid=$!
    ./target/release/skyline serve --port 0 --threads 2 > "$tmp/shard1.out" &
    shard1_pid=$!
    for f in shard0 shard1; do
        for _ in $(seq 1 50); do
            grep -q '^listening on ' "$tmp/$f.out" && break
            sleep 0.1
        done
    done
    shard0=$(sed -n 's/^listening on //p' "$tmp/shard0.out")
    shard1=$(sed -n 's/^listening on //p' "$tmp/shard1.out")
    [[ -n "$shard0" && -n "$shard1" ]] || { echo "shards never reported addresses"; exit 1; }
    ./target/release/skyline cluster --shards "$shard0,$shard1" --port 0 \
        --trace "$tmp/cluster.jsonl" > "$tmp/cluster.out" &
    cluster_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/cluster.out" && break
        sleep 0.1
    done
    coord=$(sed -n 's/^listening on //p' "$tmp/cluster.out")
    [[ -n "$coord" ]] || { echo "coordinator never reported its address"; exit 1; }
    curl -sf "http://$coord/healthz" | grep -q '"shards":2'
    curl -sf -X POST "http://$coord/datasets" \
        -d '{"name": "ci", "synthetic": {"distribution": "AC", "n": 600, "dims": 4, "seed": 3}}' \
        | grep -q '"points":600'
    curl -sf "http://$coord/skyline?dataset=ci&algo=SDI-Subset" \
        | grep -q '"partial":false'
    curl -sf "http://$coord/metrics" | grep -q '"shards":\['

    echo "==> tracing smoke: propagated trace id + stitched shard spans"
    trace_id=feedbead12345678
    curl -sf -D "$tmp/trace-hdrs" -H "X-Skyline-Trace: $trace_id" \
        "http://$coord/skyline?dataset=ci&algo=SDI-Subset&timings=1" \
        | grep -q '"timings":{'
    grep -qi "^x-skyline-trace: $trace_id" "$tmp/trace-hdrs"
    grep -qi '^x-skyline-stage-times: .*shard_wait=.*shard0\.' "$tmp/trace-hdrs"
    grep -q "\"type\":\"shard_rpc\".*\"trace\":\"$trace_id\"" "$tmp/cluster.jsonl"
    grep -q "\"type\":\"stage_breakdown\".*\"trace\":\"$trace_id\"" "$tmp/cluster.jsonl"
    grep -q "\"trace\":\"$trace_id\"" "$tmp/shard0.jsonl"

    echo "==> prometheus exposition on the coordinator"
    curl -sf "http://$coord/metrics?format=prometheus" > "$tmp/prom.txt"
    grep -q '^# TYPE skyline_requests_total counter' "$tmp/prom.txt"
    grep -q '^# TYPE skyline_stage_us histogram' "$tmp/prom.txt"
    grep -q 'skyline_shard_rpc_requests{shard="0"}' "$tmp/prom.txt"

    kill -9 "$shard1_pid"    # shard death degrades, never errors
    wait "$shard1_pid" 2>/dev/null || true
    curl -sf "http://$coord/skyline?dataset=ci&algo=SDI-Subset" \
        | grep -q '"partial":true,"missing_shards":\[1\]'
    curl -sf -X POST "http://$coord/shutdown" | grep -q 'shutting down'
    wait "$cluster_pid"
    curl -sf -X POST "http://$shard0/shutdown" >/dev/null
    wait "$shard0_pid"
    grep -q '"type":"shard_rpc"' "$tmp/cluster.jsonl"
    grep -q '"type":"cluster_merge"' "$tmp/cluster.jsonl"
    ./target/release/skyline report "$tmp/cluster.jsonl" --stages \
        | grep -q 'dominant stage'

    echo "==> cluster bench artefact (quick)"
    ./target/release/repro bench-json --cluster --requests 2 \
        --out "$tmp/BENCH_CLUSTER.json" 2>/dev/null
    grep -q '"shards":4' "$tmp/BENCH_CLUSTER.json"

    echo "==> chaos smoke: kill -9 mid-flight, reboot from the WAL, same answer"
    ./target/release/skyline serve --port 0 --threads 2 \
        --data-dir "$tmp/data" --fsync always > "$tmp/crash.out" &
    serve_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/crash.out" && break
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$tmp/crash.out")
    [[ -n "$addr" ]] || { echo "durable server never reported its address"; exit 1; }
    curl -sf -X POST "http://$addr/datasets" \
        -d '{"name": "crashy", "synthetic": {"distribution": "AC", "n": 200, "dims": 4, "seed": 9}}' \
        | grep -q '"points":200'
    curl -sf -X POST "http://$addr/datasets/crashy/points" \
        -d '{"rows": [[0.001, 0.001, 0.001, 0.001]]}' | grep -q '"inserted":1'
    before=$(curl -sf "http://$addr/skyline?dataset=crashy&algo=SFS")
    kill -9 "$serve_pid"    # hard crash: no graceful shutdown, no final flush
    wait "$serve_pid" 2>/dev/null || true

    ./target/release/skyline serve --port 0 --threads 2 \
        --data-dir "$tmp/data" > "$tmp/reboot.out" &
    serve_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/reboot.out" && break
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$tmp/reboot.out")
    [[ -n "$addr" ]] || { echo "rebooted server never reported its address"; exit 1; }
    after=$(curl -sf "http://$addr/skyline?dataset=crashy&algo=SFS")
    before_core=$(printf '%s' "$before" | sed 's/"elapsed_us":[0-9]*//')
    after_core=$(printf '%s' "$after" | sed 's/"elapsed_us":[0-9]*//')
    [[ "$before_core" == "$after_core" ]] || {
        echo "recovery mismatch:"; echo "  before: $before"; echo "  after:  $after"; exit 1; }
    curl -sf "http://$addr/metrics" | grep -q '"recovery_replayed_records":20[12]'
    curl -sf -X POST "http://$addr/shutdown" | grep -q 'shutting down'
    wait "$serve_pid"

    echo "==> replication smoke: follower converges, survives a primary kill -9"
    ./target/release/skyline serve --port 0 --threads 2 \
        --data-dir "$tmp/primary" --fsync always > "$tmp/primary.out" &
    primary_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/primary.out" && break
        sleep 0.1
    done
    paddr=$(sed -n 's/^listening on //p' "$tmp/primary.out")
    [[ -n "$paddr" ]] || { echo "primary never reported its address"; exit 1; }
    pport=${paddr##*:}
    curl -sf -X POST "http://$paddr/datasets" \
        -d '{"name": "rep", "synthetic": {"distribution": "AC", "n": 300, "dims": 4, "seed": 7}}' \
        | grep -q '"points":300'
    ./target/release/skyline serve --port 0 --threads 2 \
        --follow "$paddr" --follow-wait-ms 200 > "$tmp/follower.out" &
    follower_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/follower.out" && break
        sleep 0.1
    done
    faddr=$(sed -n 's/^listening on //p' "$tmp/follower.out")
    [[ -n "$faddr" ]] || { echo "follower never reported its address"; exit 1; }

    # skyline_core: "version":N plus "ids":[...], timing fields stripped.
    skyline_core() {
        local body
        body=$(curl -sf "http://$1/skyline?dataset=rep&algo=SFS" 2>/dev/null) || return 0
        printf '%s;%s' \
            "$(printf '%s' "$body" | grep -o '"version":[0-9]*')" \
            "$(printf '%s' "$body" | grep -o '"ids":\[[^]]*\]')"
    }
    converge() {
        for _ in $(seq 1 100); do
            p=$(skyline_core "$paddr"); f=$(skyline_core "$faddr")
            [[ -n "$p" && "$p" == "$f" ]] && return 0
            sleep 0.1
        done
        echo "follower never converged: primary=$p follower=$f"; return 1
    }
    converge                 # initial snapshot sync
    curl -sf -X POST "http://$paddr/datasets/rep/points" \
        -d '{"rows": [[0.001, 0.001, 0.001, 0.001]]}' | grep -q '"inserted":1'
    converge                 # this mutation had to travel the change feed
    curl -sfD "$tmp/replica-hdrs" "http://$faddr/skyline?dataset=rep" >/dev/null
    grep -qi '^x-skyline-replica-lag: ' "$tmp/replica-hdrs"
    curl -sf "http://$faddr/healthz" | grep -q '"role":"replica"'
    # Writes bounce to the primary with a 307 + Location.
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://$faddr/datasets/rep/points" -d '{"rows": [[1, 1, 1, 1]]}')
    [[ "$code" == "307" ]] || { echo "follower accepted a write ($code)"; exit 1; }
    # Replication counters, JSON and prometheus exposition.
    curl -sf "http://$faddr/metrics" | grep -q '"resyncs_total":1'
    curl -sf "http://$faddr/metrics?format=prometheus" > "$tmp/replica-prom.txt"
    grep -q '^skyline_replica_applied_total [1-9]' "$tmp/replica-prom.txt"
    grep -q 'skyline_replica_lag_versions{dataset="rep"}' "$tmp/replica-prom.txt"
    # The feed itself: dense records from the start, resumable cursor.
    curl -sf "http://$paddr/datasets/rep/changes?since=0&limit=2" \
        | grep -q '"records":\[{"version":1,'
    curl -sf "http://$paddr/datasets/rep/changes?since=301&subscribe=1&wait_ms=100" \
        | grep -q '"heartbeat":true'

    kill -9 "$primary_pid"   # hard crash mid-stream: the follower holds its cursor
    wait "$primary_pid" 2>/dev/null || true
    sleep 0.3
    for _ in $(seq 1 20); do   # rebind the vacated port, retrying while the kernel frees it
        ./target/release/skyline serve --port "$pport" --threads 2 \
            --data-dir "$tmp/primary" --fsync always > "$tmp/primary2.out" 2>&1 &
        primary_pid=$!
        for _ in $(seq 1 30); do
            grep -q '^listening on ' "$tmp/primary2.out" && break
            kill -0 "$primary_pid" 2>/dev/null || break
            sleep 0.1
        done
        grep -q '^listening on ' "$tmp/primary2.out" && break
        wait "$primary_pid" 2>/dev/null || true
        sleep 0.2
    done
    grep -q '^listening on ' "$tmp/primary2.out" \
        || { echo "primary never came back on port $pport"; exit 1; }
    curl -sf -X POST "http://$paddr/datasets/rep/points" \
        -d '{"rows": [[0.0005, 0.0005, 0.0005, 0.0005]]}' | grep -q '"inserted":1'
    converge                 # reconnect-replay from the follower's cursor
    curl -sf "http://$faddr/metrics" | grep -q '"resyncs_total":1'   # replay, not resync
    curl -sf -X POST "http://$paddr/shutdown" | grep -q 'shutting down'
    wait "$primary_pid"
    curl -sf -X POST "http://$faddr/shutdown" | grep -q 'shutting down'
    wait "$follower_pid"

    echo "==> replication bench artefact (quick)"
    ./target/release/repro bench-json --replicated --requests 2 \
        --out "$tmp/BENCH_REPL.json" 2>/dev/null
    grep -q '"lag":{' "$tmp/BENCH_REPL.json"
    grep -q '"follower_reads"' "$tmp/BENCH_REPL.json"

    echo "==> failover smoke: kill -9 the primary, coordinator promotes the replica"
    ./target/release/skyline serve --port 0 --threads 2 \
        --data-dir "$tmp/fo-primary" --fsync always > "$tmp/fo-primary.out" &
    primary_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/fo-primary.out" && break
        sleep 0.1
    done
    paddr=$(sed -n 's/^listening on //p' "$tmp/fo-primary.out")
    [[ -n "$paddr" ]] || { echo "failover primary never reported its address"; exit 1; }
    ./target/release/skyline serve --port 0 --threads 2 \
        --follow "$paddr" --follow-wait-ms 100 > "$tmp/fo-follower.out" &
    follower_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/fo-follower.out" && break
        sleep 0.1
    done
    faddr=$(sed -n 's/^listening on //p' "$tmp/fo-follower.out")
    [[ -n "$faddr" ]] || { echo "failover follower never reported its address"; exit 1; }
    ./target/release/skyline cluster --shards "$paddr" --replicas "0=$faddr" \
        --failover --probe-ms 100 --suspect-misses 2 \
        --manifest "$tmp/fo-manifest.jsonl" --port 0 > "$tmp/fo-cluster.out" &
    cluster_pid=$!
    for _ in $(seq 1 50); do
        grep -q '^listening on ' "$tmp/fo-cluster.out" && break
        sleep 0.1
    done
    coord=$(sed -n 's/^listening on //p' "$tmp/fo-cluster.out")
    [[ -n "$coord" ]] || { echo "failover coordinator never reported its address"; exit 1; }
    curl -sf -X POST "http://$coord/datasets" \
        -d '{"name": "fo", "synthetic": {"distribution": "UI", "n": 100, "dims": 3, "seed": 5}}' \
        | grep -q '"points":100'
    # Let the replica catch up before the crash: the promotion target
    # must hold everything the client was acked.
    for _ in $(seq 1 50); do
        curl -sf "http://$faddr/healthz" | grep -q '"applied_version":100' && break
        sleep 0.1
    done
    curl -sf "http://$faddr/healthz" | grep -q '"applied_version":100' \
        || { echo "replica never caught up before the crash"; exit 1; }

    kill -9 "$primary_pid"   # hard crash: the detector must notice and promote
    wait "$primary_pid" 2>/dev/null || true
    # Within the detection budget (2 misses at 100ms probes plus the
    # promotion round-trips) a coordinator write lands on the promoted
    # replica. Poll: earlier attempts 502 while the primary is "down".
    promoted=""
    for _ in $(seq 1 50); do
        if curl -sf -X POST "http://$coord/datasets/fo/points" \
            -d '{"rows": [[0.001, 0.001, 0.001]]}' 2>/dev/null | grep -q '"inserted":1'; then
            promoted=yes
            break
        fi
        sleep 0.2
    done
    [[ -n "$promoted" ]] || { echo "no write landed after the primary died"; exit 1; }
    curl -sf "http://$faddr/healthz" | grep -q '"role":"primary"' \
        || { echo "replica was never promoted"; exit 1; }
    curl -sf "http://$coord/metrics?format=prometheus" > "$tmp/fo-prom.txt"
    grep -q '^skyline_promotions_total 1' "$tmp/fo-prom.txt" \
        || { echo "skyline_promotions_total never incremented"; cat "$tmp/fo-prom.txt"; exit 1; }
    grep -q 'skyline_shard_epoch{shard="0"} 1' "$tmp/fo-prom.txt"
    grep -q '"op":"promote"' "$tmp/fo-manifest.jsonl"
    curl -sf -X POST "http://$coord/shutdown" | grep -q 'shutting down'
    wait "$cluster_pid"
    curl -sf -X POST "http://$faddr/shutdown" | grep -q 'shutting down'
    wait "$follower_pid"

    echo "==> opt-in: chaos fault-injection harness"
    cargo test -q -p skyline-integration-tests --features chaos --test chaos
fi

echo "CI OK"

//! Chaos harness: drives the server through injected faults — WAL I/O
//! errors, slow writes, torn log tails, handler panics, and overload —
//! and asserts it degrades *correctly*: unacked writes are rejected
//! whole, recovery lands on the last acked version, panics turn into
//! 500s, and excess load is shed with 503 + `Retry-After`.
//!
//! Requires the `chaos` feature (`--features chaos --test chaos`),
//! which compiles the fault probes into `skyline-serve`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use skyline_core::dataset::Dataset;
use skyline_core::delta::SkylineDelta;
use skyline_core::metrics::Metrics;
use skyline_core::streaming::StreamingSkyline;
use skyline_integration_tests::{
    http_client as client, oracle_skyline, parse_skyline_response, rows_json,
};
use skyline_obs::json::Value;
use skyline_serve::faults::{self, Fault};
use skyline_serve::wal::{self, FsyncPolicy};
use skyline_serve::{Server, ServerConfig, ServerHandle};

/// The fault table is process-global, so chaos tests must not overlap.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serialises a test and guarantees the fault table is clean on entry
/// and on exit, even when the test panics.
struct FaultScope<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl FaultScope<'_> {
    fn enter() -> FaultScope<'static> {
        let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        FaultScope { _guard: guard }
    }
}

impl Drop for FaultScope<'_> {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn sample_rows() -> Vec<Vec<f64>> {
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 120,
        dims: 4,
        seed: 0xC0DE,
    };
    let data = spec.generate();
    data.iter().map(|(_, row)| row.to_vec()).collect()
}

fn start_memory_server(max_inflight: usize) -> ServerHandle {
    Server::start(ServerConfig {
        threads: 4,
        max_inflight,
        ..ServerConfig::default()
    })
    .expect("start chaos server")
}

fn temp_data_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("skyline-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL write error rejects the whole batch — nothing is applied, the
/// client sees 500 — and once the fault clears, writes succeed again.
#[test]
fn wal_io_error_rejects_the_write_whole_then_recovers() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("walerr");
    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let created = client::post(addr, "/datasets", "{\"name\": \"w\", \"rows\": [[1, 2]]}").unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    faults::inject("wal_append", Fault::IoError(1));
    let failed = client::post(addr, "/datasets/w/points", "{\"rows\": [[0.5, 0.5]]}").unwrap();
    assert_eq!(failed.status, 500, "{}", failed.body_str());
    assert!(
        failed.body_str().contains("durability failure"),
        "{}",
        failed.body_str()
    );

    // Nothing was applied: still one point at the creation version.
    let resp = client::get(addr, "/skyline?dataset=w").unwrap();
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert_eq!(version, 1, "unacked insert did not move the version");
    assert_eq!(ids, vec![0]);

    // Fault budget exhausted: the retried insert succeeds.
    let ok = client::post(addr, "/datasets/w/points", "{\"rows\": [[0.5, 0.5]]}").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body_str());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slow WAL writes slow the ack but do not fail it.
#[test]
fn slow_wal_writes_delay_the_ack_but_succeed() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("walslow");
    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    client::post(addr, "/datasets", "{\"name\": \"s\", \"rows\": [[1, 2]]}").unwrap();

    faults::inject("wal_append", Fault::Delay(Duration::from_millis(80)));
    let t = Instant::now();
    let ok = client::post(addr, "/datasets/s/points", "{\"rows\": [[3, 4]]}").unwrap();
    let elapsed = t.elapsed();
    assert_eq!(ok.status, 200, "{}", ok.body_str());
    assert!(
        elapsed >= Duration::from_millis(70),
        "ack waited for the WAL"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A handler panic is isolated into a 500, counted in `/metrics`, and
/// the server keeps serving.
#[test]
fn handler_panic_becomes_500_and_server_stays_up() {
    let _scope = FaultScope::enter();
    let server = start_memory_server(0);
    let addr = server.local_addr();

    faults::inject("handler", Fault::Panic(1));
    let resp = client::get(addr, "/healthz").unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body_str());
    assert!(resp.body_str().contains("panicked"), "{}", resp.body_str());

    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status, 200, "server survived the panic");
    let metrics = client::get(addr, "/metrics").unwrap();
    let v = Value::parse(&metrics.body_str()).unwrap();
    assert!(
        v.get("panics_total").unwrap().as_u64().unwrap() >= 1,
        "{}",
        metrics.body_str()
    );
}

/// With `max_inflight = 1` and a slow compute pinning the only slot, a
/// concurrent query is shed immediately with 503 + `Retry-After`.
#[test]
fn overload_sheds_quickly_with_retry_after() {
    let _scope = FaultScope::enter();
    let server = start_memory_server(1);
    let addr = server.local_addr();
    let rows = sample_rows();
    let created = client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"load\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    faults::inject("compute", Fault::Delay(Duration::from_millis(400)));
    let slow = std::thread::spawn(move || client::get(addr, "/skyline?dataset=load").unwrap());
    // Let the slow query take the only admission slot.
    std::thread::sleep(Duration::from_millis(100));

    let t = Instant::now();
    let shed = client::get(addr, "/skyline?dataset=load&algo=SFS").unwrap();
    let elapsed = t.elapsed();
    assert_eq!(shed.status, 503, "{}", shed.body_str());
    assert_eq!(shed.header("retry-after"), Some("1"), "{:?}", shed.headers);
    assert!(
        elapsed < Duration::from_millis(50),
        "shedding must be immediate, took {elapsed:?}"
    );

    let slow_resp = slow.join().unwrap();
    assert_eq!(slow_resp.status, 200, "the admitted query completed");

    let metrics = client::get(addr, "/metrics").unwrap();
    let v = Value::parse(&metrics.body_str()).unwrap();
    assert!(
        v.get("shed_total").unwrap().as_u64().unwrap() >= 1,
        "{}",
        metrics.body_str()
    );
}

/// A torn WAL tail (crash mid-append) is truncated at recovery: the
/// server boots, drops the torn suffix, and serves exactly the acked
/// prefix — verified against the brute-force oracle.
#[test]
fn torn_wal_tail_recovers_to_the_last_acked_version() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("torn");
    let rows = sample_rows();

    let acked_version = {
        // fsync=always so every acked record is on disk when we "crash".
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let created = client::post(
            addr,
            "/datasets",
            &format!("{{\"name\": \"t\", \"rows\": {}}}", rows_json(&rows)),
        )
        .unwrap();
        assert_eq!(created.status, 201, "{}", created.body_str());
        let resp = client::get(addr, "/skyline?dataset=t&algo=SFS").unwrap();
        parse_skyline_response(&resp.body_str()).0
    };

    // Simulate a crash mid-append: a torn, unterminated record at the
    // tail of the log.
    let wal_path = dir.join("t.wal");
    let mut torn = std::fs::read(&wal_path).unwrap();
    torn.extend_from_slice(b"{\"op\":\"insert\",\"v\":999,\"row\":[0.0");
    std::fs::write(&wal_path, &torn).unwrap();

    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/skyline?dataset=t&algo=SFS").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert_eq!(
        version, acked_version,
        "torn suffix dropped, acked prefix kept"
    );
    let oracle = oracle_skyline(&Dataset::from_rows(&rows).unwrap());
    assert_eq!(
        ids, oracle,
        "recovered skyline equals the brute-force oracle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// WAL replay reconstructs the *delta stream*, not just the final
/// state: after a simulated kill -9 (torn record at the log tail, no
/// graceful handover), recovery must re-produce exactly the versioned
/// enter/leave sets the uncrashed process emitted — with a
/// `wal_append`-fault-rejected mutation leaving no trace in the stream.
#[test]
fn wal_replay_reconstructs_the_live_delta_stream() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("deltastream");
    let initial = vec![
        vec![1.0, 5.0, 5.0],
        vec![5.0, 1.0, 5.0],
        vec![5.0, 5.0, 1.0],
        vec![6.0, 6.0, 6.0],
    ];

    // The uncrashed run's delta stream, mirrored independently of the
    // server: same rows, same order, same handles.
    let mut mirror = StreamingSkyline::new(3).unwrap();
    let mut metrics = Metrics::new();
    let mut live_stream: Vec<SkylineDelta> = Vec::new();
    for row in &initial {
        let (_, d) = mirror.insert_delta(row, &mut metrics).unwrap();
        live_stream.push(d);
    }

    {
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let created = client::post(
            addr,
            "/datasets",
            &format!("{{\"name\": \"d\", \"rows\": {}}}", rows_json(&initial)),
        )
        .unwrap();
        assert_eq!(created.status, 201, "{}", created.body_str());

        // A WAL-rejected mutation is not acked, so it must contribute
        // nothing to either stream (and burn no handle).
        faults::inject("wal_append", Fault::IoError(1));
        let failed =
            client::post(addr, "/datasets/d/points", "{\"rows\": [[0.5, 0.5, 0.5]]}").unwrap();
        assert_eq!(failed.status, 500, "{}", failed.body_str());
        faults::clear();

        // Acked mutations: a dominator enters (old skyline leaves), a
        // dominated row moves only the version, the dominator's removal
        // resurrects the old skyline, a final fresh point enters.
        let script: Vec<(&str, &str)> = vec![
            ("POST", "{\"rows\": [[0.5, 0.5, 0.5]]}"),
            ("POST", "{\"rows\": [[7.0, 7.0, 7.0]]}"),
            ("DELETE", "{\"ids\": [4]}"),
            ("POST", "{\"rows\": [[0.25, 6.0, 6.0]]}"),
        ];
        for (method, body) in script {
            let resp =
                client::request(addr, method, "/datasets/d/points", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200, "{method} {body}: {}", resp.body_str());
            let d = match method {
                "POST" => {
                    let row: Vec<f64> = Value::parse(body)
                        .unwrap()
                        .get("rows")
                        .and_then(Value::as_arr)
                        .unwrap()[0]
                        .as_arr()
                        .unwrap()
                        .iter()
                        .map(|x| x.as_f64().unwrap())
                        .collect();
                    mirror.insert_delta(&row, &mut metrics).unwrap().1
                }
                _ => mirror.remove_delta(4, &mut metrics).unwrap(),
            };
            // The server's live response must already carry the
            // mirror's delta — version, entered, and left.
            let v = Value::parse(&resp.body_str()).unwrap();
            let ids = |field: &str| -> Vec<u32> {
                v.get(field)
                    .and_then(Value::as_arr)
                    .unwrap_or_else(|| panic!("{field} missing: {}", resp.body_str()))
                    .iter()
                    .map(|x| x.as_u64().unwrap() as u32)
                    .collect()
            };
            assert_eq!(v.get("version").and_then(Value::as_u64), Some(d.version));
            assert_eq!(ids("entered"), d.entered, "{method} {body}");
            assert_eq!(ids("left"), d.left, "{method} {body}");
            live_stream.push(d);
        }
        // Dropping the handle stops the server; fsync=always means every
        // acked record is already on disk, like a kill -9 after the ack.
    }

    // Kill -9 mid-append: a torn, unterminated record at the tail.
    let wal_path = dir.join("d.wal");
    let mut torn = std::fs::read(&wal_path).unwrap();
    torn.extend_from_slice(b"{\"op\":\"insert\",\"v\":999,\"row\":[0.0");
    std::fs::write(&wal_path, &torn).unwrap();

    // Replay through the recovery path itself and compare streams.
    let recovered = wal::recover(&wal::StorageConfig::new(dir.clone()), "d")
        .unwrap()
        .expect("dataset recovers");
    let replayed: Vec<_> = recovered.records.iter().map(|r| r.delta.clone()).collect();
    assert_eq!(
        replayed, live_stream,
        "replayed delta stream must equal the uncrashed run's"
    );
    assert_eq!(recovered.stream.version(), mirror.version());
    assert_eq!(recovered.stream.skyline(), mirror.skyline());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot failure during compaction is non-fatal: the write is
/// acked from the log alone and the dataset stays fully recoverable.
#[test]
fn snapshot_failure_is_tolerated_and_data_survives() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("snapfail");
    let acked = {
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        client::post(addr, "/datasets", "{\"name\": \"p\", \"rows\": [[5, 5]]}").unwrap();
        faults::inject("snapshot", Fault::IoError(100));
        // Insert enough to cross any compaction threshold attempt.
        for i in 0..50 {
            let ok = client::post(
                addr,
                "/datasets/p/points",
                &format!("{{\"rows\": [[{}, {}]]}}", i + 6, i + 6),
            )
            .unwrap();
            assert_eq!(ok.status, 200, "{}", ok.body_str());
        }
        faults::clear();
        let resp = client::get(addr, "/skyline?dataset=p").unwrap();
        parse_skyline_response(&resp.body_str())
    };

    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/skyline?dataset=p").unwrap();
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert_eq!(version, acked.0);
    assert_eq!(ids, acked.2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// At-least-once pin: the feed may deliver any record any number of
/// times, and version arithmetic makes that harmless — every duplicate
/// is a no-op, while a version *gap* is refused outright rather than
/// silently applied. No delivery schedule can skip a version.
#[test]
fn feed_delivery_is_at_least_once_and_never_skips() {
    let _scope = FaultScope::enter();
    let server = start_memory_server(64);
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        "{\"name\": \"alo\", \"rows\": [[9, 1], [1, 9]]}",
    )
    .unwrap();
    for i in 0..6 {
        let body = format!("{{\"rows\": [[{}, {}]]}}", 8 - i, 8 - i);
        assert_eq!(
            client::post(addr, "/datasets/alo/points", &body)
                .unwrap()
                .status,
            200
        );
    }
    let resp = client::get(addr, "/datasets/alo/changes?since=0&ops=1").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let (records, _latest) =
        skyline_serve::replica::parse_batch(&Value::parse(&resp.body_str()).unwrap())
            .expect("parse feed batch");
    assert_eq!(records.len(), 8, "2 creation rows + 6 inserts");

    // A follower built from nothing, fed the batch once: all applied.
    let registry = skyline_serve::registry::Registry::with_feed_retain(64);
    let empty = StreamingSkyline::restore(2, &[], 0).unwrap();
    let entry = registry.install_replica("alo", empty).unwrap();
    for record in &records {
        assert!(matches!(
            entry.apply_replicated(record).unwrap(),
            skyline_serve::registry::ReplicaApply::Applied
        ));
    }
    let converged = entry.streaming_skyline();

    // The same batch redelivered whole — twice: pure no-ops.
    for _ in 0..2 {
        for record in &records {
            assert!(matches!(
                entry.apply_replicated(record).unwrap(),
                skyline_serve::registry::ReplicaApply::Duplicate
            ));
        }
    }
    assert_eq!(
        entry.streaming_skyline(),
        converged,
        "duplicate delivery must not change the replica"
    );

    // A gapped delivery — record 1, then record 3 — is refused, and the
    // refusal leaves the replica exactly where it was.
    let gapped = registry
        .install_replica("gap", StreamingSkyline::restore(2, &[], 0).unwrap())
        .unwrap();
    assert!(matches!(
        gapped.apply_replicated(&records[0]).unwrap(),
        skyline_serve::registry::ReplicaApply::Applied
    ));
    let before = gapped.streaming_skyline();
    assert!(matches!(
        gapped.apply_replicated(&records[2]).unwrap(),
        skyline_serve::registry::ReplicaApply::Diverged(_)
    ));
    assert_eq!(
        gapped.streaming_skyline(),
        before,
        "a refused gap must not touch the replica"
    );
}

/// Kill -9 the primary mid-stream: the follower keeps its cursor
/// through the outage and reconnect-replays from it once the primary
/// restarts on the same address — ending byte-identical, no resync.
#[test]
fn follower_replays_from_cursor_after_primary_kill_and_restart() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("replay");
    let paddr;
    {
        let primary = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        })
        .unwrap();
        paddr = primary.local_addr();
        client::post(
            paddr,
            "/datasets",
            "{\"name\": \"r\", \"rows\": [[9, 1], [1, 9]]}",
        )
        .unwrap();
        for i in 0..4 {
            let body = format!("{{\"rows\": [[{}, {}]]}}", 8 - i, 8 - i);
            assert_eq!(
                client::post(paddr, "/datasets/r/points", &body)
                    .unwrap()
                    .status,
                200
            );
        }

        // Follower outlives the primary's first incarnation.
        let follower = Server::start(ServerConfig {
            follow: Some(paddr),
            follow_wait_ms: 100,
            ..ServerConfig::default()
        })
        .unwrap();
        let faddr = follower.local_addr();
        wait_for_follower(faddr, "r", 6);

        // fsync=always: dropping the handle is a kill -9 after the last
        // ack. The follower is left long-polling a dead socket.
        drop(primary);
        std::thread::sleep(Duration::from_millis(300));

        // Restart on the SAME address with the SAME WAL; a follower
        // must be able to resume its cursor against the reborn primary.
        let primary = restart_on(paddr, &dir);
        for i in 0..3 {
            let body = format!("{{\"rows\": [[{}, {}]]}}", 3 - i, 3 - i);
            assert_eq!(
                client::post(paddr, "/datasets/r/points", &body)
                    .unwrap()
                    .status,
                200,
                "restarted primary rejects writes"
            );
        }
        wait_for_follower(faddr, "r", 9);

        // Byte-identical at the tip, and the follower never resynced a
        // second time: the cursor replay alone carried it across.
        let p = client::get(paddr, "/skyline?dataset=r").unwrap();
        let f = client::get(faddr, "/skyline?dataset=r").unwrap();
        assert_eq!(
            parse_skyline_response(&p.body_str()).2,
            parse_skyline_response(&f.body_str()).2,
            "follower diverged across the primary restart"
        );
        let metrics = client::get(faddr, "/metrics").unwrap();
        let v = Value::parse(&metrics.body_str()).unwrap();
        let rep = v.get("replication").expect("replication metrics");
        assert_eq!(
            rep.get("resyncs_total").and_then(Value::as_u64),
            Some(1),
            "only the initial sync: the restart was bridged by replay: {}",
            metrics.body_str()
        );
        drop(primary);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replica lag under write load: while the primary absorbs a stream of
/// inserts, every answer the follower serves must match the primary's
/// state at that exact version — laggy is fine, wrong is not — and the
/// lag histogram in `/metrics` must be populated.
#[test]
fn replica_serves_consistent_prefixes_under_load() {
    let _scope = FaultScope::enter();
    let primary = start_memory_server(64);
    let paddr = primary.local_addr();
    let follower = Server::start(ServerConfig {
        follow: Some(paddr),
        follow_wait_ms: 100,
        ..ServerConfig::default()
    })
    .unwrap();
    let faddr = follower.local_addr();

    // Ground truth per version, computed from the same rows in the
    // same order (ids are assigned densely, so the mirror agrees).
    let mut mirror = StreamingSkyline::new(2).unwrap();
    let mut metrics = Metrics::default();
    let rows: Vec<Vec<f64>> = (0..80)
        .map(|i| {
            let x = f64::from((i * 31) % 67) + 1.0;
            vec![x, 70.0 - x]
        })
        .collect();
    let mut expected = std::collections::HashMap::new();
    for row in &rows {
        mirror.insert_delta(row, &mut metrics).unwrap();
        expected.insert(mirror.version(), mirror.skyline());
    }
    let tip = mirror.version();

    client::post(
        paddr,
        "/datasets",
        &format!("{{\"name\":\"load\",\"rows\":{}}}", rows_json(&rows[..1])),
    )
    .unwrap();
    // Let the follower finish its initial sync at version 1 first, so
    // every later version must travel through the change feed.
    wait_for_follower(faddr, "load", 1);

    // Reader thread: hammer the follower while the writes land.
    let reader = std::thread::spawn(move || {
        let mut observed = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            if let Ok(resp) = client::get(faddr, "/skyline?dataset=load") {
                if resp.status == 200 {
                    let (version, _, ids) = parse_skyline_response(&resp.body_str());
                    observed.push((version, ids));
                    if version == tip {
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        observed
    });

    for row in &rows[1..] {
        let body = format!("{{\"rows\": {}}}", rows_json(std::slice::from_ref(row)));
        assert_eq!(
            client::post(paddr, "/datasets/load/points", &body)
                .unwrap()
                .status,
            200
        );
    }

    let observed = reader.join().expect("reader thread");
    assert!(!observed.is_empty(), "follower never answered under load");
    for (version, ids) in &observed {
        let want = expected
            .get(version)
            .unwrap_or_else(|| panic!("follower served unacknowledged version {version}"));
        assert_eq!(
            ids, want,
            "follower answer at version {version} does not match the primary's history"
        );
    }
    assert_eq!(
        observed.last().map(|(v, _)| *v),
        Some(tip),
        "follower never converged to the tip under load"
    );

    let resp = client::get(faddr, "/metrics").unwrap();
    let v = Value::parse(&resp.body_str()).unwrap();
    let rep = v.get("replication").expect("replication metrics");
    // The initial snapshot sync may absorb a prefix, so `applied_total`
    // can trail `tip`; the per-dataset progress must reach it exactly.
    assert!(
        rep.get("applied_total")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "no applies recorded: {}",
        resp.body_str()
    );
    let progress = rep
        .get("datasets")
        .and_then(Value::as_arr)
        .and_then(|d| d.first())
        .expect("per-dataset replication progress");
    assert_eq!(
        progress.get("applied").and_then(Value::as_u64),
        Some(tip),
        "progress never reached the tip: {}",
        resp.body_str()
    );
    assert!(
        rep.get("lag_p99").and_then(Value::as_f64).is_some(),
        "lag percentiles absent: {}",
        resp.body_str()
    );
}

/// Failover chaos pin: the primary dies while a WAL compaction is in
/// flight and a subscriber is hammering the replica. The promoted
/// replica must hold every acked write and keep serving consistent
/// prefixes of the primary's history; the resurrected old primary is
/// fenced on its first stamped write and demotes itself into a
/// follower of its successor, converging byte-for-byte.
#[test]
fn primary_killed_mid_compaction_fails_over_without_losing_acked_writes() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("failover");

    // Ground truth: the same rows in the same order, every version.
    let mut mirror = StreamingSkyline::new(2).unwrap();
    let mut metrics = Metrics::default();
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            let x = f64::from((i * 31) % 53) + 1.0;
            vec![x, 60.0 - x]
        })
        .collect();
    let mut expected = std::collections::HashMap::new();
    for row in &rows {
        mirror.insert_delta(row, &mut metrics).unwrap();
        expected.insert(mirror.version(), mirror.skyline());
    }
    let (phase1, phase2) = (30usize, 60usize);

    let primary = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Always,
        // Tiny threshold: compaction fires again and again under the
        // write stream, so the kill lands around one.
        compact_bytes: 256,
        ..ServerConfig::default()
    })
    .unwrap();
    let paddr = primary.local_addr();
    client::post(
        paddr,
        "/datasets",
        &format!("{{\"name\":\"fo\",\"rows\":{}}}", rows_json(&rows[..1])),
    )
    .unwrap();

    let follower = Server::start(ServerConfig {
        follow: Some(paddr),
        follow_wait_ms: 100,
        feed_retain: 4096,
        ..ServerConfig::default()
    })
    .unwrap();
    let faddr = follower.local_addr();
    wait_for_follower(faddr, "fo", 1);

    // Subscriber load for the whole scenario: every answer the replica
    // serves — before, during, and after the failover — must be a
    // consistent prefix of the (single) write history.
    let tip2 = phase2 as u64;
    let subscriber = std::thread::spawn(move || {
        let mut observed = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            if let Ok(resp) = client::get(faddr, "/skyline?dataset=fo") {
                if resp.status == 200 {
                    let (version, _, ids) = parse_skyline_response(&resp.body_str());
                    observed.push((version, ids));
                    if version >= tip2 {
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        observed
    });

    // Phase 1 writes, with compactions slowed to fatten the window the
    // kill can land in. Everything acked here must survive.
    faults::inject("snapshot", Fault::Delay(Duration::from_millis(40)));
    let mut acked = 1u64;
    for row in &rows[1..phase1] {
        let body = format!("{{\"rows\": {}}}", rows_json(std::slice::from_ref(row)));
        let ok = client::post(paddr, "/datasets/fo/points", &body).unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
        acked += 1;
    }
    let tip1 = acked;
    // Zero-acked-write-loss needs the replica caught up before the
    // primary dies; replication is async, so an ack the feed never
    // shipped dies with the primary. The detector elects the
    // most-caught-up replica for the same reason.
    wait_for_follower(faddr, "fo", tip1);

    // Kill the primary — compaction is mid-flight more often than not
    // with the injected delay; fsync=always means every acked write is
    // already on disk either way.
    drop(primary);
    faults::clear();

    // Promote the replica under epoch 1 (what the coordinator's
    // detector does after K missed probes).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client::post(faddr, "/promote", "{\"epoch\":1}").unwrap();
        if resp.status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "promotion never succeeded: {}",
            resp.body_str()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // Every acked write survived the failover.
    let resp = client::get(faddr, "/skyline?dataset=fo").unwrap();
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert!(version >= tip1, "promoted replica lost acked writes");
    assert_eq!(&ids, expected.get(&version).unwrap());

    // Phase 2: the promoted node takes writes and stamps epoch 1.
    for row in &rows[phase1..phase2] {
        let body = format!("{{\"rows\": {}}}", rows_json(std::slice::from_ref(row)));
        let ok = client::post(faddr, "/datasets/fo/points", &body).unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
        let v = Value::parse(&ok.body_str()).unwrap();
        assert_eq!(
            v.get("epoch").and_then(Value::as_u64),
            Some(1),
            "session token must carry the promotion epoch"
        );
    }

    // The subscriber saw only consistent prefixes across the failover.
    let observed = subscriber.join().expect("subscriber thread");
    assert!(!observed.is_empty());
    for (version, ids) in &observed {
        let want = expected
            .get(version)
            .unwrap_or_else(|| panic!("replica served unacknowledged version {version}"));
        assert_eq!(ids, want, "inconsistent prefix at version {version}");
    }
    assert_eq!(observed.last().map(|(v, _)| *v), Some(tip2));

    // Resurrect the old primary from its WAL on the same address. It
    // boots as a primary at epoch 0 — exactly the split-brain risk the
    // fence exists for.
    let old = restart_on(paddr, &dir);
    let fenced = client::request_timed(
        paddr,
        "POST",
        "/datasets/fo/points",
        b"{\"rows\": [[30, 30]]}",
        &[
            (skyline_serve::EPOCH_HEADER.to_string(), "1".to_string()),
            (skyline_serve::PRIMARY_HEADER.to_string(), faddr.to_string()),
        ],
    )
    .unwrap()
    .0;
    assert_eq!(
        fenced.status,
        409,
        "stale primary accepted a fenced write: {}",
        fenced.body_str()
    );

    // ...and it demoted itself cleanly: a follower of its successor,
    // converging on the post-failover history.
    let resp = client::get(paddr, "/healthz").unwrap();
    let h = Value::parse(&resp.body_str()).unwrap();
    assert_eq!(h.get("role").and_then(Value::as_str), Some("replica"));
    assert_eq!(
        h.get("primary").and_then(Value::as_str),
        Some(faddr.to_string().as_str())
    );
    assert_eq!(h.get("epoch").and_then(Value::as_u64), Some(1));
    wait_for_follower(paddr, "fo", tip2);
    let p = client::get(paddr, "/skyline?dataset=fo").unwrap();
    let f = client::get(faddr, "/skyline?dataset=fo").unwrap();
    assert_eq!(
        parse_skyline_response(&p.body_str()).2,
        parse_skyline_response(&f.body_str()).2,
        "demoted ex-primary diverged from its successor"
    );

    // The promoted node's metrics tell the story.
    let resp = client::get(faddr, "/metrics").unwrap();
    let v = Value::parse(&resp.body_str()).unwrap();
    let rep = v.get("replication").expect("replication metrics");
    assert_eq!(rep.get("role").and_then(Value::as_str), Some("primary"));
    assert_eq!(rep.get("epoch").and_then(Value::as_u64), Some(1));
    assert_eq!(rep.get("promotions_total").and_then(Value::as_u64), Some(1));

    drop(old);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Poll the follower until `dataset` reaches `version`.
fn wait_for_follower(faddr: std::net::SocketAddr, dataset: &str, version: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if let Ok(resp) = client::get(faddr, &format!("/skyline?dataset={dataset}")) {
            if resp.status == 200 && parse_skyline_response(&resp.body_str()).0 >= version {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("follower never reached {dataset} version {version}");
}

/// Restart a durable server on a specific (just-vacated) address,
/// retrying while the kernel releases the port.
fn restart_on(addr: std::net::SocketAddr, dir: &std::path::Path) -> ServerHandle {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Server::start(ServerConfig {
            bind: addr.to_string(),
            data_dir: Some(dir.to_path_buf()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        }) {
            Ok(server) => return server,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("could not rebind {addr}: {e}"),
        }
    }
}

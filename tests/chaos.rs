//! Chaos harness: drives the server through injected faults — WAL I/O
//! errors, slow writes, torn log tails, handler panics, and overload —
//! and asserts it degrades *correctly*: unacked writes are rejected
//! whole, recovery lands on the last acked version, panics turn into
//! 500s, and excess load is shed with 503 + `Retry-After`.
//!
//! Requires the `chaos` feature (`--features chaos --test chaos`),
//! which compiles the fault probes into `skyline-serve`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use skyline_core::dataset::Dataset;
use skyline_core::delta::SkylineDelta;
use skyline_core::metrics::Metrics;
use skyline_core::streaming::StreamingSkyline;
use skyline_integration_tests::{
    http_client as client, oracle_skyline, parse_skyline_response, rows_json,
};
use skyline_obs::json::Value;
use skyline_serve::faults::{self, Fault};
use skyline_serve::wal::{self, FsyncPolicy};
use skyline_serve::{Server, ServerConfig, ServerHandle};

/// The fault table is process-global, so chaos tests must not overlap.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serialises a test and guarantees the fault table is clean on entry
/// and on exit, even when the test panics.
struct FaultScope<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl FaultScope<'_> {
    fn enter() -> FaultScope<'static> {
        let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        FaultScope { _guard: guard }
    }
}

impl Drop for FaultScope<'_> {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn sample_rows() -> Vec<Vec<f64>> {
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 120,
        dims: 4,
        seed: 0xC0DE,
    };
    let data = spec.generate();
    data.iter().map(|(_, row)| row.to_vec()).collect()
}

fn start_memory_server(max_inflight: usize) -> ServerHandle {
    Server::start(ServerConfig {
        threads: 4,
        max_inflight,
        ..ServerConfig::default()
    })
    .expect("start chaos server")
}

fn temp_data_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("skyline-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL write error rejects the whole batch — nothing is applied, the
/// client sees 500 — and once the fault clears, writes succeed again.
#[test]
fn wal_io_error_rejects_the_write_whole_then_recovers() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("walerr");
    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let created = client::post(addr, "/datasets", "{\"name\": \"w\", \"rows\": [[1, 2]]}").unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    faults::inject("wal_append", Fault::IoError(1));
    let failed = client::post(addr, "/datasets/w/points", "{\"rows\": [[0.5, 0.5]]}").unwrap();
    assert_eq!(failed.status, 500, "{}", failed.body_str());
    assert!(
        failed.body_str().contains("durability failure"),
        "{}",
        failed.body_str()
    );

    // Nothing was applied: still one point at the creation version.
    let resp = client::get(addr, "/skyline?dataset=w").unwrap();
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert_eq!(version, 1, "unacked insert did not move the version");
    assert_eq!(ids, vec![0]);

    // Fault budget exhausted: the retried insert succeeds.
    let ok = client::post(addr, "/datasets/w/points", "{\"rows\": [[0.5, 0.5]]}").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body_str());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slow WAL writes slow the ack but do not fail it.
#[test]
fn slow_wal_writes_delay_the_ack_but_succeed() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("walslow");
    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    client::post(addr, "/datasets", "{\"name\": \"s\", \"rows\": [[1, 2]]}").unwrap();

    faults::inject("wal_append", Fault::Delay(Duration::from_millis(80)));
    let t = Instant::now();
    let ok = client::post(addr, "/datasets/s/points", "{\"rows\": [[3, 4]]}").unwrap();
    let elapsed = t.elapsed();
    assert_eq!(ok.status, 200, "{}", ok.body_str());
    assert!(
        elapsed >= Duration::from_millis(70),
        "ack waited for the WAL"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A handler panic is isolated into a 500, counted in `/metrics`, and
/// the server keeps serving.
#[test]
fn handler_panic_becomes_500_and_server_stays_up() {
    let _scope = FaultScope::enter();
    let server = start_memory_server(0);
    let addr = server.local_addr();

    faults::inject("handler", Fault::Panic(1));
    let resp = client::get(addr, "/healthz").unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body_str());
    assert!(resp.body_str().contains("panicked"), "{}", resp.body_str());

    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status, 200, "server survived the panic");
    let metrics = client::get(addr, "/metrics").unwrap();
    let v = Value::parse(&metrics.body_str()).unwrap();
    assert!(
        v.get("panics_total").unwrap().as_u64().unwrap() >= 1,
        "{}",
        metrics.body_str()
    );
}

/// With `max_inflight = 1` and a slow compute pinning the only slot, a
/// concurrent query is shed immediately with 503 + `Retry-After`.
#[test]
fn overload_sheds_quickly_with_retry_after() {
    let _scope = FaultScope::enter();
    let server = start_memory_server(1);
    let addr = server.local_addr();
    let rows = sample_rows();
    let created = client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"load\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    faults::inject("compute", Fault::Delay(Duration::from_millis(400)));
    let slow = std::thread::spawn(move || client::get(addr, "/skyline?dataset=load").unwrap());
    // Let the slow query take the only admission slot.
    std::thread::sleep(Duration::from_millis(100));

    let t = Instant::now();
    let shed = client::get(addr, "/skyline?dataset=load&algo=SFS").unwrap();
    let elapsed = t.elapsed();
    assert_eq!(shed.status, 503, "{}", shed.body_str());
    assert_eq!(shed.header("retry-after"), Some("1"), "{:?}", shed.headers);
    assert!(
        elapsed < Duration::from_millis(50),
        "shedding must be immediate, took {elapsed:?}"
    );

    let slow_resp = slow.join().unwrap();
    assert_eq!(slow_resp.status, 200, "the admitted query completed");

    let metrics = client::get(addr, "/metrics").unwrap();
    let v = Value::parse(&metrics.body_str()).unwrap();
    assert!(
        v.get("shed_total").unwrap().as_u64().unwrap() >= 1,
        "{}",
        metrics.body_str()
    );
}

/// A torn WAL tail (crash mid-append) is truncated at recovery: the
/// server boots, drops the torn suffix, and serves exactly the acked
/// prefix — verified against the brute-force oracle.
#[test]
fn torn_wal_tail_recovers_to_the_last_acked_version() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("torn");
    let rows = sample_rows();

    let acked_version = {
        // fsync=always so every acked record is on disk when we "crash".
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let created = client::post(
            addr,
            "/datasets",
            &format!("{{\"name\": \"t\", \"rows\": {}}}", rows_json(&rows)),
        )
        .unwrap();
        assert_eq!(created.status, 201, "{}", created.body_str());
        let resp = client::get(addr, "/skyline?dataset=t&algo=SFS").unwrap();
        parse_skyline_response(&resp.body_str()).0
    };

    // Simulate a crash mid-append: a torn, unterminated record at the
    // tail of the log.
    let wal_path = dir.join("t.wal");
    let mut torn = std::fs::read(&wal_path).unwrap();
    torn.extend_from_slice(b"{\"op\":\"insert\",\"v\":999,\"row\":[0.0");
    std::fs::write(&wal_path, &torn).unwrap();

    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/skyline?dataset=t&algo=SFS").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert_eq!(
        version, acked_version,
        "torn suffix dropped, acked prefix kept"
    );
    let oracle = oracle_skyline(&Dataset::from_rows(&rows).unwrap());
    assert_eq!(
        ids, oracle,
        "recovered skyline equals the brute-force oracle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// WAL replay reconstructs the *delta stream*, not just the final
/// state: after a simulated kill -9 (torn record at the log tail, no
/// graceful handover), recovery must re-produce exactly the versioned
/// enter/leave sets the uncrashed process emitted — with a
/// `wal_append`-fault-rejected mutation leaving no trace in the stream.
#[test]
fn wal_replay_reconstructs_the_live_delta_stream() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("deltastream");
    let initial = vec![
        vec![1.0, 5.0, 5.0],
        vec![5.0, 1.0, 5.0],
        vec![5.0, 5.0, 1.0],
        vec![6.0, 6.0, 6.0],
    ];

    // The uncrashed run's delta stream, mirrored independently of the
    // server: same rows, same order, same handles.
    let mut mirror = StreamingSkyline::new(3).unwrap();
    let mut metrics = Metrics::new();
    let mut live_stream: Vec<SkylineDelta> = Vec::new();
    for row in &initial {
        let (_, d) = mirror.insert_delta(row, &mut metrics).unwrap();
        live_stream.push(d);
    }

    {
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let created = client::post(
            addr,
            "/datasets",
            &format!("{{\"name\": \"d\", \"rows\": {}}}", rows_json(&initial)),
        )
        .unwrap();
        assert_eq!(created.status, 201, "{}", created.body_str());

        // A WAL-rejected mutation is not acked, so it must contribute
        // nothing to either stream (and burn no handle).
        faults::inject("wal_append", Fault::IoError(1));
        let failed =
            client::post(addr, "/datasets/d/points", "{\"rows\": [[0.5, 0.5, 0.5]]}").unwrap();
        assert_eq!(failed.status, 500, "{}", failed.body_str());
        faults::clear();

        // Acked mutations: a dominator enters (old skyline leaves), a
        // dominated row moves only the version, the dominator's removal
        // resurrects the old skyline, a final fresh point enters.
        let script: Vec<(&str, &str)> = vec![
            ("POST", "{\"rows\": [[0.5, 0.5, 0.5]]}"),
            ("POST", "{\"rows\": [[7.0, 7.0, 7.0]]}"),
            ("DELETE", "{\"ids\": [4]}"),
            ("POST", "{\"rows\": [[0.25, 6.0, 6.0]]}"),
        ];
        for (method, body) in script {
            let resp =
                client::request(addr, method, "/datasets/d/points", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200, "{method} {body}: {}", resp.body_str());
            let d = match method {
                "POST" => {
                    let row: Vec<f64> = Value::parse(body)
                        .unwrap()
                        .get("rows")
                        .and_then(Value::as_arr)
                        .unwrap()[0]
                        .as_arr()
                        .unwrap()
                        .iter()
                        .map(|x| x.as_f64().unwrap())
                        .collect();
                    mirror.insert_delta(&row, &mut metrics).unwrap().1
                }
                _ => mirror.remove_delta(4, &mut metrics).unwrap(),
            };
            // The server's live response must already carry the
            // mirror's delta — version, entered, and left.
            let v = Value::parse(&resp.body_str()).unwrap();
            let ids = |field: &str| -> Vec<u32> {
                v.get(field)
                    .and_then(Value::as_arr)
                    .unwrap_or_else(|| panic!("{field} missing: {}", resp.body_str()))
                    .iter()
                    .map(|x| x.as_u64().unwrap() as u32)
                    .collect()
            };
            assert_eq!(v.get("version").and_then(Value::as_u64), Some(d.version));
            assert_eq!(ids("entered"), d.entered, "{method} {body}");
            assert_eq!(ids("left"), d.left, "{method} {body}");
            live_stream.push(d);
        }
        // Dropping the handle stops the server; fsync=always means every
        // acked record is already on disk, like a kill -9 after the ack.
    }

    // Kill -9 mid-append: a torn, unterminated record at the tail.
    let wal_path = dir.join("d.wal");
    let mut torn = std::fs::read(&wal_path).unwrap();
    torn.extend_from_slice(b"{\"op\":\"insert\",\"v\":999,\"row\":[0.0");
    std::fs::write(&wal_path, &torn).unwrap();

    // Replay through the recovery path itself and compare streams.
    let recovered = wal::recover(&wal::StorageConfig::new(dir.clone()), "d")
        .unwrap()
        .expect("dataset recovers");
    assert_eq!(
        recovered.deltas, live_stream,
        "replayed delta stream must equal the uncrashed run's"
    );
    assert_eq!(recovered.stream.version(), mirror.version());
    assert_eq!(recovered.stream.skyline(), mirror.skyline());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot failure during compaction is non-fatal: the write is
/// acked from the log alone and the dataset stays fully recoverable.
#[test]
fn snapshot_failure_is_tolerated_and_data_survives() {
    let _scope = FaultScope::enter();
    let dir = temp_data_dir("snapfail");
    let acked = {
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        client::post(addr, "/datasets", "{\"name\": \"p\", \"rows\": [[5, 5]]}").unwrap();
        faults::inject("snapshot", Fault::IoError(100));
        // Insert enough to cross any compaction threshold attempt.
        for i in 0..50 {
            let ok = client::post(
                addr,
                "/datasets/p/points",
                &format!("{{\"rows\": [[{}, {}]]}}", i + 6, i + 6),
            )
            .unwrap();
            assert_eq!(ok.status, 200, "{}", ok.body_str());
        }
        faults::clear();
        let resp = client::get(addr, "/skyline?dataset=p").unwrap();
        parse_skyline_response(&resp.body_str())
    };

    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/skyline?dataset=p").unwrap();
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert_eq!(version, acked.0);
    assert_eq!(ids, acked.2);
    let _ = std::fs::remove_dir_all(&dir);
}

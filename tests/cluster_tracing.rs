//! End-to-end distributed tracing over a live sharded cluster: the
//! trace id handed to the coordinator must reach every shard's trace
//! file, the stitched stage breakdown must account for the measured
//! wall-clock, and slow queries must land in the dedicated slow log.

use std::net::SocketAddr;
use std::path::PathBuf;

use skyline_cluster::{Cluster, ClusterConfig, ClusterHandle};
use skyline_integration_tests::{http_client, rows_json};
use skyline_obs::trace::{decode_stage_times, STAGE_TIMES_HEADER, TRACE_HEADER};
use skyline_obs::TraceSummary;
use skyline_serve::ServerHandle;

/// A trace id the test controls end to end (valid lowercase hex).
const TRACE_ID: &str = "feedface00c0ffee";

struct TracedCluster {
    _shards: Vec<ServerHandle>,
    coordinator: ClusterHandle,
    shard_traces: Vec<PathBuf>,
    coordinator_trace: PathBuf,
    slow_log: PathBuf,
}

/// Spawn `n` shards and a coordinator, every process writing its own
/// JSONL trace sink under a fresh temp directory. The coordinator's
/// slow threshold is 1 ms so the heavy query below is guaranteed to
/// cross it.
fn start_traced_cluster(n: usize, tag: &str) -> TracedCluster {
    let dir = std::env::temp_dir().join(format!("skyline-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut shard_traces = Vec::new();
    let shards: Vec<ServerHandle> = (0..n)
        .map(|i| {
            let trace = dir.join(format!("shard{i}.jsonl"));
            shard_traces.push(trace.clone());
            skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads: 2,
                trace: Some(trace),
                ..Default::default()
            })
            .expect("start shard")
        })
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let coordinator_trace = dir.join("coordinator.jsonl");
    let slow_log = dir.join("slow.jsonl");
    let coordinator = Cluster::start(ClusterConfig {
        threads: 4,
        trace: Some(coordinator_trace.clone()),
        slow_ms: 1,
        slow_log: Some(slow_log.clone()),
        ..ClusterConfig::new(addrs)
    })
    .expect("start coordinator");
    TracedCluster {
        _shards: shards,
        coordinator,
        shard_traces,
        coordinator_trace,
        slow_log,
    }
}

fn create_dataset(coord: SocketAddr, name: &str, rows: &[Vec<f64>]) {
    let body = format!("{{\"name\":\"{name}\",\"rows\":{}}}", rows_json(rows));
    let resp = http_client::post(coord, "/datasets", &body).expect("create");
    assert_eq!(resp.status, 201, "create failed: {}", resp.body_str());
}

/// A warm 4-shard traced query: the client's trace id comes back in the
/// response, shows up in the coordinator's trace *and every shard's*,
/// and the stitched contiguous stages account for the measured
/// wall-clock to within 10%.
#[test]
fn traced_query_propagates_and_accounts_for_wall_clock() {
    let cluster = start_traced_cluster(4, "e2e");
    let coord = cluster.coordinator.local_addr();
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 3000,
        dims: 5,
        seed: 0x7ACE,
    };
    let data = spec.generate();
    let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
    create_dataset(coord, "big", &rows);

    // Warm the path end to end (threads, registry, shard listeners).
    let resp = http_client::get(coord, "/skyline?dataset=big").expect("warm-up");
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // Measured query: a different projection misses every shard cache,
    // so real compute dominates the fixed per-hop overhead and the 10%
    // accounting bound is meaningful.
    let headers = vec![(TRACE_HEADER.to_string(), TRACE_ID.to_string())];
    let (resp, timing) = http_client::request_timed(
        coord,
        "GET",
        "/skyline?dataset=big&dims=0,1,2,3&timings=1",
        &[],
        &headers,
    )
    .expect("traced query");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(
        resp.header(TRACE_HEADER),
        Some(TRACE_ID),
        "coordinator must echo the inherited trace id"
    );

    // The stitched breakdown: contiguous stages in pipeline order, then
    // dotted per-shard detail (rpc wall plus the shard's own stages).
    let encoded = resp
        .header(STAGE_TIMES_HEADER)
        .expect("stage-times header")
        .to_string();
    let entries = decode_stage_times(&encoded);
    let contiguous: Vec<&str> = entries
        .iter()
        .filter(|(n, _)| !n.contains('.'))
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(
        contiguous,
        [
            "accept",
            "route",
            "connect",
            "send",
            "shard_wait",
            "gather",
            "merge",
            "respond"
        ],
        "unexpected coordinator stage taxonomy"
    );
    for s in 0..4 {
        let rpc = format!("shard{s}.rpc");
        assert!(
            entries.iter().any(|(n, _)| *n == rpc),
            "missing {rpc} in {encoded}"
        );
        let prefix = format!("shard{s}.");
        assert!(
            entries
                .iter()
                .any(|(n, _)| n.starts_with(&prefix) && n.ends_with(".compute")),
            "missing stitched {prefix}compute in {encoded}"
        );
    }

    // Accounting: the contiguous stages sum to the handler's wall-clock
    // by construction, so they must cover at least 90% of the client's
    // observed wait (which adds socket read/write on both ends) and
    // never exceed the full round trip.
    let sum: u64 = entries
        .iter()
        .filter(|(n, _)| !n.contains('.'))
        .map(|(_, us)| us)
        .sum();
    let wall = timing.wait_us;
    let round_trip = timing.connect_us + timing.send_us + timing.wait_us;
    assert!(
        sum <= round_trip,
        "stage sum {sum}µs exceeds the client round trip {round_trip}µs"
    );
    assert!(
        sum * 10 >= wall * 9,
        "stage sum {sum}µs accounts for <90% of the {wall}µs wall-clock"
    );

    // The body's timings object (opt-in via timings=1) mirrors the
    // contiguous stages.
    let v = skyline_obs::json::Value::parse(&resp.body_str()).expect("body JSON");
    let timings = v.get("timings").expect("timings field with timings=1");
    assert!(timings.get("shard_wait").is_some(), "{timings:?}");

    // Propagation: the trace id appears in the coordinator's trace file
    // and in every shard's.
    let coord_text =
        std::fs::read_to_string(&cluster.coordinator_trace).expect("coordinator trace");
    assert!(
        coord_text.contains(TRACE_ID),
        "coordinator trace lacks the trace id"
    );
    for (s, path) in cluster.shard_traces.iter().enumerate() {
        let text = std::fs::read_to_string(path).expect("shard trace");
        assert!(
            text.contains(TRACE_ID),
            "shard {s} trace lacks the trace id"
        );
    }

    // The coordinator's trace aggregates into per-stage histograms and
    // names a dominant stage from the contiguous taxonomy.
    let summary = TraceSummary::from_text(&coord_text);
    assert_eq!(summary.skipped, 0, "unparseable trace lines");
    assert!(
        summary.stage_breakdowns >= 2,
        "both queries must break down"
    );
    let (dominant, _) = summary.dominant_stage().expect("dominant stage");
    assert!(
        contiguous.contains(&dominant),
        "dominant stage {dominant:?} is not a coordinator stage"
    );
    let rendered = summary.render_stages();
    assert!(rendered.contains(dominant), "{rendered}");

    // Slow-query log: both queries took over the 1 ms threshold, so the
    // dedicated slow log holds their breakdowns — tagged with our id.
    let slow_text = std::fs::read_to_string(&cluster.slow_log).expect("slow log");
    assert!(
        slow_text.contains("stage_breakdown"),
        "slow log has no breakdown records"
    );
    assert!(
        slow_text.contains(TRACE_ID),
        "slow log breakdown lost the trace id"
    );
}

/// Garbage in the trace header must not propagate: the coordinator
/// mints its own id instead, and the response still carries a valid
/// stitched breakdown.
#[test]
fn malformed_trace_ids_are_replaced_not_propagated() {
    let cluster = start_traced_cluster(2, "junk");
    let coord = cluster.coordinator.local_addr();
    create_dataset(coord, "tiny", &[vec![1.0, 2.0], vec![2.0, 1.0]]);

    let headers = vec![(TRACE_HEADER.to_string(), "NOT HEX \u{7}".to_string())];
    let (resp, _) =
        http_client::request_timed(coord, "GET", "/skyline?dataset=tiny", &[], &headers)
            .expect("query");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let echoed = resp.header(TRACE_HEADER).expect("minted trace id");
    assert_ne!(echoed, "NOT HEX \u{7}");
    assert!(
        skyline_obs::trace::is_valid_id(echoed),
        "minted id {echoed:?} is not valid hex"
    );
    assert!(resp.header(STAGE_TIMES_HEADER).is_some());

    // The hostile bytes never reach any trace file.
    let coord_text =
        std::fs::read_to_string(&cluster.coordinator_trace).expect("coordinator trace");
    assert!(!coord_text.contains("NOT HEX"));
    assert!(coord_text.contains(echoed), "minted id must be recorded");
    for path in &cluster.shard_traces {
        let text = std::fs::read_to_string(path).expect("shard trace");
        assert!(!text.contains("NOT HEX"));
    }
}

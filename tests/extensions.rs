//! Cross-crate tests of the library extensions: streaming maintenance,
//! the σ tuner, subspace skylines / skycube, the k-skyband, the query
//! builder and the parallel algorithm — all validated against oracles on
//! realistic generated data.

use skyline_algos::query::SkylineQuery;
use skyline_algos::skyband::k_skyband;
use skyline_algos::subspace_skyline::{subspace_skyline, Skycube};
use skyline_algos::{algorithm_by_name, bnl::Bnl, parallel::ParallelSfs, SkylineAlgorithm};
use skyline_core::metrics::Metrics;
use skyline_core::streaming::StreamingSkyline;
use skyline_core::subspace::Subspace;
use skyline_core::tuner::{tune_sigma, TunerConfig};
use skyline_integration_tests::{oracle_skyline, workload_grid};

#[test]
fn streaming_reaches_the_batch_skyline_on_every_distribution() {
    for (data, label) in workload_grid() {
        let mut sky = StreamingSkyline::new(data.dims()).unwrap();
        let mut metrics = Metrics::new();
        for (_, row) in data.iter() {
            sky.insert(row, &mut metrics).unwrap();
        }
        assert_eq!(sky.skyline(), oracle_skyline(&data), "{label}");
        sky.check_invariants();
    }
}

#[test]
fn streaming_deletion_matches_batch_recomputation() {
    let data = skyline_data::uniform_independent(400, 4, 777);
    let mut sky = StreamingSkyline::new(4).unwrap();
    let mut metrics = Metrics::new();
    for (_, row) in data.iter() {
        sky.insert(row, &mut metrics).unwrap();
    }
    // Delete every skyline point, one at a time, and compare against a
    // batch recomputation of the remaining multiset after each step.
    let mut deleted = vec![false; data.len()];
    for victim in oracle_skyline(&data) {
        assert!(sky.remove(victim, &mut metrics));
        deleted[victim as usize] = true;
        let alive: Vec<u32> = (0..data.len() as u32)
            .filter(|&i| !deleted[i as usize])
            .collect();
        let rest = data.project(&alive);
        let expected: Vec<u32> = oracle_skyline(&rest)
            .into_iter()
            .map(|i| alive[i as usize])
            .collect();
        assert_eq!(sky.skyline(), expected);
    }
    sky.check_invariants();
}

#[test]
fn tuner_recommendation_is_usable_and_sane() {
    for (data, label) in workload_grid() {
        let report = tune_sigma(&data, &TunerConfig::default());
        assert!(report.sigma >= 2, "{label}");
        assert!(report.sigma <= data.dims().max(2), "{label}");
        // The recommended sigma must produce a correct skyline.
        let algo = skyline_algos::boosted::SdiSubset::new(Some(report.sigma));
        assert_eq!(algo.compute(&data), oracle_skyline(&data), "{label}");
    }
}

#[test]
fn skycube_cuboids_match_projected_oracles() {
    let data = skyline_data::anti_correlated(300, 4, 4242);
    let mut metrics = Metrics::new();
    let cube = Skycube::with_default_algorithm(&data, &mut metrics);
    assert_eq!(cube.len(), 15);
    for (sub, skyline) in cube.iter() {
        let projected = data.project_dims(sub);
        assert_eq!(skyline, oracle_skyline(&projected), "cuboid {sub}");
    }
}

#[test]
fn subspace_skyline_with_every_algorithm() {
    let data = skyline_data::uniform_independent(500, 5, 99);
    let sub = Subspace::from_dims([1, 3, 4]);
    let expected = oracle_skyline(&data.project_dims(sub));
    for name in [
        "BNL",
        "SFS",
        "SaLSa-Subset",
        "SDI-Subset",
        "BSkyTree-P",
        "P-SFS",
    ] {
        let algo = algorithm_by_name(name).unwrap();
        let mut m = Metrics::new();
        assert_eq!(
            subspace_skyline(&data, sub, algo.as_ref(), &mut m),
            expected,
            "{name}"
        );
    }
}

#[test]
fn skyband_nests_and_contains_the_skyline() {
    let data = skyline_data::uniform_independent(800, 4, 31);
    let mut m = Metrics::new();
    let skyline = oracle_skyline(&data);
    let mut previous: Vec<u32> = Vec::new();
    for k in 1..=5usize {
        let band: Vec<u32> = k_skyband(&data, k, &mut m)
            .into_iter()
            .map(|b| b.id)
            .collect();
        if k == 1 {
            assert_eq!(band, skyline);
        }
        // Bands are nested: (k)-band ⊆ (k+1)-band.
        for id in &previous {
            assert!(band.contains(id), "k={k} lost point {id}");
        }
        previous = band;
    }
}

#[test]
fn query_builder_end_to_end_on_generated_data() {
    let data = skyline_data::correlated(600, 4, 5);
    let rows: Vec<Vec<f64>> = data.iter().map(|(_, r)| r.to_vec()).collect();
    let result = SkylineQuery::new()
        .minimize()
        .minimize()
        .minimize()
        .minimize()
        .execute(&rows)
        .unwrap();
    assert_eq!(result.ids, oracle_skyline(&data));
}

#[test]
fn parallel_sfs_agrees_on_the_full_grid() {
    for (data, label) in workload_grid() {
        let expected = oracle_skyline(&data);
        for threads in [1usize, 4] {
            assert_eq!(
                ParallelSfs { threads }.compute(&data),
                expected,
                "{label} threads={threads}"
            );
        }
    }
}

#[test]
fn streaming_and_batch_agree_after_heavy_churn() {
    // Insert two generations of data, expire the first generation
    // entirely, and compare with a batch run over the survivors.
    let gen1 = skyline_data::anti_correlated(250, 3, 1);
    let gen2 = skyline_data::uniform_independent(250, 3, 2);
    let mut sky = StreamingSkyline::new(3).unwrap();
    let mut metrics = Metrics::new();
    let mut gen1_ids = Vec::new();
    for (_, row) in gen1.iter() {
        gen1_ids.push(sky.insert(row, &mut metrics).unwrap());
    }
    for (_, row) in gen2.iter() {
        sky.insert(row, &mut metrics).unwrap();
    }
    for id in gen1_ids {
        sky.remove(id, &mut metrics);
    }
    sky.rebuild_reference(&mut metrics);
    sky.check_invariants();
    let expected: Vec<u32> = oracle_skyline(&gen2)
        .iter()
        .map(|&i| i + gen1.len() as u32)
        .collect();
    assert_eq!(sky.skyline(), expected);
    assert_eq!(Bnl.compute(&gen2).len(), sky.skyline_len());
}

//! End-to-end tests of the HTTP query service: byte-identical results
//! between the HTTP path and a direct library call, cache-hit semantics
//! on repeated queries, delta-patched cache entries under streaming
//! maintenance, protocol robustness against malformed requests, query
//! deadlines, and durable crash recovery.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use skyline_algos::{algorithm_by_name, parallel_algorithm};
use skyline_core::dataset::Dataset;
use skyline_core::subspace::Subspace;
use skyline_integration_tests::{
    http_client as client, oracle_skyline, parse_skyline_response, rows_json, start_server,
};
use skyline_obs::json::Value;
use skyline_serve::{Server, ServerConfig};

fn workload_rows() -> Vec<Vec<f64>> {
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 400,
        dims: 5,
        seed: 0xD1CE,
    };
    let data = spec.generate();
    data.iter().map(|(_, row)| row.to_vec()).collect()
}

/// HTTP responses carry exactly the ids a direct library call produces,
/// across sequential and parallel engines.
#[test]
fn http_skyline_matches_direct_library_call() {
    let rows = workload_rows();
    let data = Dataset::from_rows(&rows).unwrap();
    let server = start_server();
    let addr = server.local_addr();
    let created = client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"w\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    // Handles are 0..n for a freshly created dataset, so direct row ids
    // and HTTP ids are directly comparable.
    let oracle = oracle_skyline(&data);
    for algo_name in ["SFS", "SaLSa-Subset", "SDI-Subset", "BSkyTree-S"] {
        let resp = client::get(addr, &format!("/skyline?dataset=w&algo={algo_name}")).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let (version, cached, ids) = parse_skyline_response(&resp.body_str());
        assert_eq!(version, rows.len() as u64);
        assert!(!cached, "first request for {algo_name} computes");
        let direct = algorithm_by_name(algo_name).unwrap().compute(&data);
        assert_eq!(ids, direct, "{algo_name}: HTTP != direct");
        assert_eq!(ids, oracle, "{algo_name}: != oracle");
    }

    // Parallel engine, selected by P-* name and by ?threads=.
    for query in ["algo=P-SFS-Subset", "algo=SDI-Subset&threads=3"] {
        let resp = client::get(addr, &format!("/skyline?dataset=w&{query}")).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let (_, _, ids) = parse_skyline_response(&resp.body_str());
        let direct = parallel_algorithm("SFS-Subset", None, 3)
            .unwrap()
            .compute(&data);
        assert_eq!(ids, direct, "{query}: HTTP != direct parallel");
        assert_eq!(ids, oracle, "{query}: != oracle");
    }
}

/// Subspace queries over HTTP match `project_dims` + compute locally.
#[test]
fn http_subspace_matches_direct_projection() {
    let rows = workload_rows();
    let data = Dataset::from_rows(&rows).unwrap();
    let server = start_server();
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"sub\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();
    for dims in [vec![0usize, 2], vec![1, 3, 4], vec![2]] {
        let spec: Vec<String> = dims.iter().map(usize::to_string).collect();
        let resp = client::get(
            addr,
            &format!("/skyline?dataset=sub&algo=SaLSa&dims={}", spec.join(",")),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let (_, _, ids) = parse_skyline_response(&resp.body_str());
        let projected = data.project_dims(Subspace::from_dims(dims.iter().copied()));
        let direct = algorithm_by_name("SaLSa").unwrap().compute(&projected);
        assert_eq!(ids, direct, "dims {dims:?}: HTTP != direct");
    }
}

/// The second identical request is served from the cache with the same
/// ids; a different algorithm or subspace is a separate cache entry.
#[test]
fn second_identical_request_is_a_cache_hit() {
    let rows = workload_rows();
    let server = start_server();
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"c\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();

    let first = client::get(addr, "/skyline?dataset=c&algo=SDI-Subset").unwrap();
    let (v1, cached1, ids1) = parse_skyline_response(&first.body_str());
    assert!(!cached1);
    let second = client::get(addr, "/skyline?dataset=c&algo=SDI-Subset").unwrap();
    let (v2, cached2, ids2) = parse_skyline_response(&second.body_str());
    assert!(cached2, "identical request must hit the cache");
    assert_eq!((v1, &ids1), (v2, &ids2), "cache returns identical ids");

    // Same dataset, different algorithm: its own key, so a miss — but
    // the same answer.
    let other = client::get(addr, "/skyline?dataset=c&algo=SFS").unwrap();
    let (_, cached3, ids3) = parse_skyline_response(&other.body_str());
    assert!(!cached3);
    assert_eq!(ids1, ids3);

    let stats = server.cache_stats();
    assert_eq!(stats.hits, 1, "{stats:?}");
    assert_eq!(stats.misses, 2, "{stats:?}");
}

/// Streaming maintenance patches the cache: a full-space cached entry
/// is carried forward by each mutation's skyline delta, so the next
/// response still answers warm — at the new version, with the new ids.
#[test]
fn streaming_mutation_patches_cache_and_updates_results() {
    let rows = vec![
        vec![1.0, 5.0, 5.0],
        vec![5.0, 1.0, 5.0],
        vec![5.0, 5.0, 1.0],
        vec![6.0, 6.0, 6.0],
    ];
    let server = start_server();
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"m\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();

    let warm = client::get(addr, "/skyline?dataset=m&algo=SFS").unwrap();
    let (v0, _, ids0) = parse_skyline_response(&warm.body_str());
    assert_eq!(ids0, vec![0, 1, 2]);
    assert!(
        parse_skyline_response(
            &client::get(addr, "/skyline?dataset=m&algo=SFS")
                .unwrap()
                .body_str()
        )
        .1
    );

    // Insert a point that dominates everything: entered [4], left
    // [0, 1, 2] — the mutation patches the cached entry forward.
    let inserted =
        client::post(addr, "/datasets/m/points", "{\"rows\": [[0.5, 0.5, 0.5]]}").unwrap();
    assert_eq!(inserted.status, 200, "{}", inserted.body_str());
    assert!(
        inserted.body_str().contains("\"cache_patched\":1"),
        "{}",
        inserted.body_str()
    );
    let after = client::get(addr, "/skyline?dataset=m&algo=SFS").unwrap();
    let (v1, cached, ids1) = parse_skyline_response(&after.body_str());
    assert!(cached, "the patched entry answers the post-mutation query");
    assert!(v1 > v0);
    assert_eq!(ids1, vec![4], "the new point is the whole skyline");

    // Remove it again: the old skyline resurfaces under a new version,
    // still without a recompute.
    let removed = client::request(addr, "DELETE", "/datasets/m/points", b"{\"ids\": [4]}").unwrap();
    assert_eq!(removed.status, 200, "{}", removed.body_str());
    assert!(
        removed.body_str().contains("\"cache_patched\":1"),
        "{}",
        removed.body_str()
    );
    let last = client::get(addr, "/skyline?dataset=m&algo=SFS").unwrap();
    let (v2, cached2, ids2) = parse_skyline_response(&last.body_str());
    assert!(cached2);
    assert!(v2 > v1);
    assert_eq!(ids2, vec![0, 1, 2]);
}

/// The patched entry is not a guess: after an insert, the warm answer
/// (cache hit on the delta-patched entry, `cache_patched` counted in
/// `/metrics`) byte-matches a cold recompute of the same query.
#[test]
fn patched_cache_entry_matches_cold_recompute() {
    let rows = workload_rows();
    let server = start_server();
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"patch\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();

    // Prime the entry, then mutate: a point dominating everything makes
    // the delta non-trivial (it enters, the whole old skyline leaves).
    let primed = client::get(addr, "/skyline?dataset=patch&algo=SDI-Subset").unwrap();
    assert_eq!(primed.status, 200, "{}", primed.body_str());
    let inserted = client::post(
        addr,
        "/datasets/patch/points",
        "{\"rows\": [[0.0, 0.0, 0.0, 0.0, 0.0]]}",
    )
    .unwrap();
    assert_eq!(inserted.status, 200, "{}", inserted.body_str());
    assert!(
        inserted.body_str().contains("\"cache_patched\":1"),
        "{}",
        inserted.body_str()
    );

    let hits_before = server.cache_stats().hits;
    let warm = client::get(addr, "/skyline?dataset=patch&algo=SDI-Subset").unwrap();
    let (warm_version, warm_cached, warm_ids) = parse_skyline_response(&warm.body_str());
    assert!(warm_cached, "patched entry must serve the query");
    assert_eq!(
        server.cache_stats().hits,
        hits_before + 1,
        "a hit, not a recompute"
    );
    assert_eq!(warm_version, rows.len() as u64 + 1);

    // Cold recompute of the same query: SFS has no cache entry yet, so
    // this one computes from the live structure.
    let cold = client::get(addr, "/skyline?dataset=patch&algo=SFS").unwrap();
    let (cold_version, cold_cached, cold_ids) = parse_skyline_response(&cold.body_str());
    assert!(!cold_cached, "fresh key must recompute");
    assert_eq!(cold_version, warm_version);
    assert_eq!(warm_ids, cold_ids, "patched answer must match recompute");
    assert_eq!(warm_ids, vec![rows.len() as u32]);

    // The patch shows up in both stats surfaces.
    assert_eq!(server.cache_stats().patched, 1);
    let metrics = client::get(addr, "/metrics").unwrap();
    let v = Value::parse(&metrics.body_str()).unwrap();
    assert_eq!(
        v.get("cache")
            .and_then(|c| c.get("patched"))
            .and_then(Value::as_u64),
        Some(1),
        "{}",
        metrics.body_str()
    );
}

/// The synthetic-spec form of `POST /datasets` generates server-side and
/// agrees with the same spec generated locally.
#[test]
fn synthetic_datasets_are_reproducible() {
    let server = start_server();
    let addr = server.local_addr();
    let created = client::post(
        addr,
        "/datasets",
        "{\"name\": \"gen\", \"synthetic\": {\"distribution\": \"AC\", \"n\": 250, \"dims\": 4, \"seed\": 7}}",
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());
    let resp = client::get(addr, "/skyline?dataset=gen&algo=SFS").unwrap();
    let (_, _, ids) = parse_skyline_response(&resp.body_str());
    let local = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 250,
        dims: 4,
        seed: 7,
    }
    .generate();
    assert_eq!(ids, oracle_skyline(&local));
}

/// Write raw bytes on a fresh connection and read whatever comes back.
fn raw_exchange(addr: std::net::SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(payload).unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

/// A garbage request line gets a well-formed 400, not a hang or a drop.
#[test]
fn garbage_request_line_gets_400() {
    let server = start_server();
    let reply = raw_exchange(server.local_addr(), b"complete nonsense\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply:?}");
}

/// More request headers than the cap is rejected with 400.
#[test]
fn too_many_headers_gets_400() {
    let server = start_server();
    let mut req = String::from("GET /healthz HTTP/1.1\r\nHost: x\r\n");
    for i in 0..200 {
        req.push_str(&format!("X-Pad-{i}: {i}\r\n"));
    }
    req.push_str("\r\n");
    let reply = raw_exchange(server.local_addr(), req.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply:?}");
}

/// A body larger than the configured cap is rejected with 413 before the
/// server buffers it.
#[test]
fn oversized_body_gets_413() {
    let server = Server::start(ServerConfig {
        max_body: 1024,
        ..ServerConfig::default()
    })
    .unwrap();
    let body = "x".repeat(4096);
    let req = format!(
        "POST /datasets HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let reply = raw_exchange(server.local_addr(), req.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 413"), "got: {reply:?}");
}

/// A body shorter than its Content-Length stalls until the read times
/// out; the connection is dropped and the server stays healthy.
#[test]
fn truncated_body_drops_connection_and_server_stays_healthy() {
    let server = Server::start(ServerConfig {
        request_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"POST /datasets HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{\"na")
        .unwrap();
    // The server times the read out and closes without a response.
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    assert!(out.is_empty(), "no response for a truncated body: {out:?}");
    // The worker survived: the next request on a fresh connection works.
    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status, 200);
}

/// A 1 ms deadline on a large anti-correlated dataset cancels the
/// compute with 504, and the counter lands in `/metrics`.
#[test]
fn expired_deadline_returns_504_and_is_counted() {
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 6000,
        dims: 8,
        seed: 0xFEED,
    };
    let data = spec.generate();
    let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
    let server = start_server();
    let addr = server.local_addr();
    let created = client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"big\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    let resp = client::get(addr, "/skyline?dataset=big&algo=SDI-Subset&deadline_ms=1").unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body_str());

    let metrics = client::get(addr, "/metrics").unwrap();
    let v = Value::parse(&metrics.body_str()).unwrap();
    assert!(
        v.get("deadline_exceeded_total").unwrap().as_u64().unwrap() >= 1,
        "{}",
        metrics.body_str()
    );

    // Without a deadline the same query completes.
    let ok = client::get(addr, "/skyline?dataset=big&algo=SDI-Subset").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body_str());
}

/// Bad `deadline_ms` values are rejected up front.
#[test]
fn bad_deadline_values_get_400() {
    let server = start_server();
    let addr = server.local_addr();
    client::post(addr, "/datasets", "{\"name\": \"d\", \"rows\": [[1, 2]]}").unwrap();
    for bad in ["abc", "0", "-5"] {
        let resp = client::get(addr, &format!("/skyline?dataset=d&deadline_ms={bad}")).unwrap();
        assert_eq!(resp.status, 400, "deadline_ms={bad}: {}", resp.body_str());
    }
}

/// Durable round trip: a server with a data dir is stopped and a new one
/// opened on the same dir; the dataset comes back at the same content
/// version with the same skyline.
#[test]
fn restart_recovers_datasets_from_the_data_dir() {
    let dir = std::env::temp_dir().join(format!("skyline-http-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rows = workload_rows();

    let (want_version, want_ids) = {
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let created = client::post(
            addr,
            "/datasets",
            &format!("{{\"name\": \"dur\", \"rows\": {}}}", rows_json(&rows)),
        )
        .unwrap();
        assert_eq!(created.status, 201, "{}", created.body_str());
        client::post(
            addr,
            "/datasets/dur/points",
            "{\"rows\": [[0.01, 0.01, 0.01, 0.01, 0.01]]}",
        )
        .unwrap();
        client::request(addr, "DELETE", "/datasets/dur/points", b"{\"ids\": [3]}").unwrap();
        let resp = client::get(addr, "/skyline?dataset=dur&algo=SFS").unwrap();
        let (version, _, ids) = parse_skyline_response(&resp.body_str());
        (version, ids)
        // Dropping the handle shuts the first server down.
    };

    let server = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/skyline?dataset=dur&algo=SFS").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let (version, _, ids) = parse_skyline_response(&resp.body_str());
    assert_eq!(version, want_version, "recovered to the acked version");
    assert_eq!(ids, want_ids, "recovered skyline matches pre-restart");

    let metrics = client::get(addr, "/metrics").unwrap();
    let v = Value::parse(&metrics.body_str()).unwrap();
    assert!(
        v.get("recovery_replayed_records")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1,
        "{}",
        metrics.body_str()
    );
    assert!(v.get("wal_bytes").unwrap().as_u64().unwrap() > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Opt-in `include_masks`/`include_rows` extras: absent by default
/// (existing responses unchanged), and when requested they carry the
/// exact per-point dominating-subspace masks, elite positions, and raw
/// coordinates the cluster coordinator consumes.
#[test]
fn skyline_extras_are_opt_in_and_exact() {
    let rows = workload_rows();
    let data = Dataset::from_rows(&rows).unwrap();
    let server = start_server();
    let addr = server.local_addr();
    let created = client::post(
        addr,
        "/datasets",
        &format!("{{\"name\": \"x\", \"rows\": {}}}", rows_json(&rows)),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    // Default and explicit-zero responses carry no extras.
    for query in ["", "&include_masks=0&include_rows=0"] {
        let resp = client::get(addr, &format!("/skyline?dataset=x{query}")).unwrap();
        assert_eq!(resp.status, 200);
        let v = Value::parse(&resp.body_str()).unwrap();
        assert!(v.get("masks").is_none(), "masks must be opt-in");
        assert!(v.get("elites").is_none());
        assert!(v.get("rows").is_none());
    }

    // Twice: the second request is a cache hit, and extras must be
    // recomputed identically for it.
    let mut bodies = Vec::new();
    for _ in 0..2 {
        let resp = client::get(addr, "/skyline?dataset=x&include_masks=1&include_rows=1").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        bodies.push(resp.body_str());
    }
    let first = Value::parse(&bodies[0]).unwrap();
    let second = Value::parse(&bodies[1]).unwrap();
    assert_eq!(
        second.get("cached").map(|v| matches!(v, Value::Bool(true))),
        Some(true),
        "{}",
        bodies[1]
    );

    for v in [&first, &second] {
        let ids: Vec<u32> = v
            .get("ids")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap() as u32)
            .collect();
        let masks: Vec<u64> = v
            .get("masks")
            .and_then(Value::as_arr)
            .expect("masks requested")
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        let elites: Vec<usize> = v
            .get("elites")
            .and_then(Value::as_arr)
            .expect("elites requested")
            .iter()
            .map(|x| x.as_u64().unwrap() as usize)
            .collect();
        assert_eq!(masks.len(), ids.len(), "masks parallel to ids");
        assert!(
            elites.iter().all(|&e| e < ids.len()),
            "elite positions in range"
        );

        // The server must agree with a local run of the same helpers
        // (handles are 0..n, so ids are row indices).
        let elite_ids = skyline_core::shard_merge::select_reference_elites(&data, &ids);
        let expected_masks: Vec<u64> =
            skyline_core::shard_merge::reference_masks(&data, &ids, &elite_ids)
                .iter()
                .map(|s| s.bits())
                .collect();
        assert_eq!(masks, expected_masks, "masks match the library helpers");
        let expected_elites: Vec<usize> = elite_ids
            .iter()
            .map(|e| ids.iter().position(|x| x == e).unwrap())
            .collect();
        assert_eq!(elites, expected_elites);

        // Rows round-trip the exact coordinates.
        let resp_rows = v
            .get("rows")
            .and_then(Value::as_arr)
            .expect("rows requested");
        assert_eq!(resp_rows.len(), ids.len());
        for (arr, &id) in resp_rows.iter().zip(&ids) {
            let got: Vec<f64> = arr
                .as_arr()
                .unwrap()
                .iter()
                .map(|x| x.as_f64().unwrap())
                .collect();
            assert_eq!(got.as_slice(), data.point(id), "row {id} must be exact");
        }
    }

    // Masks are skyline-only (k=1) and the flag is strictly 0/1.
    let resp = client::get(addr, "/skyline?dataset=x&include_masks=1&k=2").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let resp = client::get(addr, "/skyline?dataset=x&include_masks=yes").unwrap();
    assert_eq!(resp.status, 400);
}

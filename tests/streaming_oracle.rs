//! Randomised insert/delete fuzz for [`StreamingSkyline`] against a
//! naive recompute oracle: after every mutation the maintained skyline
//! must equal the brute-force skyline of the live rows, and the
//! structure's own invariants must hold.

use skyline_core::dataset::Dataset;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;
use skyline_integration_tests::oracle_skyline;

/// Deterministic xorshift so the fuzz schedule is reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn f64(&mut self) -> f64 {
        (self.next() % 10_000) as f64 / 10_000.0
    }
}

/// Brute-force skyline of the live points only, as streaming ids.
fn live_oracle(live: &[(PointId, Vec<f64>)]) -> Vec<PointId> {
    if live.is_empty() {
        return Vec::new();
    }
    let rows: Vec<Vec<f64>> = live.iter().map(|(_, r)| r.clone()).collect();
    let data = Dataset::from_rows(&rows).unwrap();
    oracle_skyline(&data)
        .into_iter()
        .map(|i| live[i as usize].0)
        .collect()
}

fn fuzz(dims: usize, steps: usize, seed: u64, delete_bias: u64) {
    let mut rng = Rng(seed);
    let mut sky = StreamingSkyline::new(dims).unwrap();
    let mut metrics = Metrics::new();
    let mut live: Vec<(PointId, Vec<f64>)> = Vec::new();

    for step in 0..steps {
        let delete = !live.is_empty() && rng.next() % 100 < delete_bias;
        if delete {
            let victim = live.remove((rng.next() as usize) % live.len()).0;
            assert!(sky.remove(victim, &mut metrics), "step {step}: live remove");
            // A second delete of the same id must be a no-op.
            assert!(!sky.remove(victim, &mut metrics));
        } else {
            // Quantised coordinates so duplicates and ties actually occur.
            let row: Vec<f64> = (0..dims).map(|_| (rng.f64() * 8.0).floor() / 8.0).collect();
            let id = sky.insert(&row, &mut metrics).unwrap();
            live.push((id, row));
        }

        sky.check_invariants();
        assert_eq!(sky.len(), live.len(), "step {step}: live count");
        let mut expected = live_oracle(&live);
        expected.sort_unstable();
        assert_eq!(
            sky.skyline(),
            expected,
            "step {step}: maintained skyline diverged (dims={dims} seed={seed})"
        );
    }
}

#[test]
fn insert_only_stream_matches_oracle() {
    fuzz(4, 120, 0xA11CE, 0);
}

#[test]
fn mixed_insert_delete_stream_matches_oracle() {
    fuzz(3, 150, 0xB0B, 35);
}

#[test]
fn delete_heavy_stream_matches_oracle() {
    // Deletion-dominated schedule: the structure repeatedly re-resolves
    // shadowed points as their killers disappear.
    fuzz(5, 120, 0xCAFE, 60);
}

#[test]
fn low_dimensional_tie_heavy_stream() {
    // d = 2 with coarse quantisation: many exact duplicates, which must
    // enter and leave the skyline together.
    fuzz(2, 150, 0xD00D, 30);
}

#[test]
fn draining_to_empty_restores_the_empty_skyline() {
    let mut rng = Rng(7);
    let mut sky = StreamingSkyline::new(3).unwrap();
    let mut metrics = Metrics::new();
    let mut live: Vec<PointId> = Vec::new();
    for _ in 0..40 {
        let row: Vec<f64> = (0..3).map(|_| rng.f64()).collect();
        live.push(sky.insert(&row, &mut metrics).unwrap());
    }
    while let Some(id) = live.pop() {
        assert!(sky.remove(id, &mut metrics));
        sky.check_invariants();
    }
    assert!(sky.is_empty());
    assert!(sky.skyline().is_empty());
}

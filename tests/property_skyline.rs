//! Property-based tests (proptest) over the whole stack: dominance
//! algebra, subspace algebra, subset-index semantics, and
//! algorithm-vs-oracle agreement on arbitrary point sets.

use proptest::collection::vec;
use proptest::prelude::*;
use skyline_algos::{all_algorithms, SkylineAlgorithm};
use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominance, dominating_subspace, DomRelation};
use skyline_core::metrics::Metrics;
use skyline_core::subset_index::SubsetIndex;
use skyline_core::subspace::Subspace;
use skyline_integration_tests::oracle_skyline;

/// Small-domain coordinates force plenty of ties and duplicates — the
/// hard cases for sort-based algorithms.
fn arb_dataset(max_n: usize, dims: usize) -> impl Strategy<Value = Dataset> {
    vec(vec(0..6i8, dims), 1..max_n).prop_map(move |rows| {
        let rows: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(|v| v as f64).collect())
            .collect();
        Dataset::from_rows(&rows).expect("valid rows")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominance_is_asymmetric_and_flip_consistent(
        a in vec(-5.0f64..5.0, 4),
        b in vec(-5.0f64..5.0, 4),
    ) {
        let ab = dominance(&a, &b);
        let ba = dominance(&b, &a);
        prop_assert_eq!(ab.flip(), ba);
        if ab == DomRelation::Dominates {
            prop_assert_eq!(ba, DomRelation::DominatedBy);
        }
    }

    #[test]
    fn dominance_is_transitive(
        a in vec(0..5i8, 3),
        b in vec(0..5i8, 3),
        c in vec(0..5i8, 3),
    ) {
        let f = |v: &Vec<i8>| -> Vec<f64> { v.iter().map(|&x| x as f64).collect() };
        let (a, b, c) = (f(&a), f(&b), f(&c));
        if dominance(&a, &b) == DomRelation::Dominates
            && dominance(&b, &c) == DomRelation::Dominates
        {
            prop_assert_eq!(dominance(&a, &c), DomRelation::Dominates);
        }
    }

    #[test]
    fn dominating_subspace_characterises_dominance(
        q in vec(0..5i8, 5),
        p in vec(0..5i8, 5),
    ) {
        let f = |v: &Vec<i8>| -> Vec<f64> { v.iter().map(|&x| x as f64).collect() };
        let (q, p) = (f(&q), f(&p));
        let d = dominating_subspace(&q, &p);
        // D_{q≺p} = D  ⇒  q ≺ p (the paper's consequence of Def. 3.4; the
        // converse is false — dominance needs only one strict dimension).
        if d == Subspace::full(5) {
            prop_assert_eq!(dominance(&q, &p), DomRelation::Dominates);
        }
        // q ≺ p  ⇒  D_{q≺p} ≠ ∅.
        if dominance(&q, &p) == DomRelation::Dominates {
            prop_assert!(!d.is_empty());
        }
        // D_{q≺p} = ∅  ⇔  p ⪯ q.
        let rel = dominance(&q, &p);
        prop_assert_eq!(
            d.is_empty(),
            rel == DomRelation::DominatedBy || rel == DomRelation::Equal
        );
    }

    #[test]
    fn subspace_algebra(a in any::<u64>(), b in any::<u64>(), dims in 1usize..=64) {
        let mask = Subspace::full(dims).bits();
        let sa = Subspace::from_bits(a & mask);
        let sb = Subspace::from_bits(b & mask);
        // De Morgan over the bounded universe.
        prop_assert_eq!(
            sa.union(sb).complement(dims),
            sa.complement(dims).intersection(sb.complement(dims))
        );
        // Inclusion via union/intersection.
        prop_assert_eq!(sa.is_subset_of(sb), sa.union(sb) == sb);
        prop_assert_eq!(sa.is_subset_of(sb), sa.intersection(sb) == sa);
        // Size is additive over disjoint parts.
        prop_assert_eq!(
            sa.size() + sa.complement(dims).size(),
            dims
        );
    }

    #[test]
    fn subset_index_matches_brute_force(
        entries in vec((0u32..64, 0u64..256), 0..40),
        query in 0u64..256,
    ) {
        let dims = 8;
        let mut index = SubsetIndex::new(dims);
        for &(id, bits) in &entries {
            index.put(id, Subspace::from_bits(bits));
        }
        let q = Subspace::from_bits(query);
        let mut m = Metrics::new();
        let mut got = index.query(q, &mut m);
        got.sort_unstable();
        let mut expected: Vec<u32> = entries
            .iter()
            .filter(|(_, bits)| Subspace::from_bits(*bits).is_superset_of(q))
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn every_algorithm_matches_the_oracle_3d(data in arb_dataset(60, 3)) {
        let expected = oracle_skyline(&data);
        for algo in all_algorithms() {
            prop_assert_eq!(
                algo.compute(&data),
                expected.clone(),
                "{} disagrees",
                algo.name()
            );
        }
    }

    #[test]
    fn every_algorithm_matches_the_oracle_5d(data in arb_dataset(40, 5)) {
        let expected = oracle_skyline(&data);
        for algo in all_algorithms() {
            prop_assert_eq!(
                algo.compute(&data),
                expected.clone(),
                "{} disagrees",
                algo.name()
            );
        }
    }

    #[test]
    fn non_skyline_points_have_a_skyline_dominator(data in arb_dataset(50, 4)) {
        let skyline = oracle_skyline(&data);
        for (q, q_row) in data.iter() {
            if skyline.contains(&q) {
                continue;
            }
            let dominated_by_skyline = skyline.iter().any(|&s| {
                dominance(data.point(s), q_row) == DomRelation::Dominates
            });
            prop_assert!(dominated_by_skyline, "point {} has no skyline dominator", q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random interleavings of inserts and removes leave the streaming
    /// structure in agreement with a brute-force skyline of the alive
    /// multiset.
    #[test]
    fn streaming_matches_oracle_under_random_ops(
        ops in vec((vec(0..5i8, 3), any::<bool>(), any::<u8>()), 1..120)
    ) {
        use skyline_core::streaming::StreamingSkyline;
        let mut sky = StreamingSkyline::with_reference_size(3, 4).unwrap();
        let mut metrics = Metrics::new();
        let mut alive: Vec<(u32, Vec<f64>)> = Vec::new();
        for (row, is_remove, pick) in ops {
            if is_remove && !alive.is_empty() {
                let at = pick as usize % alive.len();
                let (id, _) = alive.remove(at);
                prop_assert!(sky.remove(id, &mut metrics));
            } else {
                let row: Vec<f64> = row.into_iter().map(|v| v as f64).collect();
                let id = sky.insert(&row, &mut metrics).unwrap();
                alive.push((id, row));
            }
            // Oracle over the alive multiset.
            let mut expected: Vec<u32> = Vec::new();
            for (i, (id, p)) in alive.iter().enumerate() {
                let dominated = alive.iter().enumerate().any(|(j, (_, q))| {
                    i != j && dominance(q, p) == DomRelation::Dominates
                });
                if !dominated {
                    expected.push(*id);
                }
            }
            expected.sort_unstable();
            prop_assert_eq!(sky.skyline(), expected);
        }
        sky.check_invariants();
    }

    /// Parallel partition-merge engines agree with the sequential oracle
    /// on arbitrary tie-heavy point sets, at arbitrary worker counts —
    /// including counts far above the point count.
    #[test]
    fn parallel_engines_match_oracle_at_arbitrary_thread_counts(
        data in arb_dataset(50, 4),
        threads in 1usize..12,
    ) {
        use skyline_algos::parallel_suite;
        let expected = oracle_skyline(&data);
        for algo in parallel_suite(None, threads) {
            prop_assert_eq!(
                algo.compute(&data),
                expected.clone(),
                "{} (threads={}) disagrees",
                algo.name(),
                threads
            );
        }
    }

    /// Duplicate rows enter and leave the skyline as a block, no matter
    /// where shard boundaries fall between the copies.
    #[test]
    fn shard_boundaries_preserve_duplicate_blocks(
        base in vec(vec(0..4i8, 3), 2..20),
        copies in 2usize..5,
        threads in 2usize..8,
    ) {
        use skyline_algos::boosted::SalsaSubset;
        use skyline_algos::parallel::ParallelBoosted;
        // Interleave `copies` copies of each base row so duplicates are
        // guaranteed to straddle shard boundaries.
        let rows: Vec<Vec<f64>> = (0..copies)
            .flat_map(|_| base.iter())
            .map(|r| r.iter().map(|&v| v as f64).collect())
            .collect();
        let data = Dataset::from_rows(&rows).expect("valid rows");
        let expected = oracle_skyline(&data);
        let engine = ParallelBoosted::new(SalsaSubset::default(), threads);
        let got = engine.compute(&data);
        prop_assert_eq!(got.clone(), expected, "threads={}", threads);
        // Every skyline row's duplicates are all present: ids i and
        // i + k·base.len() reference identical rows.
        let n = base.len();
        for &id in &got {
            let canonical = id as usize % n;
            for c in 0..copies {
                let twin = (canonical + c * n) as u32;
                prop_assert!(
                    got.contains(&twin),
                    "duplicate {} of skyline point {} dropped",
                    twin,
                    id
                );
            }
        }
    }

    /// The merge never drops or duplicates a point: the detailed outcome's
    /// skyline is strictly sorted, every id appears in its own shard's
    /// local skyline, and equals the sequential skyline as a set.
    #[test]
    fn shard_merge_neither_drops_nor_duplicates(
        data in arb_dataset(60, 3),
        threads in 2usize..7,
    ) {
        use skyline_algos::boosted::SfsSubset;
        use skyline_algos::parallel::ParallelBoosted;
        use skyline_obs::NoopRecorder;
        let engine = ParallelBoosted::new(SfsSubset::default(), threads);
        let outcome = engine.compute_detailed(&data, &mut NoopRecorder);
        prop_assert!(outcome.skyline.windows(2).all(|w| w[0] < w[1]));
        for &id in &outcome.skyline {
            let shard = outcome
                .shards
                .iter()
                .find(|s| (s.lo..s.hi).contains(&(id as usize)))
                .expect("inside a shard");
            prop_assert!(shard.skyline.contains(&id));
        }
        prop_assert_eq!(outcome.skyline, oracle_skyline(&data));
    }

    /// The k-skyband agrees with a brute-force dominator count, for all k.
    #[test]
    fn k_skyband_matches_oracle(data in arb_dataset(40, 3), k in 0usize..6) {
        use skyline_algos::skyband::k_skyband;
        let mut m = Metrics::new();
        let band = k_skyband(&data, k, &mut m);
        for (i, p) in data.iter() {
            let dominators = data
                .iter()
                .filter(|(j, q)| *j != i && dominance(q, p) == DomRelation::Dominates)
                .count();
            let member = band.iter().find(|b| b.id == i);
            if dominators < k {
                let member = member.expect("band member missing");
                prop_assert_eq!(member.dominators as usize, dominators);
            } else {
                prop_assert!(member.is_none(), "point {} should be outside the band", i);
            }
        }
    }
}

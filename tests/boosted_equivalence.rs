//! The boosted variants must compute the same skyline as their base
//! algorithms for *every* stability threshold, and the subset container
//! must never test more candidates than the plain list.

use skyline_algos::boosted::{SalsaSubset, SdiSubset, SfsSubset};
use skyline_algos::{salsa::SaLSa, sdi::Sdi, sfs::Sfs, SkylineAlgorithm};
use skyline_core::boost::{boosted_skyline_with, BoostConfig, SortStrategy};
use skyline_core::container::{ListContainer, SubsetContainer};
use skyline_core::merge::MergeConfig;
use skyline_core::metrics::Metrics;
use skyline_integration_tests::workload_grid;

#[test]
fn boosted_equals_base_for_every_sigma() {
    for (data, label) in workload_grid() {
        let base_sfs = Sfs.compute(&data);
        let base_salsa = SaLSa.compute(&data);
        let base_sdi = Sdi.compute(&data);
        assert_eq!(base_sfs, base_salsa, "{label}");
        assert_eq!(base_sfs, base_sdi, "{label}");
        for sigma in 2..=data.dims().max(2) {
            let s = Some(sigma);
            assert_eq!(
                SfsSubset::new(s).compute(&data),
                base_sfs,
                "SFS {label} σ={sigma}"
            );
            assert_eq!(
                SalsaSubset::new(s).compute(&data),
                base_salsa,
                "SaLSa {label} σ={sigma}"
            );
            assert_eq!(
                SdiSubset::new(s).compute(&data),
                base_sdi,
                "SDI {label} σ={sigma}"
            );
        }
    }
}

#[test]
fn subset_container_never_inflates_candidate_volume() {
    for (data, label) in workload_grid() {
        if data.dims() < 3 {
            continue; // d = 2: the paper's degenerate case, skip.
        }
        let config = BoostConfig {
            merge: MergeConfig::recommended(data.dims()),
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        let mut m_list = Metrics::new();
        let mut m_subset = Metrics::new();
        let mut list = ListContainer::new();
        let mut subset: SubsetContainer = SubsetContainer::new(data.dims());
        let a = boosted_skyline_with(&data, &config, &mut list, &mut m_list);
        let b = boosted_skyline_with(&data, &config, &mut subset, &mut m_subset);
        assert_eq!(a.skyline, b.skyline, "{label}");
        // (Dominance-test counts are not strictly comparable — candidate
        // ordering differs and the scan early-exits — but the candidate
        // volume is: every subset-query result is a subset of the list.)
        assert!(
            m_subset.candidates_returned <= m_list.candidates_returned,
            "{label}: subset container returned more candidates \
             ({} > {})",
            m_subset.candidates_returned,
            m_list.candidates_returned
        );
    }
}

#[test]
fn boosted_dt_reduction_materialises_at_higher_dims() {
    // The paper's headline: on UI data at 8-D the boosted variants do
    // several times fewer dominance tests. Use a size where the effect is
    // unambiguous.
    let data = skyline_data::uniform_independent(8000, 8, 99);
    let base = Sfs.run(&data);
    let boosted = SfsSubset::default().run(&data);
    assert_eq!(base.skyline, boosted.skyline);
    let gain = base.metrics.dominance_tests as f64 / boosted.metrics.dominance_tests as f64;
    assert!(
        gain > 2.0,
        "expected a clear DT gain on 8-D UI data, got {gain:.2}x"
    );
}

#[test]
fn degenerate_two_d_stays_correct_even_if_useless() {
    // Section 5: "in the case of d = 2 … the usefulness of our proposed
    // method is very limited" — but it must stay correct.
    let data = skyline_data::anti_correlated(3000, 2, 5);
    assert_eq!(SfsSubset::default().compute(&data), Sfs.compute(&data));
    assert_eq!(SalsaSubset::default().compute(&data), SaLSa.compute(&data));
    assert_eq!(SdiSubset::default().compute(&data), Sdi.compute(&data));
}

//! Shared helpers for the cross-crate integration tests.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominance, DomRelation};
use skyline_core::point::PointId;
use skyline_obs::json::Value;

/// The in-tree HTTP client, re-exported for the server tests.
pub use skyline_serve::client as http_client;

/// Start a `skyline-serve` instance on an ephemeral port with
/// test-friendly defaults.
pub fn start_server() -> skyline_serve::ServerHandle {
    skyline_serve::Server::start(skyline_serve::ServerConfig {
        threads: 4,
        cache_capacity: 64,
        ..Default::default()
    })
    .expect("start test server")
}

/// Render rows as the JSON array-of-arrays the server expects.
/// `f64::to_string` round-trips exactly, so the server sees the same
/// values the test computes with locally.
pub fn rows_json(rows: &[Vec<f64>]) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            let vals: Vec<String> = r.iter().map(f64::to_string).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

/// Parse a `/skyline` response body into `(version, cached, ids)`.
pub fn parse_skyline_response(body: &str) -> (u64, bool, Vec<PointId>) {
    let v = Value::parse(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    let version = v.get("version").and_then(Value::as_u64).expect("version");
    let cached = match v.get("cached") {
        Some(Value::Bool(b)) => *b,
        other => panic!("bad \"cached\" field {other:?}"),
    };
    let ids = v
        .get("ids")
        .and_then(Value::as_arr)
        .expect("ids")
        .iter()
        .map(|x| x.as_u64().expect("numeric id") as PointId)
        .collect();
    (version, cached, ids)
}

/// Brute-force quadratic skyline — the oracle every algorithm is checked
/// against. Independent of any crate algorithm (including BNL).
pub fn oracle_skyline(data: &Dataset) -> Vec<PointId> {
    let mut out = Vec::new();
    for (i, p) in data.iter() {
        let mut dominated = false;
        for (j, q) in data.iter() {
            if i != j && dominance(q, p) == DomRelation::Dominates {
                dominated = true;
                break;
            }
        }
        if !dominated {
            out.push(i);
        }
    }
    out
}

/// The standard small workload grid used across the integration tests:
/// all three distributions at a few (n, d) shapes.
pub fn workload_grid() -> Vec<(Dataset, String)> {
    let mut out = Vec::new();
    for dist in [
        skyline_data::Distribution::Independent,
        skyline_data::Distribution::Correlated,
        skyline_data::Distribution::AntiCorrelated,
    ] {
        for &(n, d) in &[(200usize, 2usize), (300, 4), (300, 6), (200, 8), (150, 10)] {
            let spec = skyline_data::SyntheticSpec {
                distribution: dist,
                cardinality: n,
                dims: d,
                seed: 0xBEEF + n as u64 + d as u64,
            };
            out.push((spec.generate(), format!("{} n={n} d={d}", dist.tag())));
        }
    }
    out
}

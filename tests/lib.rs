//! Shared helpers for the cross-crate integration tests.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominance, DomRelation};
use skyline_core::point::PointId;

/// Brute-force quadratic skyline — the oracle every algorithm is checked
/// against. Independent of any crate algorithm (including BNL).
pub fn oracle_skyline(data: &Dataset) -> Vec<PointId> {
    let mut out = Vec::new();
    for (i, p) in data.iter() {
        let mut dominated = false;
        for (j, q) in data.iter() {
            if i != j && dominance(q, p) == DomRelation::Dominates {
                dominated = true;
                break;
            }
        }
        if !dominated {
            out.push(i);
        }
    }
    out
}

/// The standard small workload grid used across the integration tests:
/// all three distributions at a few (n, d) shapes.
pub fn workload_grid() -> Vec<(Dataset, String)> {
    let mut out = Vec::new();
    for dist in [
        skyline_data::Distribution::Independent,
        skyline_data::Distribution::Correlated,
        skyline_data::Distribution::AntiCorrelated,
    ] {
        for &(n, d) in &[(200usize, 2usize), (300, 4), (300, 6), (200, 8), (150, 10)] {
            let spec = skyline_data::SyntheticSpec {
                distribution: dist,
                cardinality: n,
                dims: d,
                seed: 0xBEEF + n as u64 + d as u64,
            };
            out.push((spec.generate(), format!("{} n={n} d={d}", dist.tag())));
        }
    }
    out
}

//! End-to-end pipeline tests: generate → write CSV → read CSV → compute,
//! exactly what a downstream user of the library (or the `skyline` CLI)
//! does.

use skyline_algos::algorithm_by_name;
use skyline_core::point::Preference;
use skyline_data::io::{read_csv, write_csv};
use skyline_data::{Distribution, SyntheticSpec};
use skyline_integration_tests::oracle_skyline;

#[test]
fn generate_write_read_compute_roundtrip() {
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
    ] {
        let data = SyntheticSpec {
            distribution: dist,
            cardinality: 500,
            dims: 5,
            seed: 404,
        }
        .generate();
        let mut buf = Vec::new();
        write_csv(&mut buf, &data).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(data, back, "{dist:?}: CSV round-trip changed the data");

        let algo = algorithm_by_name("SDI-Subset").unwrap();
        assert_eq!(algo.compute(&back), oracle_skyline(&data), "{dist:?}");
    }
}

#[test]
fn mixed_preferences_pipeline() {
    // A realistic product table: price ↓, battery ↑, weight ↓, rating ↑.
    let rows = [
        [999.0, 12.0, 1.3, 4.6],
        [799.0, 10.0, 1.5, 4.4],
        [1099.0, 14.0, 1.2, 4.8],
        [999.0, 11.0, 1.4, 4.5], // dominated by row 0
        [649.0, 8.0, 1.8, 4.0],
        [1500.0, 13.0, 1.25, 4.7], // dominated by row 2
    ];
    let prefs = [
        Preference::Min,
        Preference::Max,
        Preference::Min,
        Preference::Max,
    ];
    let data = skyline_core::dataset::Dataset::from_rows_with_preferences(&rows, &prefs).unwrap();
    let expected = oracle_skyline(&data);
    assert_eq!(expected, vec![0, 1, 2, 4]);
    for name in [
        "BNL",
        "SFS-Subset",
        "SaLSa-Subset",
        "SDI-Subset",
        "BSkyTree-P",
    ] {
        let algo = algorithm_by_name(name).unwrap();
        assert_eq!(algo.compute(&data), expected, "{name}");
    }
}

#[test]
fn skyline_of_skyline_is_itself() {
    let data = skyline_data::anti_correlated(2000, 5, 77);
    let algo = algorithm_by_name("SaLSa-Subset").unwrap();
    let skyline = algo.compute(&data);
    let projected = data.project(&skyline);
    let again = algo.compute(&projected);
    // Every projected point must survive: the skyline is a fixpoint.
    assert_eq!(again.len(), skyline.len());
}

#[test]
fn skyline_sizes_track_the_papers_ordering() {
    // Table 1's structural fact: |skyline(AC)| ≫ |skyline(UI)| ≫
    // |skyline(CO)| at equal shape.
    let n = 4000;
    let d = 8;
    let algo = algorithm_by_name("BSkyTree-P").unwrap();
    let ac = algo.compute(&skyline_data::anti_correlated(n, d, 1)).len();
    let ui = algo
        .compute(&skyline_data::uniform_independent(n, d, 1))
        .len();
    let co = algo.compute(&skyline_data::correlated(n, d, 1)).len();
    assert!(ac > ui, "AC skyline ({ac}) must exceed UI ({ui})");
    assert!(ui > co, "UI skyline ({ui}) must exceed CO ({co})");
    assert!(co < n / 20, "CO skyline must be tiny, got {co}");
}

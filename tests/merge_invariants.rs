//! Invariants of the Merge phase (Algorithm 1), checked on realistic
//! workloads: pivots are true skyline points, survivors are incomparable
//! with every pivot, subspaces match Definition 4.1, and nothing is lost —
//! pruned points are exactly those dominated by some pivot.

use skyline_core::dominance::{dominates, dominating_subspace, points_equal};
use skyline_core::merge::{merge, MergeConfig, PivotScore};
use skyline_core::metrics::Metrics;
use skyline_core::subspace::Subspace;
use skyline_integration_tests::{oracle_skyline, workload_grid};

#[test]
fn pivots_are_true_skyline_points() {
    for (data, label) in workload_grid() {
        let skyline = oracle_skyline(&data);
        let mut m = Metrics::new();
        let out = merge(&data, &MergeConfig::recommended(data.dims()), &mut m);
        for &p in &out.pivots {
            assert!(skyline.contains(&p), "{label}: pivot {p} not in skyline");
        }
        for &p in &out.duplicate_skyline {
            assert!(
                skyline.contains(&p),
                "{label}: duplicate {p} not in skyline"
            );
        }
    }
}

#[test]
fn survivors_are_incomparable_with_every_pivot() {
    for (data, label) in workload_grid() {
        let mut m = Metrics::new();
        let out = merge(&data, &MergeConfig::recommended(data.dims()), &mut m);
        for &q in &out.survivors {
            for &p in &out.pivots {
                assert!(
                    !dominates(data.point(p), data.point(q)),
                    "{label}: pivot {p} dominates survivor {q}"
                );
                assert!(
                    !dominates(data.point(q), data.point(p)),
                    "{label}: survivor {q} dominates pivot {p}"
                );
            }
        }
    }
}

#[test]
fn subspaces_are_the_union_over_pivots() {
    for (data, label) in workload_grid() {
        let mut m = Metrics::new();
        let out = merge(&data, &MergeConfig::recommended(data.dims()), &mut m);
        for (&q, &sub) in out.survivors.iter().zip(&out.subspaces) {
            let expected = out.pivots.iter().fold(Subspace::EMPTY, |acc, &p| {
                acc.union(dominating_subspace(data.point(q), data.point(p)))
            });
            assert_eq!(sub, expected, "{label}: survivor {q}");
            assert!(!sub.is_empty(), "{label}: survivor {q} with empty subspace");
            assert!(sub.size() <= data.dims());
        }
    }
}

#[test]
fn every_point_is_accounted_for() {
    for (data, label) in workload_grid() {
        let mut m = Metrics::new();
        let out = merge(&data, &MergeConfig::recommended(data.dims()), &mut m);
        let mut seen = vec![false; data.len()];
        for &p in out
            .pivots
            .iter()
            .chain(&out.duplicate_skyline)
            .chain(&out.survivors)
        {
            assert!(!seen[p as usize], "{label}: {p} appears twice");
            seen[p as usize] = true;
        }
        // Unaccounted points must be dominated by (or equal to... no:
        // equal points join duplicate_skyline) some pivot.
        for (q, row) in data.iter() {
            if seen[q as usize] {
                continue;
            }
            let pruned_by_pivot = out
                .pivots
                .iter()
                .any(|&p| dominates(data.point(p), row) || points_equal(data.point(p), row));
            assert!(
                pruned_by_pivot,
                "{label}: point {q} vanished without a dominator"
            );
        }
    }
}

#[test]
fn sigma_controls_pivot_count_monotonically_in_spirit() {
    // Larger σ never stops *earlier* than a smaller σ on the same data
    // (the stability loop runs until σ' ≥ σ, and σ' is computed the same
    // way for both runs).
    for (data, label) in workload_grid() {
        if data.dims() < 4 {
            continue;
        }
        let mut m = Metrics::new();
        let small = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 64,
                score: PivotScore::default(),
            },
            &mut m,
        );
        let large = merge(
            &data,
            &MergeConfig {
                sigma: data.dims(),
                max_pivots: 64,
                score: PivotScore::default(),
            },
            &mut m,
        );
        assert!(
            small.pivots.len() <= large.pivots.len(),
            "{label}: σ=2 used {} pivots, σ=d used {}",
            small.pivots.len(),
            large.pivots.len()
        );
    }
}

#[test]
fn exhaustion_produces_the_full_skyline() {
    // On strongly correlated data a handful of pivots often consumes the
    // whole dataset; in that case merge alone must deliver the skyline.
    let data = skyline_data::correlated(2000, 4, 31);
    let mut m = Metrics::new();
    let out = merge(
        &data,
        &MergeConfig {
            sigma: 4,
            max_pivots: 256,
            score: PivotScore::default(),
        },
        &mut m,
    );
    if out.exhausted {
        assert_eq!(out.confirmed_skyline(), oracle_skyline(&data));
    } else {
        // Not exhausted: pivots + survivors together still cover the
        // skyline.
        let skyline = oracle_skyline(&data);
        let confirmed = out.confirmed_skyline();
        for s in skyline {
            assert!(
                confirmed.contains(&s) || out.survivors.contains(&s),
                "skyline point {s} lost"
            );
        }
    }
}

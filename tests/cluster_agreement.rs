//! Cluster-vs-library agreement: a sharded cluster must answer exactly
//! what a direct in-process skyline computation answers over the same
//! rows — same ids, any shard count — and degrade to the *correct
//! subset* (not an error) when a shard dies.

use std::net::SocketAddr;

use skyline_cluster::shard_map::shard_of;
use skyline_cluster::{Cluster, ClusterConfig, ClusterHandle};
use skyline_core::dataset::Dataset;
use skyline_integration_tests::{http_client, oracle_skyline, rows_json};
use skyline_obs::json::Value;
use skyline_serve::ServerHandle;

/// Spawn `n` in-process shard servers plus a coordinator fronting them.
fn start_cluster(n: usize) -> (Vec<ServerHandle>, ClusterHandle) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|_| {
            skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads: 2,
                ..Default::default()
            })
            .expect("start shard")
        })
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let coordinator = Cluster::start(ClusterConfig {
        threads: 4,
        ..ClusterConfig::new(addrs)
    })
    .expect("start coordinator");
    (shards, coordinator)
}

fn create_dataset(coord: SocketAddr, name: &str, rows: &[Vec<f64>]) {
    let body = format!("{{\"name\":\"{name}\",\"rows\":{}}}", rows_json(rows));
    let resp = http_client::post(coord, "/datasets", &body).expect("create");
    assert_eq!(resp.status, 201, "create failed: {}", resp.body_str());
}

/// `(ids, partial, missing_shards)` from a coordinator `/skyline` body.
fn query_skyline(coord: SocketAddr, name: &str) -> (Vec<u64>, bool, Vec<u64>) {
    let resp = http_client::get(coord, &format!("/skyline?dataset={name}")).expect("query");
    assert_eq!(resp.status, 200, "query failed: {}", resp.body_str());
    let v = Value::parse(&resp.body_str()).expect("response JSON");
    let ids = v
        .get("ids")
        .and_then(Value::as_arr)
        .expect("ids")
        .iter()
        .map(|x| x.as_u64().expect("numeric id"))
        .collect();
    let partial = match v.get("partial") {
        Some(Value::Bool(b)) => *b,
        other => panic!("bad \"partial\" field {other:?}"),
    };
    let missing = v
        .get("missing_shards")
        .and_then(Value::as_arr)
        .expect("missing_shards")
        .iter()
        .map(|x| x.as_u64().expect("numeric shard id"))
        .collect();
    (ids, partial, missing)
}

fn grid() -> Vec<(String, Vec<Vec<f64>>)> {
    let mut out = Vec::new();
    for dist in [
        skyline_data::Distribution::Independent,
        skyline_data::Distribution::Correlated,
        skyline_data::Distribution::AntiCorrelated,
    ] {
        for d in 2..=6usize {
            let spec = skyline_data::SyntheticSpec {
                distribution: dist,
                cardinality: 400,
                dims: d,
                seed: 0xC10C + d as u64,
            };
            let data = spec.generate();
            let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
            out.push((format!("{}-d{d}", dist.tag().to_lowercase()), rows));
        }
    }
    out
}

/// Global ids are assigned densely in row order, so the cluster's id
/// list must equal the oracle skyline's row indices — for every
/// distribution, dimensionality, and shard count.
#[test]
fn cluster_agrees_with_direct_library_call() {
    for shard_count in [1usize, 2, 3] {
        let (_shards, coordinator) = start_cluster(shard_count);
        let coord = coordinator.local_addr();
        for (name, rows) in grid() {
            create_dataset(coord, &name, &rows);
            let (ids, partial, missing) = query_skyline(coord, &name);
            assert!(
                !partial,
                "{name} over {shard_count} shards: unexpected partial"
            );
            assert!(missing.is_empty());
            let flat: Vec<f64> = rows.iter().flatten().copied().collect();
            let data = Dataset::from_flat(flat, rows[0].len()).expect("dataset");
            let expected: Vec<u64> = oracle_skyline(&data).iter().map(|&i| i as u64).collect();
            assert_eq!(
                ids, expected,
                "{name} over {shard_count} shards disagrees with the oracle"
            );
        }
    }
}

/// Inserts and removals route to the owning shards; the cluster answer
/// tracks the live rows exactly.
#[test]
fn mutations_route_and_stay_consistent() {
    let (_shards, coordinator) = start_cluster(3);
    let coord = coordinator.local_addr();
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 300,
        dims: 4,
        seed: 99,
    };
    let data = spec.generate();
    let mut rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
    let (initial, appended) = {
        let tail = rows.split_off(200);
        (rows, tail)
    };
    create_dataset(coord, "mut", &initial);

    let body = format!("{{\"rows\":{}}}", rows_json(&appended));
    let resp = http_client::post(coord, "/datasets/mut/points", &body).expect("insert");
    assert_eq!(resp.status, 200, "insert failed: {}", resp.body_str());
    let v = Value::parse(&resp.body_str()).unwrap();
    let new_ids: Vec<u64> = v
        .get("ids")
        .and_then(Value::as_arr)
        .expect("ids")
        .iter()
        .map(|x| x.as_u64().unwrap())
        .collect();
    assert_eq!(new_ids, (200..300).collect::<Vec<u64>>());

    // Remove every third row (a mix of both batches and all shards).
    let victims: Vec<u64> = (0..300u64).step_by(3).collect();
    let ids_json: Vec<String> = victims.iter().map(u64::to_string).collect();
    let body = format!("{{\"ids\":[{}]}}", ids_json.join(","));
    let resp = http_client::request(coord, "DELETE", "/datasets/mut/points", body.as_bytes())
        .expect("remove");
    assert_eq!(resp.status, 200, "remove failed: {}", resp.body_str());

    let (ids, partial, _) = query_skyline(coord, "mut");
    assert!(!partial);
    let all: Vec<Vec<f64>> = initial.iter().chain(&appended).cloned().collect();
    let survivors: Vec<u64> = (0..300u64).filter(|g| g % 3 != 0).collect();
    let flat: Vec<f64> = survivors
        .iter()
        .flat_map(|&g| all[g as usize].iter().copied())
        .collect();
    let data = Dataset::from_flat(flat, 4).unwrap();
    let expected: Vec<u64> = oracle_skyline(&data)
        .iter()
        .map(|&i| survivors[i as usize])
        .collect();
    assert_eq!(ids, expected, "post-mutation cluster skyline is wrong");
}

/// Killing a shard degrades the answer to the skyline of the surviving
/// shards' rows — flagged `partial` with the dead shard listed — rather
/// than failing the query.
#[test]
fn killed_shard_yields_partial_answer_over_survivors() {
    let (mut shards, coordinator) = start_cluster(3);
    let coord = coordinator.local_addr();
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::Independent,
        cardinality: 500,
        dims: 4,
        seed: 1234,
    };
    let data = spec.generate();
    let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
    create_dataset(coord, "frag", &rows);

    let (ids, partial, missing) = query_skyline(coord, "frag");
    assert!(!partial && missing.is_empty());
    assert!(!ids.is_empty());

    const DEAD: usize = 1;
    shards[DEAD].shutdown();

    let (ids, partial, missing) = query_skyline(coord, "frag");
    assert!(partial, "query after shard death must be flagged partial");
    assert_eq!(missing, vec![DEAD as u64]);

    // Oracle: the skyline of exactly the rows the surviving shards own,
    // under the same placement function the coordinator uses.
    let survivors: Vec<u64> = (0..rows.len() as u64)
        .filter(|&g| shard_of(g, 3) != DEAD)
        .collect();
    let flat: Vec<f64> = survivors
        .iter()
        .flat_map(|&g| rows[g as usize].iter().copied())
        .collect();
    let surviving_data = Dataset::from_flat(flat, 4).unwrap();
    let expected: Vec<u64> = oracle_skyline(&surviving_data)
        .iter()
        .map(|&i| survivors[i as usize])
        .collect();
    assert_eq!(
        ids, expected,
        "partial answer must cover exactly the survivors"
    );
}

/// Projected (`dims=`) queries go through the same scatter-gather path:
/// shards compute in the projected space and the merge agrees with a
/// projected oracle.
#[test]
fn projected_cluster_queries_agree() {
    let (_shards, coordinator) = start_cluster(2);
    let coord = coordinator.local_addr();
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 400,
        dims: 5,
        seed: 77,
    };
    let data = spec.generate();
    let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
    create_dataset(coord, "proj", &rows);

    for dims in [vec![0usize, 2], vec![1, 3, 4]] {
        let spec_str: Vec<String> = dims.iter().map(usize::to_string).collect();
        let resp = http_client::get(
            coord,
            &format!("/skyline?dataset=proj&dims={}", spec_str.join(",")),
        )
        .expect("projected query");
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let v = Value::parse(&resp.body_str()).unwrap();
        let ids: Vec<u64> = v
            .get("ids")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        let flat: Vec<f64> = rows
            .iter()
            .flat_map(|r| dims.iter().map(|&d| r[d]))
            .collect();
        let projected = Dataset::from_flat(flat, dims.len()).unwrap();
        let expected: Vec<u64> = oracle_skyline(&projected)
            .iter()
            .map(|&i| i as u64)
            .collect();
        assert_eq!(ids, expected, "projection {dims:?} disagrees");
    }
}

/// `(ids, partial, reused_shards)` from a coordinator `/skyline` body.
fn query_with_reuse(coord: SocketAddr, name: &str) -> (Vec<u64>, bool, Vec<u64>) {
    let resp = http_client::get(coord, &format!("/skyline?dataset={name}")).expect("query");
    assert_eq!(resp.status, 200, "query failed: {}", resp.body_str());
    let v = Value::parse(&resp.body_str()).expect("response JSON");
    let ids = v
        .get("ids")
        .and_then(Value::as_arr)
        .expect("ids")
        .iter()
        .map(|x| x.as_u64().expect("numeric id"))
        .collect();
    let partial = matches!(v.get("partial"), Some(Value::Bool(true)));
    let reused = v
        .get("reused_shards")
        .and_then(Value::as_arr)
        .expect("reused_shards")
        .iter()
        .map(|x| x.as_u64().expect("numeric shard id"))
        .collect();
    (ids, partial, reused)
}

/// With `shard_reuse` on, a repeated query replays every shard's cached
/// answer, a mutation forces a re-query of exactly the shards it
/// touched, and the merged ids match the oracle at every step.
#[test]
fn shard_reuse_skips_unchanged_shards_and_stays_exact() {
    const SHARDS: usize = 3;
    let shards: Vec<ServerHandle> = (0..SHARDS)
        .map(|_| {
            skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads: 2,
                ..Default::default()
            })
            .expect("start shard")
        })
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let coordinator = Cluster::start(ClusterConfig {
        threads: 4,
        shard_reuse: true,
        ..ClusterConfig::new(addrs)
    })
    .expect("start coordinator");
    let coord = coordinator.local_addr();

    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 300,
        dims: 4,
        seed: 4242,
    };
    let data = spec.generate();
    let mut rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
    create_dataset(coord, "reuse", &rows);

    let oracle = |rows: &[Vec<f64>]| -> Vec<u64> {
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let data = Dataset::from_flat(flat, 4).unwrap();
        oracle_skyline(&data).iter().map(|&i| i as u64).collect()
    };

    // First query populates the reuse cache; the second replays it for
    // every shard without an RPC.
    let (first, partial, reused) = query_with_reuse(coord, "reuse");
    assert!(!partial && reused.is_empty());
    assert_eq!(first, oracle(&rows));
    let (second, _, reused) = query_with_reuse(coord, "reuse");
    assert_eq!(reused, (0..SHARDS as u64).collect::<Vec<u64>>());
    assert_eq!(second, first, "reused answer must be byte-identical");

    // One inserted row lands on exactly one shard: the next query must
    // reuse the other two and still agree with the full oracle.
    let global = rows.len() as u64;
    let touched = shard_of(global, SHARDS) as u64;
    let new_row = vec![0.01, 0.01, 0.01, 0.01];
    let body = format!("{{\"rows\":{}}}", rows_json(std::slice::from_ref(&new_row)));
    let resp = http_client::post(coord, "/datasets/reuse/points", &body).expect("insert");
    assert_eq!(resp.status, 200, "insert failed: {}", resp.body_str());
    rows.push(new_row);

    let (ids, _, reused) = query_with_reuse(coord, "reuse");
    let expected_reuse: Vec<u64> = (0..SHARDS as u64).filter(|&s| s != touched).collect();
    assert_eq!(
        reused, expected_reuse,
        "only the untouched shards may be reused after the insert"
    );
    assert_eq!(ids, oracle(&rows), "post-insert reuse answer is wrong");

    // A removal routed to one shard likewise invalidates only it.
    let resp = http_client::request(
        coord,
        "DELETE",
        "/datasets/reuse/points",
        format!("{{\"ids\":[{global}]}}").as_bytes(),
    )
    .expect("remove");
    assert_eq!(resp.status, 200, "remove failed: {}", resp.body_str());
    rows.pop();
    let (ids, _, reused) = query_with_reuse(coord, "reuse");
    assert_eq!(reused, expected_reuse);
    assert_eq!(ids, oracle(&rows), "post-remove reuse answer is wrong");
}

/// Reuse trades freshness of *liveness* for latency: a dead shard whose
/// cached answer is still current is served silently. That is exactly
/// why `shard_reuse` defaults to off — pin both halves.
#[test]
fn shard_reuse_is_off_by_default_and_masks_dead_shards_when_on() {
    // Default config: repeated queries never report reused shards.
    let (_shards, coordinator) = start_cluster(2);
    let coord = coordinator.local_addr();
    create_dataset(coord, "plain", &[vec![1.0, 2.0], vec![2.0, 1.0]]);
    let (_, _, reused) = query_with_reuse(coord, "plain");
    assert!(reused.is_empty());
    let (_, _, reused) = query_with_reuse(coord, "plain");
    assert!(reused.is_empty(), "reuse must be opt-in");
    drop(coordinator);

    // Opt-in config: a killed shard's cached answer keeps the query
    // whole (not partial) as long as its version has not moved.
    let mut shards: Vec<ServerHandle> = (0..2)
        .map(|_| {
            skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads: 2,
                ..Default::default()
            })
            .expect("start shard")
        })
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let coordinator = Cluster::start(ClusterConfig {
        threads: 4,
        shard_reuse: true,
        ..ClusterConfig::new(addrs)
    })
    .expect("start coordinator");
    let coord = coordinator.local_addr();
    create_dataset(
        coord,
        "masked",
        &[vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]],
    );
    let (full, partial, _) = query_with_reuse(coord, "masked");
    assert!(!partial);

    shards[0].shutdown();
    shards[1].shutdown();
    let (ids, partial, reused) = query_with_reuse(coord, "masked");
    assert!(!partial, "cached answers mask the dead shards entirely");
    assert_eq!(reused, vec![0, 1]);
    assert_eq!(ids, full);
}

/// Cluster-level request validation: k-skyband and the shard-protocol
/// flags are rejected, unknown datasets 404.
#[test]
fn coordinator_validates_requests() {
    let (_shards, coordinator) = start_cluster(2);
    let coord = coordinator.local_addr();
    create_dataset(coord, "v", &[vec![1.0, 2.0], vec![2.0, 1.0]]);

    let resp = http_client::get(coord, "/skyline?dataset=v&k=2").unwrap();
    assert_eq!(resp.status, 400);
    let resp = http_client::get(coord, "/skyline?dataset=v&include_masks=1").unwrap();
    assert_eq!(resp.status, 400);
    let resp = http_client::get(coord, "/skyline?dataset=missing").unwrap();
    assert_eq!(resp.status, 404);
    let resp = http_client::get(coord, "/skyline?dataset=v").unwrap();
    assert_eq!(resp.status, 200);
}

/// Metric counter from the coordinator's `/metrics` JSON.
fn coord_metric(coord: SocketAddr, field: &str) -> u64 {
    let resp = http_client::get(coord, "/metrics").unwrap();
    let v = Value::parse(&resp.body_str()).expect("metrics JSON");
    v.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing {field:?}: {}", resp.body_str()))
}

/// With a follower behind every shard, coordinator reads route to the
/// replicas once they catch up — and the answers are indistinguishable
/// from primary-only reads: exactly the oracle skyline.
#[test]
fn replica_reads_agree_with_the_oracle() {
    let shard_count = 2usize;
    let shards: Vec<ServerHandle> = (0..shard_count)
        .map(|_| {
            skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads: 2,
                ..Default::default()
            })
            .expect("start shard")
        })
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let followers: Vec<ServerHandle> = addrs
        .iter()
        .map(|&primary| {
            skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads: 2,
                follow: Some(primary),
                follow_wait_ms: 100,
                ..Default::default()
            })
            .expect("start follower")
        })
        .collect();
    let coordinator = Cluster::start(ClusterConfig {
        threads: 4,
        replicas: followers.iter().map(|f| vec![f.local_addr()]).collect(),
        ..ClusterConfig::new(addrs)
    })
    .expect("start coordinator");
    let coord = coordinator.local_addr();

    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: 300,
        dims: 3,
        seed: 0x5EED,
    };
    let data = spec.generate();
    let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
    create_dataset(coord, "rep", &rows);
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    let dataset = Dataset::from_flat(flat, rows[0].len()).expect("dataset");
    let expected: Vec<u64> = oracle_skyline(&dataset).iter().map(|&i| i as u64).collect();

    // Staleness bound 0: a lagging replica fails the freshness check
    // and the read falls back to the primary, so every answer — before,
    // during, and after replica catch-up — must equal the oracle.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let mut replica_served = false;
    while std::time::Instant::now() < deadline {
        let (ids, partial, missing) = query_skyline(coord, "rep");
        assert!(!partial);
        assert!(missing.is_empty());
        assert_eq!(
            ids, expected,
            "replica-routed read disagrees with the oracle"
        );
        let requests = coord_metric(coord, "replica_read_requests");
        let fallbacks = coord_metric(coord, "replica_read_fallbacks");
        assert!(requests > 0, "replicas configured but never attempted");
        if requests > fallbacks {
            replica_served = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(
        replica_served,
        "no read was ever answered by a caught-up replica"
    );
}

/// A dead replica never hurts correctness: each attempt is counted as
/// a fallback and the primary serves the read.
#[test]
fn unreachable_replica_falls_back_to_the_primary() {
    let shards: Vec<ServerHandle> = (0..2)
        .map(|_| {
            skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads: 2,
                ..Default::default()
            })
            .expect("start shard")
        })
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    // Port 1 is never listening: every replica attempt must fail over.
    let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
    let coordinator = Cluster::start(ClusterConfig {
        threads: 4,
        replicas: vec![vec![dead]; 2],
        ..ClusterConfig::new(addrs)
    })
    .expect("start coordinator");
    let coord = coordinator.local_addr();

    create_dataset(
        coord,
        "dead",
        &[vec![1.0, 5.0], vec![5.0, 1.0], vec![6.0, 6.0]],
    );
    let (ids, partial, missing) = query_skyline(coord, "dead");
    assert!(!partial);
    assert!(missing.is_empty());
    assert_eq!(ids, vec![0, 1], "fallback read must still be exact");
    assert!(
        coord_metric(coord, "replica_read_fallbacks") > 0,
        "dead replica attempts must be visible in metrics"
    );
}

/// Replica lists must match the shard map: a count mismatch is a
/// config error at startup, not a silent partial routing table.
#[test]
fn mismatched_replica_config_is_refused() {
    let shard = skyline_serve::Server::start(skyline_serve::ServerConfig {
        threads: 2,
        ..Default::default()
    })
    .expect("start shard");
    let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
    let err = match Cluster::start(ClusterConfig {
        replicas: vec![vec![dead]; 3],
        ..ClusterConfig::new(vec![shard.local_addr()])
    }) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("3 replica lists over 1 shard must be refused"),
    };
    assert!(err.contains("--replicas"), "unhelpful error: {err}");
}

//! Change-feed and replication integration tests, over real sockets:
//! dense cursors, long-poll heartbeats and wake-ups, retention (410
//! Gone + `oldest_version`), compaction racing a subscriber, and the
//! differential pin — a follower fed only by the change stream must
//! byte-match the primary at every version it acknowledges.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;
use skyline_integration_tests::{http_client as client, parse_skyline_response, rows_json};
use skyline_obs::json::Value;
use skyline_serve::replica::LAG_HEADER;
use skyline_serve::{Server, ServerConfig, ServerHandle};

fn memory_server(feed_retain: usize) -> ServerHandle {
    Server::start(ServerConfig {
        threads: 4,
        feed_retain,
        ..ServerConfig::default()
    })
    .expect("start server")
}

fn follower_of(primary: SocketAddr) -> ServerHandle {
    Server::start(ServerConfig {
        threads: 4,
        follow: Some(primary),
        follow_wait_ms: 200,
        ..ServerConfig::default()
    })
    .expect("start follower")
}

fn temp_data_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("skyline-feed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
    let resp = client::get(addr, path).expect("request");
    let v = Value::parse(&resp.body_str())
        .unwrap_or_else(|e| panic!("bad JSON from {path}: {e}: {}", resp.body_str()));
    (resp.status, v)
}

fn u64_field(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {field:?}"))
}

/// The versions carried by a `/changes` batch's records.
fn record_versions(v: &Value) -> Vec<u64> {
    v.get("records")
        .and_then(Value::as_arr)
        .expect("records")
        .iter()
        .map(|r| u64_field(r, "version"))
        .collect()
}

/// Cursors are dense and resumable: any `since` yields exactly the
/// suffix after it, `next` always re-fetches the rest, and re-reading
/// the same cursor returns byte-identical batches (duplicate-friendly).
#[test]
fn cursors_are_dense_resumable_and_rereadable() {
    let server = memory_server(4096);
    let addr = server.local_addr();
    let created = client::post(
        addr,
        "/datasets",
        "{\"name\": \"f\", \"rows\": [[1, 9], [9, 1]]}",
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());
    for i in 0..4 {
        let body = format!("{{\"rows\": [[{}, {}]]}}", 8 - i, 8 - i);
        let ok = client::post(addr, "/datasets/f/points", &body).unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
    }

    // 2 creation rows + 4 inserts = versions 1..=6, served densely.
    let (status, full) = get_json(addr, "/datasets/f/changes?since=0");
    assert_eq!(status, 200);
    assert_eq!(record_versions(&full), vec![1, 2, 3, 4, 5, 6]);
    assert_eq!(u64_field(&full, "next"), 6);
    assert_eq!(u64_field(&full, "latest"), 6);
    assert_eq!(u64_field(&full, "oldest"), 1);

    // Any mid-stream cursor serves exactly the suffix after it.
    for since in 0..=6u64 {
        let (status, batch) = get_json(addr, &format!("/datasets/f/changes?since={since}"));
        assert_eq!(status, 200);
        let expected: Vec<u64> = (since + 1..=6).collect();
        assert_eq!(record_versions(&batch), expected, "since={since}");
        assert_eq!(u64_field(&batch, "next"), 6);
    }

    // limit walks the feed in steps; following `next` loses nothing.
    let mut cursor = 0u64;
    let mut seen = Vec::new();
    loop {
        let (status, page) = get_json(addr, &format!("/datasets/f/changes?since={cursor}&limit=2"));
        assert_eq!(status, 200);
        let versions = record_versions(&page);
        if versions.is_empty() {
            break;
        }
        seen.extend(versions);
        cursor = u64_field(&page, "next");
    }
    assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);

    // Re-reading a cursor is idempotent: byte-identical bodies, so an
    // at-least-once consumer can crash and re-fetch freely.
    let a = client::get(addr, "/datasets/f/changes?since=2&ops=1").unwrap();
    let b = client::get(addr, "/datasets/f/changes?since=2&ops=1").unwrap();
    assert_eq!(a.body_str(), b.body_str());
}

/// An idle subscriber never hangs: the long poll is held for roughly
/// `wait_ms`, then answered with a heartbeat whose cursor is unchanged.
#[test]
fn idle_subscriber_gets_heartbeat_with_unchanged_cursor() {
    let server = memory_server(4096);
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        "{\"name\": \"idle\", \"rows\": [[1, 1]]}",
    )
    .unwrap();

    let start = Instant::now();
    let (status, v) = get_json(
        addr,
        "/datasets/idle/changes?since=1&subscribe=1&wait_ms=400",
    );
    let held = start.elapsed();
    assert_eq!(status, 200);
    assert!(
        held >= Duration::from_millis(300),
        "long poll returned too early: {held:?}"
    );
    assert!(
        held < Duration::from_secs(5),
        "long poll hung far past wait_ms: {held:?}"
    );
    assert_eq!(v.get("heartbeat"), Some(&Value::Bool(true)));
    assert_eq!(
        u64_field(&v, "next"),
        1,
        "heartbeat must not move the cursor"
    );
    assert!(record_versions(&v).is_empty());
}

/// A parked subscriber wakes as soon as a write lands — well before
/// its `wait_ms` budget — and receives the new record.
#[test]
fn subscriber_wakes_on_mutation_before_timeout() {
    let server = memory_server(4096);
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        "{\"name\": \"wake\", \"rows\": [[5, 5]]}",
    )
    .unwrap();

    let sub = std::thread::spawn(move || {
        let start = Instant::now();
        let resp = client::get(
            addr,
            "/datasets/wake/changes?since=1&subscribe=1&wait_ms=10000&ops=1",
        )
        .unwrap();
        (resp.status, resp.body_str(), start.elapsed())
    });
    std::thread::sleep(Duration::from_millis(150));
    let ok = client::post(addr, "/datasets/wake/points", "{\"rows\": [[1, 1]]}").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body_str());

    let (status, body, held) = sub.join().expect("subscriber thread");
    assert_eq!(status, 200, "{body}");
    let v = Value::parse(&body).unwrap();
    assert_eq!(record_versions(&v), vec![2], "{body}");
    assert_eq!(v.get("heartbeat"), Some(&Value::Bool(false)));
    assert!(
        held < Duration::from_secs(8),
        "woke by timeout, not by the write: {held:?}"
    );
}

/// Once retention drops a cursor's suffix, the feed refuses it loudly:
/// 410 Gone plus the `oldest_version` the client must restart from.
#[test]
fn stale_cursor_gets_410_gone_with_oldest_version() {
    let server = memory_server(4);
    let addr = server.local_addr();
    client::post(addr, "/datasets", "{\"name\": \"ret\", \"rows\": [[9, 9]]}").unwrap();
    for i in 0..11 {
        let body = format!("{{\"rows\": [[{}, {}]]}}", 20 - i, 20 - i);
        let ok = client::post(addr, "/datasets/ret/points", &body).unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
    }

    // 12 versions with 4 retained: versions 1..=8 are gone.
    let (status, gone) = get_json(addr, "/datasets/ret/changes?since=0");
    assert_eq!(status, 410, "{gone:?}");
    let oldest = u64_field(&gone, "oldest_version");
    assert_eq!(oldest, 9);
    assert!(gone.get("error").and_then(Value::as_str).is_some());

    // Restarting from the advertised horizon works and is dense.
    let (status, batch) = get_json(addr, &format!("/datasets/ret/changes?since={}", oldest - 1));
    assert_eq!(status, 200);
    assert_eq!(record_versions(&batch), vec![9, 10, 11, 12]);

    // A caught-up cursor past the horizon is fine even after trimming.
    let (status, tip) = get_json(addr, "/datasets/ret/changes?since=12");
    assert_eq!(status, 200);
    assert!(record_versions(&tip).is_empty());
    assert_eq!(u64_field(&tip, "next"), 12);
}

/// Satellite pin: WAL compaction racing a live subscriber. A slow
/// consumer whose cursor falls behind the retention window gets an
/// explicit 410 + `oldest_version` — never silently wrong data — and
/// the horizon survives a restart from the compacted WAL.
#[test]
fn compaction_races_subscriber_and_survives_restart() {
    let dir = temp_data_dir("compact-race");
    let addr;
    {
        let server = Server::start(ServerConfig {
            threads: 4,
            data_dir: Some(dir.clone()),
            compact_bytes: 256,
            feed_retain: 4,
            ..ServerConfig::default()
        })
        .unwrap();
        addr = server.local_addr();
        client::post(addr, "/datasets", "{\"name\": \"c\", \"rows\": [[50, 50]]}").unwrap();

        // Slow subscriber: one record per fetch, from the beginning.
        let sub = std::thread::spawn(move || {
            let mut cursor = 0u64;
            let mut saw_gone = false;
            let mut served = Vec::new();
            for _ in 0..200 {
                let resp =
                    client::get(addr, &format!("/datasets/c/changes?since={cursor}&limit=1"))
                        .unwrap();
                let v = Value::parse(&resp.body_str()).unwrap();
                match resp.status {
                    200 => {
                        let versions = record_versions(&v);
                        // Whatever is served must continue the cursor
                        // densely — a gap would be silent data loss.
                        for (i, &ver) in versions.iter().enumerate() {
                            assert_eq!(ver, cursor + 1 + i as u64);
                        }
                        served.extend(versions);
                        cursor = u64_field(&v, "next");
                    }
                    410 => {
                        saw_gone = true;
                        // Resume exactly at the advertised horizon.
                        cursor = u64_field(&v, "oldest_version") - 1;
                    }
                    other => panic!("unexpected status {other}: {}", resp.body_str()),
                }
                if cursor >= 40 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            (saw_gone, served, cursor)
        });

        // Meanwhile the primary mutates fast, far past `feed_retain`,
        // with `compact_bytes` small enough to compact repeatedly.
        for i in 0..39 {
            let body = format!("{{\"rows\": [[{}, {}]]}}", 100 - i, 100 - i);
            let ok = client::post(addr, "/datasets/c/points", &body).unwrap();
            assert_eq!(ok.status, 200, "{}", ok.body_str());
        }

        let (saw_gone, served, cursor) = sub.join().expect("subscriber");
        assert!(
            saw_gone,
            "retention 4 vs 40 versions: the slow subscriber must hit 410"
        );
        assert!(!served.is_empty());
        assert_eq!(cursor, 40, "subscriber caught up to the tip");
    }

    // Restart from the compacted WAL: the horizon is still honest. The
    // snapshot swallowed the early records, so `since=0` is stale.
    let server = Server::start(ServerConfig {
        threads: 4,
        data_dir: Some(dir.clone()),
        compact_bytes: 256,
        feed_retain: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let (status, gone) = get_json(addr, "/datasets/c/changes?since=0");
    assert_eq!(
        status, 410,
        "compacted history must refuse since=0: {gone:?}"
    );
    let oldest = u64_field(&gone, "oldest_version");
    assert!(oldest > 1, "compaction moved the horizon: oldest={oldest}");
    let (status, batch) = get_json(addr, &format!("/datasets/c/changes?since={}", oldest - 1));
    assert_eq!(status, 200);
    let versions = record_versions(&batch);
    assert_eq!(versions.first(), Some(&oldest));
    assert_eq!(versions.last(), Some(&40));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The differential acceptance pin: a follower consuming only the
/// change feed must byte-match the primary at EVERY version it
/// acknowledges — with retention small enough that it is also forced
/// through the 410 → snapshot-resync path, and a removal in the mix.
#[test]
fn follower_byte_matches_primary_at_every_acknowledged_version() {
    let primary = memory_server(8);
    let paddr = primary.local_addr();
    let follower = follower_of(paddr);
    let faddr = follower.local_addr();

    // Mirror the primary locally: same rows in the same order produce
    // the same ids, so `expected[version]` is the ground truth.
    let mut mirror = StreamingSkyline::new(2).expect("mirror");
    let mut metrics = Metrics::default();
    let mut expected: std::collections::HashMap<u64, Vec<PointId>> =
        std::collections::HashMap::new();

    let rows: Vec<Vec<f64>> = (0..30)
        .map(|i| {
            let x = f64::from((i * 37) % 50) + 1.0;
            vec![x, 60.0 - x]
        })
        .collect();
    client::post(
        paddr,
        "/datasets",
        &format!("{{\"name\":\"diff\",\"rows\":{}}}", rows_json(&rows[..2])),
    )
    .unwrap();
    for row in &rows[..2] {
        mirror.insert_delta(row, &mut metrics).unwrap();
        expected.insert(mirror.version(), mirror.skyline());
    }
    for row in &rows[2..] {
        let ok = client::post(
            paddr,
            "/datasets/diff/points",
            &format!("{{\"rows\": {}}}", rows_json(std::slice::from_ref(row))),
        )
        .unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
        mirror.insert_delta(row, &mut metrics).unwrap();
        expected.insert(mirror.version(), mirror.skyline());
    }
    // One removal, so `left` events replicate too.
    let victim = mirror.skyline()[0];
    let del = client::request(
        paddr,
        "DELETE",
        "/datasets/diff/points",
        format!("{{\"ids\": [{victim}]}}").as_bytes(),
    )
    .unwrap();
    assert_eq!(del.status, 200, "{}", del.body_str());
    mirror.remove_delta(victim, &mut metrics).unwrap();
    expected.insert(mirror.version(), mirror.skyline());
    let tip = mirror.version();

    // Every answer the follower ever serves must match the mirror at
    // that exact version — not just the final state.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut converged = false;
    while Instant::now() < deadline {
        if let Ok(resp) = client::get(faddr, "/skyline?dataset=diff") {
            if resp.status == 200 {
                let (version, _, ids) = parse_skyline_response(&resp.body_str());
                let want = expected
                    .get(&version)
                    .unwrap_or_else(|| panic!("follower served unacknowledged version {version}"));
                assert_eq!(
                    &ids, want,
                    "follower diverged from the primary at version {version}"
                );
                assert!(
                    resp.header(LAG_HEADER).is_some(),
                    "follower reads must carry {LAG_HEADER}"
                );
                if version == tip {
                    converged = true;
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(converged, "follower never reached the primary tip {tip}");

    // Writes against the follower are refused with a redirect home.
    let refused = client::post(faddr, "/datasets/diff/points", "{\"rows\": [[1, 1]]}").unwrap();
    assert_eq!(refused.status, 307, "{}", refused.body_str());
    let location = refused.header("location").expect("Location header");
    assert_eq!(location, format!("http://{paddr}/datasets/diff/points"));
}

//! The subset index must return *exactly* the stored points whose maximum
//! dominating subspace is a superset of the query subspace (Problem 1 /
//! Lemma 5.1) — checked against a brute-force oracle on randomised
//! workloads and on subspaces produced by a real Merge run.

use skyline_core::merge::{merge, MergeConfig};
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::subset_index::{SortedSubsetIndex, SubsetIndex};
use skyline_core::subspace::Subspace;
use skyline_data::rng::Rng64;
use skyline_integration_tests::workload_grid;

fn oracle(entries: &[(PointId, Subspace)], query: Subspace) -> Vec<PointId> {
    let mut v: Vec<PointId> = entries
        .iter()
        .filter(|(_, s)| s.is_superset_of(query))
        .map(|(p, _)| *p)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn randomised_queries_match_the_oracle() {
    let mut rng = Rng64::seed_from_u64(2023);
    for dims in [3usize, 5, 8, 12, 16, 24] {
        let mask = if dims == 64 {
            u64::MAX
        } else {
            (1u64 << dims) - 1
        };
        let mut hash_index = SubsetIndex::new(dims);
        let mut sorted_index = SortedSubsetIndex::new(dims);
        let mut entries = Vec::new();
        for id in 0..300u32 {
            let s = Subspace::from_bits(rng.next_u64() & mask);
            hash_index.put(id, s);
            sorted_index.put(id, s);
            entries.push((id, s));
        }
        for _ in 0..200 {
            let q = Subspace::from_bits(rng.next_u64() & mask);
            let expected = oracle(&entries, q);
            let mut m = Metrics::new();
            let mut got_hash = hash_index.query(q, &mut m);
            got_hash.sort_unstable();
            assert_eq!(got_hash, expected, "hash, dims={dims}, q={q:?}");
            let mut got_sorted = sorted_index.query(q, &mut m);
            got_sorted.sort_unstable();
            assert_eq!(got_sorted, expected, "sorted, dims={dims}, q={q:?}");
        }
    }
}

#[test]
fn merge_produced_subspaces_roundtrip_through_the_index() {
    for (data, label) in workload_grid() {
        let mut m = Metrics::new();
        let out = merge(&data, &MergeConfig::recommended(data.dims()), &mut m);
        let mut index = SubsetIndex::new(data.dims());
        let entries: Vec<(PointId, Subspace)> = out
            .survivors
            .iter()
            .zip(&out.subspaces)
            .map(|(&q, &s)| (q, s))
            .collect();
        for &(q, s) in &entries {
            index.put(q, s);
        }
        assert_eq!(index.len(), entries.len(), "{label}");
        // Query with every stored subspace: the point itself must always
        // be among the results (reflexivity of ⊇).
        for &(q, s) in &entries {
            let mut got = index.query(s, &mut m);
            got.sort_unstable();
            assert_eq!(got, oracle(&entries, s), "{label}: query {s:?}");
            assert!(got.contains(&q), "{label}: {q} missing from its own query");
        }
    }
}

/// Regression: removing from an empty (or fully drained) index is a
/// no-op fast path — it must not materialise the reversed path, must
/// not touch metrics-visible state, and must keep answering queries
/// correctly afterwards. Mutation-heavy streaming workloads hit the
/// empty-remove case constantly.
#[test]
fn remove_on_empty_index_is_a_noop_fast_path() {
    let dims = 6;
    let mut index = SubsetIndex::new(dims);
    let mut m = Metrics::new();

    // Fresh-empty: every remove misses, nothing panics, nothing counts.
    for id in 0..8u32 {
        assert!(!index.remove(id, Subspace::from_bits(id as u64 & 0x3F)));
        assert!(!index.remove(id, Subspace::full(dims)));
        assert!(!index.remove(id, Subspace::from_bits(0)));
    }
    assert!(index.is_empty());
    assert_eq!(index.len(), 0);
    assert_eq!(index.node_count(), 1, "no trie nodes may be materialised");

    // Drained-empty: fill, empty out, then remove again — the fast path
    // must also cover an index that *became* empty.
    for id in 0..16u32 {
        index.put(id, Subspace::from_bits(id as u64 % 5));
    }
    for id in 0..16u32 {
        assert!(index.remove(id, Subspace::from_bits(id as u64 % 5)));
    }
    assert!(index.is_empty());
    for id in 0..16u32 {
        assert!(!index.remove(id, Subspace::from_bits(id as u64 % 5)));
    }

    // The structure stays fully usable after the no-op removes.
    index.put(42, Subspace::from_bits(0b11));
    let got = index.query(Subspace::from_bits(0b01), &mut m);
    assert_eq!(got, vec![42]);
    assert!(index.remove(42, Subspace::from_bits(0b11)));
    assert!(index.is_empty());
}

#[test]
fn node_count_is_bounded_by_total_path_length() {
    let mut rng = Rng64::seed_from_u64(7);
    let dims = 10;
    let mut index = SubsetIndex::new(dims);
    let mut total_path = 0usize;
    for id in 0..500u32 {
        let s = Subspace::from_bits(rng.next_u64() & 0x3FF);
        total_path += s.complement(dims).size();
        index.put(id, s);
    }
    // Root + at most one node per path element.
    assert!(index.node_count() <= 1 + total_path);
    assert_eq!(index.len(), 500);
}

#[test]
fn query_visits_no_more_nodes_than_exist() {
    let mut rng = Rng64::seed_from_u64(11);
    let dims = 8;
    let mut index = SubsetIndex::new(dims);
    for id in 0..200u32 {
        index.put(id, Subspace::from_bits(rng.next_u64() & 0xFF));
    }
    let nodes = index.node_count() as u64;
    for _ in 0..50 {
        let q = Subspace::from_bits(rng.next_u64() & 0xFF);
        let mut m = Metrics::new();
        let _ = index.query(q, &mut m);
        assert!(m.index_nodes_visited <= nodes);
        assert!(m.index_nodes_visited >= 1, "the root is always visited");
    }
}

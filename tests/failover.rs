//! Failover differential tests, over real sockets: the full promote →
//! fence → demote → re-follow cycle must leave every node byte-identical
//! to a never-crashed single-node oracle fed the same rows, the deposed
//! primary must refuse fenced writes with 409 and demote itself toward
//! the successor, and read-your-writes session tokens must hold across
//! the promotion.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use skyline_integration_tests::{http_client as client, rows_json};
use skyline_obs::json::Value;
use skyline_serve::{
    Server, ServerConfig, ServerHandle, EPOCH_HEADER, MIN_VERSION_HEADER, PRIMARY_HEADER,
};

fn memory_server() -> ServerHandle {
    Server::start(ServerConfig {
        threads: 4,
        feed_retain: 4096,
        ..ServerConfig::default()
    })
    .expect("start server")
}

fn follower_of(primary: SocketAddr) -> ServerHandle {
    Server::start(ServerConfig {
        threads: 4,
        follow: Some(primary),
        follow_wait_ms: 200,
        ..ServerConfig::default()
    })
    .expect("start follower")
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
    let resp = client::get(addr, path).expect("request");
    let v = Value::parse(&resp.body_str())
        .unwrap_or_else(|e| panic!("bad JSON from {path}: {e}: {}", resp.body_str()));
    (resp.status, v)
}

fn u64_field(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {field:?} in {v:?}"))
}

fn str_field<'a>(v: &'a Value, field: &str) -> &'a str {
    v.get(field)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field {field:?} in {v:?}"))
}

/// Block until `addr`'s `/healthz` reports `applied_version >= version`.
fn wait_for_applied(addr: SocketAddr, version: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (status, v) = get_json(addr, "/healthz");
        if status == 200 && u64_field(&v, "applied_version") >= version {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "node {addr} never applied version {version}: {v:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn snapshot_body(addr: SocketAddr, name: &str) -> String {
    let resp = client::get(addr, &format!("/datasets/{name}/snapshot")).expect("snapshot");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    resp.body_str()
}

fn promote(addr: SocketAddr, epoch: u64) -> (u16, Value) {
    let resp = client::post(addr, "/promote", &format!("{{\"epoch\":{epoch}}}")).unwrap();
    let v = Value::parse(&resp.body_str()).expect("promote body");
    (resp.status, v)
}

fn demote(addr: SocketAddr, epoch: u64, primary: SocketAddr) -> (u16, Value) {
    let resp = client::post(
        addr,
        "/demote",
        &format!("{{\"epoch\":{epoch},\"primary\":\"{primary}\"}}"),
    )
    .unwrap();
    let v = Value::parse(&resp.body_str()).expect("demote body");
    (resp.status, v)
}

/// The differential pin: promote B, re-point C, fence A into following
/// B, write a second batch through B — afterwards A, B, C, and a
/// never-crashed oracle O fed the identical row sequence must agree
/// byte-for-byte on the dataset snapshot.
#[test]
fn promotion_cycle_matches_single_node_oracle_byte_for_byte() {
    let a = memory_server();
    let a_addr = a.local_addr();
    let b = follower_of(a_addr);
    let b_addr = b.local_addr();
    let c = follower_of(a_addr);
    let c_addr = c.local_addr();

    let batch1: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            let x = f64::from((i * 29) % 40) + 1.0;
            vec![x, 50.0 - x]
        })
        .collect();
    let batch2: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            let x = f64::from((i * 13) % 40) + 0.5;
            vec![x, 49.0 - x]
        })
        .collect();

    let created = client::post(
        a_addr,
        "/datasets",
        &format!("{{\"name\":\"fo\",\"rows\":{}}}", rows_json(&batch1[..2])),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());
    for row in &batch1[2..] {
        let ok = client::post(
            a_addr,
            "/datasets/fo/points",
            &format!("{{\"rows\":{}}}", rows_json(std::slice::from_ref(row))),
        )
        .unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
        // Session token: every mutation response carries (epoch, version).
        let v = Value::parse(&ok.body_str()).unwrap();
        assert_eq!(u64_field(&v, "epoch"), 0, "pre-failover epoch is 0");
    }
    let tip1 = batch1.len() as u64;
    wait_for_applied(b_addr, tip1);
    wait_for_applied(c_addr, tip1);

    // The unified health shape, both roles (satellite: one JSON shape).
    let (_, ha) = get_json(a_addr, "/healthz");
    assert_eq!(str_field(&ha, "role"), "primary");
    assert_eq!(u64_field(&ha, "epoch"), 0);
    let (_, hb) = get_json(b_addr, "/healthz");
    assert_eq!(str_field(&hb, "role"), "replica");
    assert_eq!(str_field(&hb, "primary"), a_addr.to_string());
    assert_eq!(u64_field(&hb, "applied_version"), tip1);

    // Promote B under epoch 1; an equal-epoch retry must be idempotent,
    // a replayed lower epoch refused.
    let (status, pv) = promote(b_addr, 1);
    assert_eq!(status, 200, "{pv:?}");
    assert_eq!(str_field(&pv, "role"), "primary");
    assert_eq!(u64_field(&pv, "epoch"), 1);
    let (status, _) = promote(b_addr, 1);
    assert_eq!(status, 200, "equal-epoch promote retry must be idempotent");
    let (status, _) = promote(b_addr, 0);
    assert_eq!(status, 409, "stale promote epoch must be fenced");

    // Re-point C at the new primary.
    let (status, dv) = demote(c_addr, 1, b_addr);
    assert_eq!(status, 200, "{dv:?}");
    assert_eq!(str_field(&dv, "role"), "replica");

    // A fenced write against the deposed primary: refused with 409 AND
    // A demotes itself toward the successor named in the header.
    let fenced = client::request_timed(
        a_addr,
        "POST",
        "/datasets/fo/points",
        format!("{{\"rows\":{}}}", rows_json(&batch2[..1])).as_bytes(),
        &[
            (EPOCH_HEADER.to_string(), "1".to_string()),
            (PRIMARY_HEADER.to_string(), b_addr.to_string()),
        ],
    )
    .unwrap()
    .0;
    assert_eq!(fenced.status, 409, "{}", fenced.body_str());
    let fv = Value::parse(&fenced.body_str()).unwrap();
    assert_eq!(str_field(&fv, "primary"), b_addr.to_string());
    let (_, ha) = get_json(a_addr, "/healthz");
    assert_eq!(
        str_field(&ha, "role"),
        "replica",
        "the fenced primary must demote itself: {ha:?}"
    );
    assert_eq!(str_field(&ha, "primary"), b_addr.to_string());
    assert_eq!(u64_field(&ha, "epoch"), 1);

    // Writes land on the promoted node and carry the new epoch in the
    // session token.
    let mut last_version = tip1;
    for row in &batch2 {
        let ok = client::post(
            b_addr,
            "/datasets/fo/points",
            &format!("{{\"rows\":{}}}", rows_json(std::slice::from_ref(row))),
        )
        .unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
        let v = Value::parse(&ok.body_str()).unwrap();
        assert_eq!(u64_field(&v, "epoch"), 1, "post-failover session epoch");
        last_version = u64_field(&v, "version");
    }
    let tip2 = tip1 + batch2.len() as u64;
    assert_eq!(last_version, tip2);

    // Both the re-pointed follower and the demoted ex-primary converge
    // on the new primary's history.
    wait_for_applied(c_addr, tip2);
    wait_for_applied(a_addr, tip2);

    // Read-your-writes: a min-version read against a converged replica
    // answers at or past the session token's version, never older.
    let (resp, _) = client::request_timed(
        c_addr,
        "GET",
        "/skyline?dataset=fo",
        b"",
        &[(MIN_VERSION_HEADER.to_string(), tip2.to_string())],
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let v = Value::parse(&resp.body_str()).unwrap();
    assert!(
        u64_field(&v, "version") >= tip2,
        "min-version read served stale state: {}",
        resp.body_str()
    );

    // The oracle: one never-crashed node fed the identical sequence.
    let oracle = memory_server();
    let o_addr = oracle.local_addr();
    let created = client::post(
        o_addr,
        "/datasets",
        &format!("{{\"name\":\"fo\",\"rows\":{}}}", rows_json(&batch1[..2])),
    )
    .unwrap();
    assert_eq!(created.status, 201);
    for row in batch1[2..].iter().chain(&batch2) {
        let ok = client::post(
            o_addr,
            "/datasets/fo/points",
            &format!("{{\"rows\":{}}}", rows_json(std::slice::from_ref(row))),
        )
        .unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body_str());
    }

    let want = snapshot_body(o_addr, "fo");
    for (label, addr) in [
        ("old primary", a_addr),
        ("new primary", b_addr),
        ("replica", c_addr),
    ] {
        assert_eq!(
            snapshot_body(addr, "fo"),
            want,
            "{label} diverged from the single-node oracle"
        );
    }
}

/// Fencing is directional: a request stamped with an epoch *below* the
/// node's own is refused outright and must NOT demote the node, and a
/// demotion into following oneself is refused.
#[test]
fn stale_epochs_are_refused_without_side_effects() {
    let server = memory_server();
    let addr = server.local_addr();
    client::post(
        addr,
        "/datasets",
        "{\"name\":\"st\",\"rows\":[[1,2],[2,1]]}",
    )
    .unwrap();
    let (status, _) = promote(addr, 3);
    assert_eq!(status, 200);

    // Epoch 1 < 3: plain 409, still primary, write not applied.
    let stale = client::request_timed(
        addr,
        "POST",
        "/datasets/st/points",
        b"{\"rows\":[[9,9]]}",
        &[
            (EPOCH_HEADER.to_string(), "1".to_string()),
            (PRIMARY_HEADER.to_string(), "127.0.0.1:1".to_string()),
        ],
    )
    .unwrap()
    .0;
    assert_eq!(stale.status, 409, "{}", stale.body_str());
    let (_, h) = get_json(addr, "/healthz");
    assert_eq!(str_field(&h, "role"), "primary");
    assert_eq!(u64_field(&h, "applied_version"), 2, "fenced write applied!");

    // Current-epoch writes pass the fence.
    let ok = client::request_timed(
        addr,
        "POST",
        "/datasets/st/points",
        b"{\"rows\":[[0.5,9]]}",
        &[(EPOCH_HEADER.to_string(), "3".to_string())],
    )
    .unwrap()
    .0;
    assert_eq!(ok.status, 200, "{}", ok.body_str());

    // Garbage epoch header is a client error, not a fence event.
    let bad = client::request_timed(
        addr,
        "POST",
        "/datasets/st/points",
        b"{\"rows\":[[1,1]]}",
        &[(EPOCH_HEADER.to_string(), "not-a-number".to_string())],
    )
    .unwrap()
    .0;
    assert_eq!(bad.status, 400, "{}", bad.body_str());

    // A node never follows itself.
    let (status, v) = demote(addr, 4, addr);
    assert_eq!(status, 400, "{v:?}");
}

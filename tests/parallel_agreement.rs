//! Differential tests for the parallel engines: across every
//! distribution, dimensionality 2–8 and a spread of worker counts, each
//! `P-*` engine must return *exactly* the skyline of its sequential
//! counterpart (same sorted `PointId`s, duplicates included), and the
//! per-shard breakdown must be internally consistent.

use skyline_algos::boosted::{SalsaSubset, SdiSubset, SfsSubset};
use skyline_algos::parallel::{ParallelBoosted, ParallelSfs};
use skyline_algos::{parallel_suite, SkylineAlgorithm};
use skyline_core::dataset::Dataset;
use skyline_core::metrics::Metrics;
use skyline_data::{Distribution, SyntheticSpec};
use skyline_integration_tests::oracle_skyline;
use skyline_obs::NoopRecorder;

/// Worker counts every engine is exercised at: degenerate single-worker,
/// even and odd shardings, more shards than CPUs, and whatever the host
/// actually has.
fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 3, 7, hw];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn grid() -> Vec<(Dataset, String)> {
    let mut out = Vec::new();
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
    ] {
        for dims in 2..=8 {
            let spec = SyntheticSpec {
                distribution: dist,
                cardinality: 350,
                dims,
                seed: 0xD1FF + dims as u64,
            };
            out.push((spec.generate(), format!("{} d={dims}", dist.tag())));
        }
    }
    out
}

#[test]
fn parallel_engines_match_their_sequential_counterparts() {
    for (data, label) in grid() {
        // One sequential reference per dataset; the counterparts all
        // agree with each other (and the oracle) by the agreement suite.
        let expected = oracle_skyline(&data);
        for threads in thread_counts() {
            let engines: Vec<(Box<dyn SkylineAlgorithm>, Box<dyn SkylineAlgorithm>)> = vec![
                (
                    Box::new(skyline_algos::sfs::Sfs),
                    Box::new(ParallelSfs { threads }),
                ),
                (
                    Box::new(SfsSubset::default()),
                    Box::new(ParallelBoosted::new(SfsSubset::default(), threads)),
                ),
                (
                    Box::new(SalsaSubset::default()),
                    Box::new(ParallelBoosted::new(SalsaSubset::default(), threads)),
                ),
                (
                    Box::new(SdiSubset::default()),
                    Box::new(ParallelBoosted::new(SdiSubset::default(), threads)),
                ),
            ];
            for (seq, par) in &engines {
                let sequential = seq.compute(&data);
                assert_eq!(sequential, expected, "{} on {label}", seq.name());
                let parallel = par.compute(&data);
                assert_eq!(
                    parallel,
                    sequential,
                    "{} (threads={threads}) diverges from {} on {label}",
                    par.name(),
                    seq.name()
                );
            }
        }
    }
}

#[test]
fn parallel_suite_matches_on_real_dataset_stand_ins() {
    let datasets = [
        ("HOUSE'", skyline_data::real::house_scaled(600)),
        ("NBA'", skyline_data::real::nba_scaled(600)),
    ];
    for (label, data) in datasets {
        let expected = oracle_skyline(&data);
        for threads in thread_counts() {
            for algo in parallel_suite(None, threads) {
                assert_eq!(
                    algo.compute(&data),
                    expected,
                    "{} (threads={threads}) on {label}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn shard_breakdown_is_internally_consistent() {
    let spec = SyntheticSpec {
        distribution: Distribution::AntiCorrelated,
        cardinality: 700,
        dims: 5,
        seed: 99,
    };
    let data = spec.generate();
    for threads in thread_counts() {
        let engine = ParallelBoosted::new(SalsaSubset::default(), threads);
        let outcome = engine.compute_detailed(&data, &mut NoopRecorder);

        // Shards tile [0, n) contiguously, and every shard's local
        // skyline stays inside its own id range.
        assert_eq!(outcome.workers, outcome.shards.len());
        let mut next = 0usize;
        for s in &outcome.shards {
            assert_eq!(s.lo, next, "threads={threads}: shard gap");
            assert!(s.lo < s.hi);
            assert!(s.skyline.windows(2).all(|w| w[0] < w[1]));
            assert!(s
                .skyline
                .iter()
                .all(|&id| (s.lo..s.hi).contains(&(id as usize))));
            next = s.hi;
        }
        assert_eq!(next, data.len(), "threads={threads}: shards do not tile");

        // The global skyline is a subset of the union of local skylines,
        // and the summed worker metrics equal what the plain entry point
        // reports for the same run.
        for &id in &outcome.skyline {
            let shard = outcome
                .shards
                .iter()
                .find(|s| (s.lo..s.hi).contains(&(id as usize)))
                .expect("skyline id inside some shard");
            assert!(
                shard.skyline.contains(&id),
                "threads={threads}: {id} skipped its shard"
            );
        }
        let mut via_plain = Metrics::new();
        let plain = engine.compute_with_metrics(&data, &mut via_plain);
        assert_eq!(plain, outcome.skyline);
        let total = outcome.total_metrics();
        assert_eq!(via_plain.dominance_tests, total.dominance_tests);
        assert_eq!(via_plain.container_puts, total.container_puts);
        assert_eq!(via_plain.container_gets, total.container_gets);
    }
}

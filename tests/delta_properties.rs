//! Property tests for the delta algebra ([`SkylineDelta`]) and the
//! deltas the streaming engine actually produces: normalisation
//! (`entered ∩ left = ∅`, both sides sorted and duplicate-free), dense
//! monotone versioning, sequence-equals-coalesced-sum composition, and
//! the empty delta for removing a point that was never in the skyline.
//!
//! Runs in tier-1 (no feature gate): the delta engine is load-bearing
//! for the server's cache-patch path, so its algebra is pinned on every
//! `cargo test`.

use proptest::collection::vec;
use proptest::prelude::*;
use skyline_core::delta::SkylineDelta;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;

/// One scripted op: `(kind, row, selector)`. Kind 0 inserts `row`,
/// kind 1 re-inserts a previously inserted row (duplicate), kind 2
/// removes a selector-chosen live point, kind 3 removes a missing id.
type ScriptOp = (u8, Vec<i8>, u16);

/// Execute a script on a fresh structure; returns the deltas of every
/// *effective* mutation plus the structure's starting version. Small
/// quantised coordinates force plenty of ties, duplicates, and skyline
/// churn.
fn run(ops: &[ScriptOp], dims: usize) -> (Vec<SkylineDelta>, u64) {
    let mut sky = StreamingSkyline::new(dims).unwrap();
    let base = sky.version();
    let mut metrics = Metrics::new();
    let mut live: Vec<PointId> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut issued: u64 = 0;
    let mut deltas = Vec::new();
    for (kind, row, sel) in ops {
        let row: Vec<f64> = row.iter().map(|&v| v as f64).collect();
        match kind % 4 {
            0 | 1 => {
                let row = match (kind % 4 == 1, rows.is_empty()) {
                    (true, false) => rows[*sel as usize % rows.len()].clone(),
                    _ => row,
                };
                let (id, d) = sky.insert_delta(&row, &mut metrics).unwrap();
                issued += 1;
                live.push(id);
                rows.push(row);
                deltas.push(d);
            }
            2 => {
                if !live.is_empty() {
                    let id = live.remove(*sel as usize % live.len());
                    deltas.push(sky.remove_delta(id, &mut metrics).unwrap());
                }
            }
            _ => {
                // Handles are dense, so this id cannot exist; the
                // structure must refuse without minting a delta.
                assert!(sky
                    .remove_delta((issued + 3) as PointId, &mut metrics)
                    .is_none());
            }
        }
    }
    (deltas, base)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every delta a real mutation run produces is normalised: both
    /// sides strictly ascending (sorted, duplicate-free) and disjoint.
    #[test]
    fn produced_deltas_are_normalised(
        ops in vec((0..4u8, vec(0..5i8, 3), 0..64u16), 0..40),
    ) {
        let (deltas, _) = run(&ops, 3);
        for d in &deltas {
            prop_assert!(d.entered.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(d.left.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(
                d.entered.iter().all(|id| d.left.binary_search(id).is_err()),
                "entered ∩ left must be empty: {:?}", d
            );
        }
    }

    /// Versions are dense and monotone: the i-th effective mutation
    /// carries exactly `base + i + 1` — no gaps, no reuse, no reorder.
    #[test]
    fn versions_are_dense_and_monotone(
        ops in vec((0..4u8, vec(0..5i8, 2), 0..64u16), 0..40),
    ) {
        let (deltas, base) = run(&ops, 2);
        for (i, d) in deltas.iter().enumerate() {
            prop_assert_eq!(d.version, base + 1 + i as u64);
        }
    }

    /// Applying a run of deltas one by one lands on the same skyline as
    /// applying their coalesced sum once — and the sum carries the last
    /// version.
    #[test]
    fn sequence_equals_coalesced_sum(
        ops in vec((0..4u8, vec(0..5i8, 4), 0..64u16), 0..40),
    ) {
        let (deltas, _) = run(&ops, 4);
        let mut stepped: Vec<PointId> = Vec::new();
        for d in &deltas {
            prop_assert!(d.apply(&mut stepped), "chain must apply: {:?}", d);
        }
        match SkylineDelta::coalesce(&deltas) {
            None => prop_assert!(stepped.is_empty()),
            Some(sum) => {
                let mut summed: Vec<PointId> = Vec::new();
                prop_assert!(sum.apply(&mut summed));
                prop_assert_eq!(&stepped, &summed);
                prop_assert_eq!(sum.version, deltas.last().unwrap().version);
            }
        }
    }

    /// Removing a point that was never in the skyline (strictly
    /// dominated from birth) is membership-invisible: the delta is
    /// empty, yet the version still moves — consumers must be able to
    /// stay in lockstep on no-op mutations.
    #[test]
    fn removing_a_shadowed_point_yields_an_empty_delta(
        a in vec(0..5i8, 4),
        off in vec(1..4i8, 4),
    ) {
        let mut sky = StreamingSkyline::new(4).unwrap();
        let mut m = Metrics::new();
        let a_row: Vec<f64> = a.iter().map(|&v| v as f64).collect();
        let b_row: Vec<f64> = a.iter().zip(&off).map(|(&v, &o)| (v + o) as f64).collect();
        sky.insert(&a_row, &mut m).unwrap();
        let (b, _) = sky.insert_delta(&b_row, &mut m).unwrap();
        prop_assert!(!sky.skyline().contains(&b), "b must be shadowed");
        let skyline_before = sky.skyline();
        let version_before = sky.version();
        let d = sky.remove_delta(b, &mut m).unwrap();
        prop_assert!(d.is_empty(), "shadowed remove must be membership-invisible");
        prop_assert_eq!(d.version, version_before + 1);
        prop_assert_eq!(sky.skyline(), skyline_before);
    }

    /// `from_events` on arbitrary raw event streams: the result is the
    /// symmetric difference semantics — an id survives on the side it
    /// appears on iff it does not also appear on the other.
    #[test]
    fn from_events_normalises_arbitrary_streams(
        entered in vec(0..32u32, 0..20),
        left in vec(0..32u32, 0..20),
    ) {
        let d = SkylineDelta::from_events(entered.clone(), left.clone(), 9);
        prop_assert_eq!(d.version, 9);
        prop_assert!(d.entered.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(d.left.windows(2).all(|w| w[0] < w[1]));
        for id in 0..32u32 {
            let e = entered.contains(&id);
            let l = left.contains(&id);
            prop_assert_eq!(d.entered.contains(&id), e && !l);
            prop_assert_eq!(d.left.contains(&id), l && !e);
        }
    }
}

//! Differential oracle for the incremental delta engine: random
//! mutation scripts over [`StreamingSkyline`] where the skyline is
//! maintained **only** by applying each mutation's [`SkylineDelta`] to
//! a materialised id list — never read back from the structure — and
//! after every step that patched list must byte-match a naive
//! from-scratch recompute over the live rows (and the structure's own
//! view, and its invariants).
//!
//! Scripts mix four operations — fresh insert, duplicate-row insert,
//! live remove, and remove of a missing id — across three data
//! distributions and d = 2..8. Every operation is defined so that *any
//! subsequence* of a script is executable (selectors resolve against
//! whatever is live at execution time), which is what makes the
//! shrink-on-failure loop sound: on divergence the harness greedily
//! deletes ops while the failure reproduces and panics with the minimal
//! failing script, ready to paste into a regression test.

use skyline_core::dataset::Dataset;
use skyline_core::delta::SkylineDelta;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;
use skyline_data::rng::Rng64;
use skyline_data::{Distribution, SyntheticSpec};
use skyline_integration_tests::oracle_skyline;

/// One scripted mutation. Selectors (`u64`) are resolved modulo the
/// live population *at execution time*, so dropping earlier ops never
/// makes a later op meaningless — at worst it becomes a no-op.
#[derive(Clone, Debug)]
enum Op {
    /// Insert this row.
    Insert(Vec<f64>),
    /// Re-insert the row of the selector-chosen live point (exact
    /// duplicate; no-op when nothing is live).
    DuplicateRow(u64),
    /// Remove the selector-chosen live point (no-op when nothing is
    /// live).
    RemoveLive(u64),
    /// Remove an id that is not live: a previously removed handle when
    /// one exists (selector-chosen), a never-issued handle otherwise.
    /// Must yield no delta and must not move the version.
    RemoveMissing(u64),
}

/// Brute-force skyline of the live points, as sorted streaming ids —
/// the from-scratch answer the delta-patched list must byte-match.
fn scratch_oracle(live: &[(PointId, Vec<f64>)]) -> Vec<PointId> {
    if live.is_empty() {
        return Vec::new();
    }
    let rows: Vec<Vec<f64>> = live.iter().map(|(_, r)| r.clone()).collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let mut ids: Vec<PointId> = oracle_skyline(&data)
        .into_iter()
        .map(|i| live[i as usize].0)
        .collect();
    ids.sort_unstable();
    ids
}

/// Execute `ops`, maintaining the skyline purely by delta application.
/// Returns the first divergence as `Err` (no panics: the shrinker needs
/// to re-run candidate scripts cheaply).
fn run_script(dims: usize, ops: &[Op]) -> Result<(), String> {
    let mut sky = StreamingSkyline::new(dims).map_err(|e| e.to_string())?;
    let mut metrics = Metrics::new();
    let mut live: Vec<(PointId, Vec<f64>)> = Vec::new();
    let mut dead: Vec<PointId> = Vec::new();
    let mut issued: u64 = 0;
    // The delta-maintained skyline: only ever touched via apply().
    let mut patched: Vec<PointId> = Vec::new();

    for (step, op) in ops.iter().enumerate() {
        let fail = |what: String| Err::<(), String>(format!("step {step} ({op:?}): {what}"));
        let before = sky.version();
        let delta: Option<SkylineDelta> = match op {
            Op::Insert(row) => {
                let (id, d) = match sky.insert_delta(row, &mut metrics) {
                    Ok(pair) => pair,
                    Err(e) => return fail(format!("insert failed: {e}")),
                };
                issued += 1;
                live.push((id, row.clone()));
                Some(d)
            }
            Op::DuplicateRow(sel) => match live.is_empty() {
                true => None,
                false => {
                    let row = live[(*sel as usize) % live.len()].1.clone();
                    let (id, d) = match sky.insert_delta(&row, &mut metrics) {
                        Ok(pair) => pair,
                        Err(e) => return fail(format!("duplicate insert failed: {e}")),
                    };
                    issued += 1;
                    live.push((id, row));
                    Some(d)
                }
            },
            Op::RemoveLive(sel) => match live.is_empty() {
                true => None,
                false => {
                    let (id, _) = live.remove((*sel as usize) % live.len());
                    dead.push(id);
                    match sky.remove_delta(id, &mut metrics) {
                        Some(d) => Some(d),
                        None => return fail(format!("live id {id} refused removal")),
                    }
                }
            },
            Op::RemoveMissing(sel) => {
                let victim = if dead.is_empty() {
                    // Handles are issued densely from 0, so this one
                    // cannot exist yet.
                    (issued + 1 + sel % 7) as PointId
                } else {
                    dead[(*sel as usize) % dead.len()]
                };
                if let Some(d) = sky.remove_delta(victim, &mut metrics) {
                    return fail(format!("missing id {victim} produced delta {d:?}"));
                }
                if sky.version() != before {
                    return fail("missing-id remove moved the version".to_string());
                }
                None
            }
        };

        if let Some(d) = &delta {
            if d.version != before + 1 {
                return fail(format!(
                    "delta version {} is not base {before} + 1",
                    d.version
                ));
            }
            if d.version != sky.version() {
                return fail(format!(
                    "delta version {} disagrees with the structure's {}",
                    d.version,
                    sky.version()
                ));
            }
            if !d.apply(&mut patched) {
                return fail(format!("delta {d:?} refused to apply to {patched:?}"));
            }
        }

        sky.check_invariants();
        let expected = scratch_oracle(&live);
        if patched != expected {
            return fail(format!(
                "delta-patched skyline {patched:?} != scratch recompute {expected:?}"
            ));
        }
        if patched != sky.skyline() {
            return fail(format!(
                "delta-patched skyline {patched:?} != structure view {:?}",
                sky.skyline()
            ));
        }
    }
    Ok(())
}

/// Greedy delta-debugging: drop one op at a time, keeping any drop
/// under which the script still fails, until no single removal
/// reproduces. Panics with the minimal script and its error.
fn shrink_and_report(dims: usize, mut script: Vec<Op>, mut err: String) -> ! {
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < script.len() {
            let mut candidate = script.clone();
            candidate.remove(i);
            match run_script(dims, &candidate) {
                Err(e) => {
                    script = candidate;
                    err = e;
                    changed = true;
                }
                Ok(()) => i += 1,
            }
        }
    }
    panic!(
        "delta engine diverged from the scratch oracle (dims={dims}).\n\
         error: {err}\n\
         minimal failing script ({} ops):\n{script:#?}",
        script.len()
    );
}

/// Generate one script: rows drawn from `dist` so the skyline density
/// matches real workloads, with ~15% duplicate inserts, ~20% live
/// removals, and ~10% missing-id removals mixed in.
fn gen_script(dist: Distribution, dims: usize, steps: usize, seed: u64) -> Vec<Op> {
    let spec = SyntheticSpec {
        distribution: dist,
        cardinality: steps,
        dims,
        seed,
    };
    let data = spec.generate();
    let mut pool = data.iter().map(|(_, row)| row.to_vec());
    let mut rng = Rng64::seed_from_u64(seed ^ 0xDE17A);
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let roll = rng.next_u64() % 100;
        let sel = rng.next_u64();
        ops.push(match roll {
            0..=54 => Op::Insert(pool.next().expect("pool sized to steps")),
            55..=69 => Op::DuplicateRow(sel),
            70..=89 => Op::RemoveLive(sel),
            _ => Op::RemoveMissing(sel),
        });
    }
    ops
}

fn fuzz(dist: Distribution, steps_per_dim: usize) {
    for dims in 2..=8usize {
        let seed = 0x5EED_0000 + dims as u64;
        let script = gen_script(dist, dims, steps_per_dim, seed);
        if let Err(e) = run_script(dims, &script) {
            shrink_and_report(dims, script, e);
        }
    }
}

// 3 distributions × 7 dimensionalities × 60 steps = 1260 randomized
// steps, each checked against the scratch oracle.

#[test]
fn independent_scripts_match_scratch_recompute() {
    fuzz(Distribution::Independent, 60);
}

#[test]
fn correlated_scripts_match_scratch_recompute() {
    fuzz(Distribution::Correlated, 60);
}

#[test]
fn anticorrelated_scripts_match_scratch_recompute() {
    fuzz(Distribution::AntiCorrelated, 60);
}

/// The degenerate scripts the fuzzer rarely lands on exactly.
#[test]
fn edge_scripts_hold() {
    // Empty script: nothing to check, nothing to crash.
    assert_eq!(run_script(3, &[]), Ok(()));
    // Only missing-id removals: version must never move.
    assert_eq!(
        run_script(2, &[Op::RemoveMissing(0), Op::RemoveMissing(41)]),
        Ok(())
    );
    // Insert, duplicate it, remove both, then re-remove (missing).
    let script = vec![
        Op::Insert(vec![0.5, 0.5]),
        Op::DuplicateRow(0),
        Op::RemoveLive(1),
        Op::RemoveLive(0),
        Op::RemoveMissing(0),
        Op::RemoveMissing(1),
    ];
    assert_eq!(run_script(2, &script), Ok(()));
}

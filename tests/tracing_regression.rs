//! Tracing must be a pure observer: running any algorithm through the
//! traced entry points — with the no-op recorder or with a real sink —
//! must produce the identical skyline and the identical `Metrics` as
//! the plain untraced path.

use skyline_algos::{evaluation_suite, SkylineAlgorithm};
use skyline_core::dataset::Dataset;
use skyline_core::metrics::Metrics;
use skyline_data::{Distribution, SyntheticSpec};
use skyline_obs::{Event, JsonlRecorder, MemoryRecorder, NoopRecorder, Record, TraceSummary};

fn workload() -> Dataset {
    SyntheticSpec {
        distribution: Distribution::AntiCorrelated,
        cardinality: 600,
        dims: 5,
        seed: 99,
    }
    .generate()
}

/// The no-op recorder path changes nothing: same skyline, same counters,
/// same histograms, for every algorithm in the evaluation suite.
#[test]
fn noop_recorder_changes_no_metrics() {
    let data = workload();
    for algo in evaluation_suite(None) {
        let mut plain = Metrics::new();
        let sky_plain = algo.compute_with_metrics(&data, &mut plain);

        let mut traced = Metrics::new();
        let sky_traced = algo.compute_traced(&data, &mut traced, &mut NoopRecorder);

        assert_eq!(
            sky_plain,
            sky_traced,
            "{}: skyline drifted under tracing",
            algo.name()
        );
        assert_eq!(
            plain,
            traced,
            "{}: Metrics drifted under tracing",
            algo.name()
        );
    }
}

/// A live recorder observes the run without perturbing it.
#[test]
fn live_recorder_is_a_pure_observer() {
    let data = workload();
    for algo in evaluation_suite(None) {
        let mut plain = Metrics::new();
        let sky_plain = algo.compute_with_metrics(&data, &mut plain);

        let mut rec = MemoryRecorder::new();
        let mut traced = Metrics::new();
        let sky_traced = algo.compute_traced(&data, &mut traced, &mut rec);

        assert_eq!(sky_plain, sky_traced, "{}: skyline drifted", algo.name());
        assert_eq!(
            plain,
            traced,
            "{}: Metrics drifted with live recorder",
            algo.name()
        );
        assert!(
            rec.open_spans().is_empty(),
            "{}: unbalanced spans",
            algo.name()
        );
    }
}

/// The boosted variants emit the full event vocabulary and their spans
/// nest run ⊃ {merge, sort, scan} in order.
#[test]
fn boosted_runs_emit_phase_spans_and_events() {
    let data = workload();
    for name in ["SFS-Subset", "SaLSa-Subset", "SDI-Subset"] {
        let algo = skyline_algos::algorithm_by_name(name).unwrap();
        let mut rec = MemoryRecorder::new();
        let m = algo.run_traced(&data, &mut rec);
        assert!(!m.skyline.is_empty());

        let span_starts: Vec<(&str, usize)> = rec
            .records()
            .iter()
            .filter_map(|r| match r {
                Record::SpanStart { name, depth } => Some((*name, *depth)),
                _ => None,
            })
            .collect();
        assert_eq!(
            span_starts,
            vec![("run", 0), ("merge", 1), ("sort", 1), ("scan", 1)],
            "{name}: unexpected span structure"
        );
        assert!(rec.open_spans().is_empty(), "{name}: spans left open");

        let mut merge_iterations = 0u64;
        let mut have = [false; 3]; // run_start, trie_stats, run_summary
        for e in rec.events() {
            match e {
                Event::RunStart {
                    algorithm,
                    points,
                    dims,
                } => {
                    assert_eq!(algorithm, name);
                    assert_eq!(*points, data.len() as u64);
                    assert_eq!(*dims, data.dims() as u64);
                    have[0] = true;
                }
                Event::MergeIteration { iteration, .. } => {
                    assert_eq!(
                        *iteration, merge_iterations,
                        "{name}: iterations out of order"
                    );
                    merge_iterations += 1;
                }
                Event::TrieStats { entries, .. } => {
                    assert!(*entries > 0);
                    have[1] = true;
                }
                Event::RunSummary {
                    algorithm,
                    skyline_size,
                    ..
                } => {
                    assert_eq!(algorithm, name);
                    assert_eq!(*skyline_size, m.skyline.len() as u64);
                    have[2] = true;
                }
                Event::ShardScan { .. } | Event::ParallelMerge { .. } => {
                    panic!("{name}: sequential run emitted a parallel event");
                }
                Event::Request { .. }
                | Event::CacheHit { .. }
                | Event::Shed { .. }
                | Event::DeadlineExceeded { .. }
                | Event::HandlerPanic { .. }
                | Event::Recovery { .. }
                | Event::ShardRpc { .. }
                | Event::ClusterMerge { .. }
                | Event::StageBreakdown { .. }
                | Event::DeltaApplied { .. }
                | Event::FeedPoll { .. }
                | Event::ReplicaApply { .. }
                | Event::ReplicaResync { .. }
                | Event::Promotion { .. }
                | Event::Demotion { .. }
                | Event::FencedRequest { .. }
                | Event::FailoverSuspect { .. }
                | Event::Failover { .. } => {
                    panic!("{name}: library run emitted a server event");
                }
            }
        }
        assert!(merge_iterations > 0, "{name}: no merge telemetry");
        assert!(
            have.iter().all(|&b| b),
            "{name}: missing lifecycle events {have:?}"
        );
    }
}

/// Full pipeline: run traced into a JSONL sink, read it back through
/// `TraceSummary`, and check the aggregate matches the measurement.
#[test]
fn jsonl_trace_round_trips_through_summary() {
    let data = workload();
    let mut rec = JsonlRecorder::new(Vec::new());
    let algo = skyline_algos::boosted::SdiSubset::default();
    let m = algo.run_traced(&data, &mut rec);
    assert_eq!(rec.io_errors(), 0);
    let text = String::from_utf8(rec.into_inner().unwrap()).unwrap();

    let s = TraceSummary::from_text(&text);
    assert_eq!(s.skipped, 0, "every emitted line must parse");
    assert_eq!(
        s.type_counts.len(),
        6,
        "six record types: {:?}",
        s.type_counts
    );
    let a = &s.algorithms["SDI-Subset"];
    assert_eq!(a.runs, 1);
    assert_eq!(a.skyline_total, m.skyline.len() as u64);
    assert_eq!(a.dominance_tests, m.metrics.dominance_tests);
    assert_eq!(a.container_gets, m.metrics.container_gets);
    assert_eq!(s.trie_entries, m.metrics.container_puts);
    assert!(s.merge_iterations > 0);
    assert_eq!(s.spans["run"].count, 1);
    assert!(s.spans["run"].total_us >= s.spans["merge"].total_us);
    let rendered = s.render();
    assert!(rendered.contains("SDI-Subset"));
    assert!(rendered.contains("merge phase"));
}

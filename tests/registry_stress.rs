//! Concurrent-reader stress test: several reader threads query the
//! skyline over HTTP while one writer streams inserts into the same
//! dataset. Every response must equal the brute-force oracle **at the
//! content version the response reports** — the registry's snapshot
//! discipline means a reader never sees a half-applied mutation.

use std::collections::HashMap;
use std::sync::Mutex;

use skyline_core::dataset::Dataset;
use skyline_core::point::PointId;
use skyline_integration_tests::{
    http_client as client, oracle_skyline, parse_skyline_response, rows_json, start_server,
};

const INITIAL: usize = 60;
const STREAMED: usize = 90;
const READERS: usize = 4;
const QUERIES_PER_READER: usize = 25;

fn all_rows() -> Vec<Vec<f64>> {
    let spec = skyline_data::SyntheticSpec {
        distribution: skyline_data::Distribution::AntiCorrelated,
        cardinality: INITIAL + STREAMED,
        dims: 4,
        seed: 0x57AE55,
    };
    spec.generate()
        .iter()
        .map(|(_, row)| row.to_vec())
        .collect()
}

/// Oracle skyline of the first `version` rows (insert-only stream ⇒
/// content version v is exactly the prefix of length v, with identity
/// handle mapping).
fn oracle_at(
    rows: &[Vec<f64>],
    version: u64,
    memo: &Mutex<HashMap<u64, Vec<PointId>>>,
) -> Vec<PointId> {
    if let Some(hit) = memo.lock().unwrap().get(&version) {
        return hit.clone();
    }
    let prefix = Dataset::from_rows(&rows[..version as usize]).unwrap();
    let skyline = oracle_skyline(&prefix);
    memo.lock().unwrap().insert(version, skyline.clone());
    skyline
}

#[test]
fn concurrent_readers_always_see_a_consistent_version() {
    let rows = all_rows();
    let server = start_server();
    let addr = server.local_addr();
    let created = client::post(
        addr,
        "/datasets",
        &format!(
            "{{\"name\": \"stress\", \"rows\": {}}}",
            rows_json(&rows[..INITIAL])
        ),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());

    let memo: Mutex<HashMap<u64, Vec<PointId>>> = Mutex::new(HashMap::new());
    let algos = ["SFS", "SDI-Subset", "SaLSa-Subset", "P-SFS"];

    std::thread::scope(|scope| {
        // One writer, streaming the remaining rows one insert at a time.
        let writer_rows = &rows;
        scope.spawn(move || {
            for row in &writer_rows[INITIAL..] {
                let body = format!("{{\"rows\": {}}}", rows_json(std::slice::from_ref(row)));
                let resp = client::post(addr, "/datasets/stress/points", &body).unwrap();
                assert_eq!(resp.status, 200, "writer: {}", resp.body_str());
            }
        });

        // N readers hammering /skyline with a rotation of engines.
        for reader in 0..READERS {
            let rows = &rows;
            let memo = &memo;
            scope.spawn(move || {
                let mut last_version = 0u64;
                for i in 0..QUERIES_PER_READER {
                    let algo = algos[(reader + i) % algos.len()];
                    let resp =
                        client::get(addr, &format!("/skyline?dataset=stress&algo={algo}")).unwrap();
                    assert_eq!(resp.status, 200, "reader {reader}: {}", resp.body_str());
                    let (version, _, ids) = parse_skyline_response(&resp.body_str());
                    assert!(
                        (INITIAL as u64..=(INITIAL + STREAMED) as u64).contains(&version),
                        "reader {reader} saw version {version}"
                    );
                    assert!(
                        version >= last_version,
                        "reader {reader}: version went backwards ({last_version} -> {version})"
                    );
                    last_version = version;
                    let expected = oracle_at(rows, version, memo);
                    assert_eq!(
                        ids, expected,
                        "reader {reader} iter {i}: {algo} at version {version} diverges from oracle"
                    );
                }
            });
        }
    });

    // After the writer finishes, the final version is fully visible.
    let final_resp = client::get(addr, "/skyline?dataset=stress&algo=SFS").unwrap();
    let (version, _, ids) = parse_skyline_response(&final_resp.body_str());
    assert_eq!(version, (INITIAL + STREAMED) as u64);
    assert_eq!(ids, oracle_at(&rows, version, &memo));
}

//! Regression tests for the floating-point edge cases found during code
//! review: rounding-collapsed monotone scores, signed zeros, adjacent
//! float midpoints, and an unsound stop-point configuration.
//!
//! Each of these used to make at least one algorithm return a
//! non-skyline point or diverge.

use skyline_algos::{all_algorithms, dnc::DivideAndConquer, SkylineAlgorithm};
use skyline_core::boost::{boosted_skyline, BoostConfig, SortStrategy};
use skyline_core::dataset::Dataset;
use skyline_core::merge::MergeConfig;
use skyline_core::metrics::Metrics;
use skyline_integration_tests::oracle_skyline;

/// `1e16 + 1.0` rounds back to `1e16`: the dominated point's coordinate
/// sum equals its dominator's, so id-based tie-breaks used to scan the
/// victim first and confirm it.
#[test]
fn rounding_collapsed_sum_ties() {
    let data = Dataset::from_rows(&[
        [1e16, 1.0], // dominated by the next row, same rounded sum
        [1e16, 0.0],
    ])
    .unwrap();
    let expected = oracle_skyline(&data);
    assert_eq!(expected, vec![1]);
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), expected, "{}", algo.name());
    }
}

/// The same collapse inside a larger set, with an extreme third point so
/// pivot-based algorithms pick it and the tied pair survives pruning.
#[test]
fn rounding_collapsed_ties_with_pivot_noise() {
    let data = Dataset::from_rows(&[
        [1e16, 1.0],
        [1e16, 0.0],
        [0.0, 1e17],
        [1e16, 2.0], // also dominated by row 1
    ])
    .unwrap();
    let expected = oracle_skyline(&data);
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), expected, "{}", algo.name());
    }
}

/// `-0.0` and `+0.0` are equal under the preference order, but
/// `total_cmp` separates them; a victim holding `-0.0` used to be scanned
/// before its dominator holding `+0.0`.
#[test]
fn signed_zero_is_canonicalised() {
    let data = Dataset::from_rows(&[
        [-0.0, 1.0], // dominated by the next row
        [0.0, 0.5],
    ])
    .unwrap();
    // Canonicalisation happens at construction: no -0.0 survives.
    assert!(data
        .as_flat()
        .iter()
        .all(|v| v.to_bits() != (-0.0f64).to_bits()));
    let expected = oracle_skyline(&data);
    assert_eq!(expected, vec![1]);
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), expected, "{}", algo.name());
    }
}

/// Signed zeros through the streaming structure (which bypasses Dataset
/// construction).
#[test]
fn signed_zero_in_streaming() {
    use skyline_core::streaming::StreamingSkyline;
    let mut sky = StreamingSkyline::new(2).unwrap();
    let mut m = Metrics::new();
    let a = sky.insert(&[-0.0, 1.0], &mut m).unwrap();
    let b = sky.insert(&[0.0, 0.5], &mut m).unwrap();
    assert!(!sky.is_skyline(a));
    assert_eq!(sky.skyline(), vec![b]);
    sky.check_invariants();
}

/// Adjacent f64 values on the split dimension: the D&C midpoint can
/// round to the upper bound, which used to leave the high partition
/// empty and recurse forever.
#[test]
fn dnc_adjacent_float_split() {
    let lo = 1.0f64 + f64::EPSILON;
    let hi = f64::from_bits(lo.to_bits() + 1);
    assert!(lo < hi);
    let mut rows = Vec::new();
    for i in 0..40 {
        rows.push([if i % 2 == 0 { lo } else { hi }, i as f64]);
    }
    let data = Dataset::from_rows(&rows).unwrap();
    let dnc = DivideAndConquer { block: 8 };
    assert_eq!(dnc.compute(&data), oracle_skyline(&data));
}

/// The stop-point rule is only allowed to abort the scan under minC
/// ordering; with Sum ordering it must degrade to per-point skips and
/// still return the exact skyline.
#[test]
fn stop_point_with_non_minc_sort_stays_exact() {
    let data =
        Dataset::from_rows(&[[-1000.0, 1000.0], [1.0, 2.0], [11.0, 12.0], [0.5, 100.0]]).unwrap();
    let expected = oracle_skyline(&data);
    for sort in [
        SortStrategy::Sum,
        SortStrategy::Euclidean,
        SortStrategy::MinCoordinate,
    ] {
        let config = BoostConfig {
            merge: MergeConfig::recommended(data.dims()),
            sort,
            use_stop_point: true,
        };
        let mut m = Metrics::new();
        let out = boosted_skyline(&data, &config, &mut m);
        assert_eq!(out.skyline, expected, "{sort:?}");
    }
}

/// A broader randomised sweep over near-tie values: large magnitudes
/// with small perturbations maximise rounding collisions.
#[test]
fn randomised_rounding_stress() {
    let mut rng = skyline_data::rng::Rng64::seed_from_u64(4096);
    for trial in 0..20 {
        let n = 40;
        let d = 3;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| 1e16 + rng.gen_below(4) as f64).collect())
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let expected = oracle_skyline(&data);
        for algo in all_algorithms() {
            assert_eq!(
                algo.compute(&data),
                expected,
                "trial {trial}: {}",
                algo.name()
            );
        }
    }
}

//! Every algorithm in the crate returns the exact same skyline as a
//! brute-force oracle, on all three data distributions and several
//! dataset shapes — including degenerate ones.

use skyline_algos::all_algorithms;
use skyline_core::dataset::Dataset;
use skyline_integration_tests::{oracle_skyline, workload_grid};

#[test]
fn all_algorithms_agree_with_the_oracle_on_synthetic_data() {
    for (data, label) in workload_grid() {
        let expected = oracle_skyline(&data);
        for algo in all_algorithms() {
            let got = algo.compute(&data);
            assert_eq!(got, expected, "{} on {label}", algo.name());
        }
    }
}

#[test]
fn all_algorithms_agree_on_real_dataset_stand_ins() {
    let datasets = [
        ("HOUSE'", skyline_data::real::house_scaled(800)),
        ("NBA'", skyline_data::real::nba_scaled(800)),
        ("WEATHER'", skyline_data::real::weather_scaled(800)),
    ];
    for (label, data) in datasets {
        let expected = oracle_skyline(&data);
        for algo in all_algorithms() {
            assert_eq!(algo.compute(&data), expected, "{} on {label}", algo.name());
        }
    }
}

#[test]
fn empty_dataset_yields_empty_skyline() {
    let data = Dataset::from_flat(vec![], 4).unwrap();
    for algo in all_algorithms() {
        assert!(algo.compute(&data).is_empty(), "{}", algo.name());
    }
}

#[test]
fn singleton_dataset() {
    let data = Dataset::from_rows(&[[5.0, 5.0, 5.0]]).unwrap();
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), vec![0], "{}", algo.name());
    }
}

#[test]
fn one_dimensional_dataset() {
    let data = Dataset::from_rows(&[[3.0], [1.0], [2.0], [1.0], [7.0]]).unwrap();
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), vec![1, 3], "{}", algo.name());
    }
}

#[test]
fn two_dimensional_dataset_with_heavy_ties() {
    // d = 2 is the paper's degenerate case for the subset index; ties
    // stress every sort-order tie-break.
    let rows: Vec<[f64; 2]> = (0..100)
        .map(|i| [((i * 3) % 5) as f64, ((i * 7) % 5) as f64])
        .collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let expected = oracle_skyline(&data);
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), expected, "{}", algo.name());
    }
}

#[test]
fn all_points_identical() {
    let data = Dataset::from_rows(&vec![[4.0, 2.0, 9.0]; 64]).unwrap();
    let expected: Vec<u32> = (0..64).collect();
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), expected, "{}", algo.name());
    }
}

#[test]
fn totally_ordered_chain() {
    let rows: Vec<[f64; 4]> = (0..50)
        .map(|i| [i as f64, i as f64 + 1.0, i as f64 * 2.0, i as f64])
        .collect();
    let data = Dataset::from_rows(&rows).unwrap();
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), vec![0], "{}", algo.name());
    }
}

#[test]
fn max_supported_dimensionality() {
    // 64-D is the Subspace bitmask limit; make sure nothing overflows.
    let rows: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..64)
                .map(|k| (((i * 7 + k * 13) % 23) as f64) / 23.0)
                .collect()
        })
        .collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let expected = oracle_skyline(&data);
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), expected, "{}", algo.name());
    }
}

#[test]
fn negative_values_from_max_preferences() {
    use skyline_core::point::Preference;
    // Ratings are maximised; the canonical form contains negatives.
    let rows = [
        [10.0, 4.5],
        [12.0, 4.9],
        [10.0, 4.4], // dominated by row 0
        [9.0, 3.0],
    ];
    let data =
        Dataset::from_rows_with_preferences(&rows, &[Preference::Min, Preference::Max]).unwrap();
    let expected = oracle_skyline(&data);
    assert_eq!(expected, vec![0, 1, 3]);
    for algo in all_algorithms() {
        assert_eq!(algo.compute(&data), expected, "{}", algo.name());
    }
}

//! Shared helpers for the runnable examples (none yet).

//! Quickstart: compute a skyline three ways — with a classic algorithm,
//! with the paper's boosted driver, and with the low-level merge + subset
//! index API.
//!
//! Run with: `cargo run -p skyline-examples --example quickstart`

use skyline_algos::{boosted::SdiSubset, sfs::Sfs, SkylineAlgorithm};
use skyline_core::prelude::*;

fn main() {
    // A tiny dataset of laptops: (price in $100s, weight in kg, boot
    // seconds). All three criteria are minimised.
    let data = Dataset::from_rows(&[
        [12.0, 1.1, 8.0], // 0: light ultrabook
        [7.0, 2.3, 14.0], // 1: budget workhorse
        [13.0, 1.2, 9.0], // 2: dominated by 0
        [9.0, 1.8, 11.0], // 3: balanced midrange
        [7.0, 2.3, 16.0], // 4: dominated by 1
        [20.0, 0.9, 7.0], // 5: premium featherweight
    ])
    .expect("valid rows");

    // 1. Any algorithm from the suite.
    let skyline = Sfs.compute(&data);
    println!("SFS skyline: {skyline:?}");

    // 2. The paper's boosted SDI with default sigma = round(d/3).
    let result = SdiSubset::default().run(&data);
    println!(
        "SDI-Subset skyline: {:?} ({} dominance tests, {:.3} ms)",
        result.skyline,
        result.metrics.dominance_tests,
        result.elapsed_ms()
    );
    assert_eq!(skyline, result.skyline);

    // 3. The low-level building blocks: merge phase + subset index.
    let mut metrics = Metrics::new();
    let outcome = merge(&data, &MergeConfig::recommended(data.dims()), &mut metrics);
    println!(
        "merge: {} pivot(s), {} survivor(s), exhausted = {}",
        outcome.pivots.len(),
        outcome.survivors.len(),
        outcome.exhausted
    );
    let mut index = SubsetIndex::new(data.dims());
    for (&q, &sub) in outcome.survivors.iter().zip(&outcome.subspaces) {
        index.put(q, sub);
        println!("  survivor {q} has maximum dominating subspace {sub}");
    }
    // Which stored points could dominate a point that beats the pivots
    // only in dimension 0?
    let candidates = index.query(Subspace::singleton(0), &mut metrics);
    println!("candidates for subspace {{0}}: {candidates:?}");
}

//! The paper's headline claim, live: on uniform-independent data the
//! subset-boosted sorting algorithms overtake the BSkyTree baselines as
//! dimensionality grows (Section 6.2, Tables 10–13).
//!
//! Generates UI datasets of increasing dimensionality and prints the mean
//! dominance-test numbers of SFS/SaLSa/SDI against their -Subset versions,
//! plus the DT reduction factor (the paper's "performance gain").
//!
//! Run with: `cargo run -p skyline-examples --release --example boost_comparison`

use skyline_algos::{boosted, salsa::SaLSa, sdi::Sdi, sfs::Sfs, SkylineAlgorithm};
use skyline_data::uniform_independent;

fn main() {
    let n = 20_000;
    println!("UI data, {n} points; DT = mean dominance tests per point");
    println!(
        "{:>4} {:>10} {:>10} {:>6} {:>10} {:>10} {:>6} {:>10} {:>10} {:>6}",
        "d", "SFS", "+Subset", "gain", "SaLSa", "+Subset", "gain", "SDI", "+Subset", "gain"
    );
    for d in [4usize, 6, 8, 10] {
        let data = uniform_independent(n, d, 0xB00 + d as u64);
        let pairs: Vec<(f64, f64)> = vec![
            (
                Sfs.run(&data).mean_dominance_tests(),
                boosted::SfsSubset::default()
                    .run(&data)
                    .mean_dominance_tests(),
            ),
            (
                SaLSa.run(&data).mean_dominance_tests(),
                boosted::SalsaSubset::default()
                    .run(&data)
                    .mean_dominance_tests(),
            ),
            (
                Sdi.run(&data).mean_dominance_tests(),
                boosted::SdiSubset::default()
                    .run(&data)
                    .mean_dominance_tests(),
            ),
        ];
        print!("{d:>4}");
        for (base, boosted) in pairs {
            let gain = if boosted > 0.0 {
                base / boosted
            } else {
                f64::INFINITY
            };
            print!(" {base:>10.2} {boosted:>10.2} {gain:>5.1}x");
        }
        println!();
    }
    println!();
    println!("Expect gains to grow with d (the paper reports x4-x8 at 8-D");
    println!("and up to x30-x49 at 20/24-D on the full 200K datasets).");
}

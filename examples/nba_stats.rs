//! Skyline over the NBA′ stand-in dataset (Section 6.3 of the paper):
//! find the non-dominated "players" across eight per-game statistics and
//! compare how the evaluation suite behaves on small, mildly correlated
//! data — where the paper observes only modest gains from the subset
//! index.
//!
//! Run with: `cargo run -p skyline-examples --release --example nba_stats`

use skyline_algos::evaluation_suite;
use skyline_data::real::{nba_scaled, NBA_SIGMA};

fn main() {
    // A reduced NBA′ (quarter size) keeps the example quick in debug
    // builds; pass `--release` and bump this for the full 17,264 players.
    let data = nba_scaled(4000);
    println!(
        "NBA′ stand-in: {} players x {} statistics (sigma = {})",
        data.len(),
        data.dims(),
        NBA_SIGMA
    );
    println!();
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "algorithm", "mean DT", "time (ms)", "skyline"
    );

    let mut skyline_size = None;
    for algo in evaluation_suite(Some(NBA_SIGMA)) {
        let r = algo.run(&data);
        println!(
            "{:<14} {:>10.3} {:>12.3} {:>10}",
            algo.name(),
            r.mean_dominance_tests(),
            r.elapsed_ms(),
            r.skyline.len()
        );
        // Every algorithm must agree on the skyline.
        match skyline_size {
            None => skyline_size = Some(r.skyline.len()),
            Some(s) => assert_eq!(s, r.skyline.len(), "{} disagrees", algo.name()),
        }
    }
}

//! A live "best offers" dashboard: flight offers stream in and expire,
//! and the Pareto front of (price, duration, stops) is maintained
//! incrementally with [`StreamingSkyline`] — the paper's future-work
//! item on updating data (Section 7), built on the same subset index.
//!
//! Run with: `cargo run -p skyline-examples --example streaming_dashboard`

use skyline_core::metrics::Metrics;
use skyline_core::streaming::StreamingSkyline;

struct Offer {
    airline: &'static str,
    price: f64,
    hours: f64,
    stops: f64,
}

fn main() {
    let mut sky = StreamingSkyline::new(3).expect("3 dimensions");
    let mut metrics = Metrics::new();

    let offers = [
        Offer {
            airline: "AeroNova",
            price: 420.0,
            hours: 11.5,
            stops: 1.0,
        },
        Offer {
            airline: "BlueJet",
            price: 380.0,
            hours: 14.0,
            stops: 2.0,
        },
        Offer {
            airline: "CloudAir",
            price: 650.0,
            hours: 8.0,
            stops: 0.0,
        },
        Offer {
            airline: "AeroNova",
            price: 430.0,
            hours: 12.0,
            stops: 1.0,
        }, // worse than #0
        Offer {
            airline: "DeltaWave",
            price: 390.0,
            hours: 13.5,
            stops: 2.0,
        }, // beats BlueJet? no: pricier but faster
        Offer {
            airline: "EchoFly",
            price: 350.0,
            hours: 16.0,
            stops: 3.0,
        },
    ];

    let mut ids = Vec::new();
    for offer in &offers {
        let id = sky
            .insert(&[offer.price, offer.hours, offer.stops], &mut metrics)
            .expect("valid offer");
        ids.push(id);
        println!(
            "+ {:<9} ${:>3.0} {:>5.1}h {} stop(s) -> front size {}",
            offer.airline,
            offer.price,
            offer.hours,
            offer.stops,
            sky.skyline_len()
        );
    }

    println!("\ncurrent Pareto front:");
    for id in sky.skyline() {
        let o = &offers[id as usize];
        println!(
            "  [{id}] {:<9} ${:>3.0} {:>5.1}h {} stop(s)",
            o.airline, o.price, o.hours, o.stops
        );
    }

    // CloudAir's nonstop offer expires: whoever it was shadowing
    // resurfaces automatically.
    println!("\n- CloudAir offer expires");
    sky.remove(ids[2], &mut metrics);
    println!("front size is now {}", sky.skyline_len());

    // The cheapest offer expires too.
    println!("- EchoFly offer expires");
    sky.remove(ids[5], &mut metrics);

    println!("\nfinal Pareto front:");
    for id in sky.skyline() {
        let o = &offers[id as usize];
        println!(
            "  [{id}] {:<9} ${:>3.0} {:>5.1}h {} stop(s)",
            o.airline, o.price, o.hours, o.stops
        );
    }
    println!(
        "\n{} live offers, {} dominance tests total",
        sky.len(),
        metrics.dominance_tests
    );
}

//! The paper's motivating scenario (Figure 1): hotels with a price and a
//! distance from the beach, both minimised — plus a rating, maximised, to
//! show mixed preference orders.
//!
//! Run with: `cargo run -p skyline-examples --example hotel_search`

use skyline_algos::{salsa::SaLSa, SkylineAlgorithm};
use skyline_core::dataset::Dataset;
use skyline_core::point::Preference;

struct Hotel {
    name: &'static str,
    price: f64,    // $ per night, minimise
    distance: f64, // km to the beach, minimise
    rating: f64,   // stars, maximise
}

fn main() {
    let hotels = [
        Hotel {
            name: "Aurora",
            price: 85.0,
            distance: 0.4,
            rating: 3.9,
        },
        Hotel {
            name: "Bayview",
            price: 125.0,
            distance: 0.2,
            rating: 4.4,
        },
        Hotel {
            name: "Cascade",
            price: 90.0,
            distance: 1.8,
            rating: 3.1,
        }, // dominated
        Hotel {
            name: "Dune",
            price: 60.0,
            distance: 2.5,
            rating: 3.7,
        },
        Hotel {
            name: "Ember",
            price: 150.0,
            distance: 0.2,
            rating: 4.2,
        }, // dominated
        Hotel {
            name: "Fjord",
            price: 60.0,
            distance: 2.5,
            rating: 3.7,
        }, // tie with Dune
        Hotel {
            name: "Grove",
            price: 45.0,
            distance: 4.0,
            rating: 2.8,
        },
        Hotel {
            name: "Haven",
            price: 200.0,
            distance: 0.1,
            rating: 4.9,
        },
    ];

    let rows: Vec<[f64; 3]> = hotels
        .iter()
        .map(|h| [h.price, h.distance, h.rating])
        .collect();
    let data = Dataset::from_rows_with_preferences(
        &rows,
        &[Preference::Min, Preference::Min, Preference::Max],
    )
    .expect("valid rows");

    let result = SaLSa.run(&data);
    println!("Pareto-optimal hotels (cheap, close, well rated):");
    for &id in &result.skyline {
        let h = &hotels[id as usize];
        println!(
            "  {:<8} ${:>6.0}  {:>4.1} km  {:>3.1}★",
            h.name, h.price, h.distance, h.rating
        );
    }
    println!(
        "{} of {} hotels are on the skyline ({} dominance tests).",
        result.skyline.len(),
        hotels.len(),
        result.metrics.dominance_tests
    );

    // Cascade and Ember are strictly worse than some other hotel on every
    // criterion; everything else survives (Dune/Fjord are exact ties and
    // both stay).
    let names: Vec<&str> = result
        .skyline
        .iter()
        .map(|&id| hotels[id as usize].name)
        .collect();
    assert_eq!(
        names,
        vec!["Aurora", "Bayview", "Dune", "Fjord", "Grove", "Haven"]
    );
}

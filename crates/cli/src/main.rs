//! `skyline` — command-line skyline computation over CSV files.
//!
//! ```text
//! skyline compute  <input.csv> [--algo NAME] [--sigma N] [--threads T]
//!                  [--prefs MIN,MAX,...] [--skyband K] [--rows] [--trace out.jsonl]
//! skyline bench    <input.csv> [--sigma N] [--threads T] [--trace out.jsonl]
//! skyline report   <trace.jsonl> [--stages]
//! skyline generate --dist UI|CO|AC -n N -d D [--seed S] [-o out.csv]
//! skyline stats    <input.csv>
//! skyline tune     <input.csv> [--sample N]
//! skyline serve    [--port P] [--bind ADDR] [--threads T] [--cache N] [--trace out.jsonl]
//!                  [--data-dir DIR] [--fsync always|never|interval[=MS]] [--max-inflight N]
//!                  [--slow-ms MS] [--slow-log out.jsonl] [--follow ADDR]
//!                  [--follow-wait-ms MS] [--feed-retain N] [--compact-bytes N]
//! skyline cluster  (--shards ADDR,ADDR,... | --spawn-local N) [--port P] [--bind ADDR]
//!                  [--threads T] [--manifest PATH] [--trace out.jsonl]
//!                  [--slow-ms MS] [--slow-log out.jsonl] [--shard-reuse]
//!                  [--replicas S=ADDR,...] [--replica-staleness V]
//!                  [--failover] [--probe-ms MS] [--suspect-misses N]
//! skyline algorithms
//! ```
//!
//! Parallel engines: `--threads T` switches `compute` to the multi-core
//! partition-merge engine wrapping the selected algorithm (`--threads 0`
//! = one worker per CPU), and makes `bench` measure the `P-*` rows next
//! to their sequential counterparts.
//!
//! Serving: `skyline serve` starts the zero-dependency HTTP query
//! service from the `skyline-serve` crate (dataset registry + result
//! cache); stop it with `POST /shutdown`. With `--data-dir` every
//! mutation is write-ahead logged and datasets recover on restart;
//! `--fsync` picks the durability/throughput trade-off and
//! `--max-inflight` caps concurrent queries (excess load is shed with
//! 503 + `Retry-After`). `--follow ADDR` starts a read-only replica
//! that tails the primary's per-dataset change feeds
//! (`GET /datasets/{name}/changes`), serves reads with an
//! `X-Skyline-Replica-Lag` header and bounces writes to the primary
//! with 307; `skyline cluster --replicas 0=ADDR,...` routes read legs
//! to those followers (bounded by `--replica-staleness`), keeping
//! writes on the primaries. `--failover` adds the failure detector:
//! the coordinator probes each primary's `/healthz` every
//! `--probe-ms` milliseconds and, after `--suspect-misses` consecutive
//! misses, promotes the most-caught-up replica under a fresh fencing
//! epoch (`POST /promote`), re-points the survivors, and fences the
//! deposed primary if it ever comes back.
//!
//! Tracing: `--trace <path>` (or the `SKYLINE_TRACE` environment
//! variable) appends structured JSON-lines telemetry — spans, Merge
//! iterations, trie statistics, per-shard scans, run summaries — which
//! `skyline report` aggregates back into tables.

use std::fs::File;
use std::process::ExitCode;

use skyline_algos::{
    algorithm_by_name, all_algorithms, evaluation_suite, parallel_algorithm, parallel_suite,
    SkylineAlgorithm,
};
use skyline_core::dataset::Dataset;
use skyline_core::metrics::RunMeasurement;
use skyline_core::point::{apply_preferences, Preference};
use skyline_data::io::{read_csv_file, write_csv, write_csv_file};
use skyline_data::{Distribution, SyntheticSpec};
use skyline_obs::{JsonlRecorder, TraceSummary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  skyline compute  <input.csv> [--algo NAME] [--sigma N] [--threads T]
                   [--prefs MIN,MAX,...] [--skyband K] [--rows] [--trace out.jsonl]
  skyline bench    <input.csv> [--sigma N] [--threads T] [--trace out.jsonl]
  skyline report   <trace.jsonl> [--stages]
  skyline generate --dist UI|CO|AC -n N -d D [--seed S] [-o out.csv]
  skyline stats    <input.csv>
  skyline tune     <input.csv> [--sample N]
  skyline serve    [--port P] [--bind ADDR] [--threads T] [--cache N] [--trace out.jsonl]
                   [--data-dir DIR] [--fsync always|never|interval[=MS]] [--max-inflight N]
                   [--slow-ms MS] [--slow-log out.jsonl] [--follow ADDR]
                   [--follow-wait-ms MS] [--feed-retain N] [--compact-bytes N]
  skyline cluster  (--shards ADDR,ADDR,... | --spawn-local N) [--port P] [--bind ADDR]
                   [--threads T] [--manifest PATH] [--trace out.jsonl]
                   [--slow-ms MS] [--slow-log out.jsonl] [--shard-reuse]
                   [--replicas S=ADDR,...] [--replica-staleness V]
                   [--failover] [--probe-ms MS] [--suspect-misses N]
  skyline algorithms

parallel: --threads T runs the multi-core partition-merge engine (T=0 =
one worker per CPU); bench adds the P-* rows to the table.

tracing: --trace PATH (or env SKYLINE_TRACE=PATH) writes JSON-lines
telemetry; `skyline report` renders a trace file as tables, and
`skyline report --stages` the per-stage latency breakdown. Serving:
--slow-ms MS logs the stitched stage breakdown of any query at or over
the threshold (to --slow-log PATH, or the trace sink).";

/// Write one line to `out`, treating a closed pipe (e.g. `| head`) as a
/// polite request to stop rather than an error. Returns `false` when the
/// consumer has gone away.
fn write_line(out: &mut dyn std::io::Write, line: std::fmt::Arguments<'_>) -> Result<bool, String> {
    match out.write_fmt(line).and_then(|()| out.write_all(b"\n")) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
        Err(e) => Err(e.to_string()),
    }
}

/// Forward an I/O result, treating a broken pipe as success.
fn pipe_ok(r: std::io::Result<()>) -> Result<(), String> {
    match r {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(e.to_string()),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("compute") => compute(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("report") => report(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("tune") => tune(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("cluster") => cluster(&args[1..]),
        Some("algorithms") => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for algo in all_algorithms() {
                if !write_line(&mut out, format_args!("{}", algo.name()))? {
                    break;
                }
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_string()),
    }
}

/// Pull the value following a flag out of the argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("flag {flag} requires a value")),
    }
}

/// Open the JSON-lines trace sink selected by `--trace <path>` or, when
/// the flag is absent, the `SKYLINE_TRACE` environment variable.
fn open_trace(args: &[String]) -> Result<Option<JsonlRecorder<File>>, String> {
    let from_env = std::env::var("SKYLINE_TRACE")
        .ok()
        .filter(|p| !p.is_empty());
    let path = match flag_value(args, "--trace")? {
        Some(p) => Some(p.to_string()),
        None => from_env,
    };
    match path {
        None => Ok(None),
        Some(p) => JsonlRecorder::create(std::path::Path::new(&p))
            .map(Some)
            .map_err(|e| format!("--trace {p}: {e}")),
    }
}

/// Flush and close a trace sink, surfacing any write errors it swallowed.
fn finish_trace(trace: Option<JsonlRecorder<File>>) -> Result<(), String> {
    match trace {
        None => Ok(()),
        Some(rec) => {
            let errors = rec.io_errors();
            rec.into_inner().map_err(|e| format!("trace: {e}"))?;
            if errors > 0 {
                Err(format!("trace: {errors} records failed to write"))
            } else {
                Ok(())
            }
        }
    }
}

/// Run an algorithm, tracing into `rec` when a sink is open.
fn run_maybe_traced(
    algo: &dyn SkylineAlgorithm,
    data: &Dataset,
    rec: &mut Option<JsonlRecorder<File>>,
) -> RunMeasurement {
    match rec {
        Some(rec) => algo.run_traced(data, rec),
        None => algo.run(data),
    }
}

fn parse_sigma(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--sigma")? {
        None => Ok(None),
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| format!("--sigma expects an integer, got {v:?}")),
    }
}

/// `--threads T` selects the parallel engines; `T == 0` means one worker
/// per available CPU. `None` (flag absent) keeps the sequential path.
fn parse_threads(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--threads")? {
        None => Ok(None),
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| format!("--threads expects an integer, got {v:?}")),
    }
}

fn load(path: &str, args: &[String]) -> Result<Dataset, String> {
    let mut data = read_csv_file(path).map_err(|e| format!("{path}: {e}"))?;
    if let Some(spec) = flag_value(args, "--prefs")? {
        let prefs: Result<Vec<Preference>, String> = spec
            .split(',')
            .map(|s| match s.trim().to_ascii_uppercase().as_str() {
                "MIN" => Ok(Preference::Min),
                "MAX" => Ok(Preference::Max),
                other => Err(format!("--prefs entries must be MIN or MAX, got {other:?}")),
            })
            .collect();
        let prefs = prefs?;
        if prefs.len() != data.dims() {
            return Err(format!(
                "--prefs has {} entries but the dataset has {} dimensions",
                prefs.len(),
                data.dims()
            ));
        }
        let mut flat = data.as_flat().to_vec();
        apply_preferences(&mut flat, &prefs);
        data = Dataset::from_flat(flat, prefs.len()).map_err(|e| e.to_string())?;
    }
    Ok(data)
}

fn compute(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("compute requires an input file")?;
    let data = load(path, args)?;

    // k-skyband mode bypasses the algorithm registry — but an unknown
    // --algo must still fail loudly instead of being silently ignored.
    if let Some(k) = flag_value(args, "--skyband")? {
        if let Some(name) = flag_value(args, "--algo")? {
            if algorithm_by_name(name).is_none() {
                return Err(format!("unknown algorithm {name:?}"));
            }
        }
        let k: usize = k.parse().map_err(|_| "--skyband expects an integer")?;
        let mut metrics = skyline_core::metrics::Metrics::new();
        let band = skyline_algos::skyband::k_skyband(&data, k, &mut metrics);
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for b in &band {
            if !write_line(&mut out, format_args!("{},{}", b.id, b.dominators))? {
                return Ok(());
            }
        }
        eprintln!(
            "{k}-skyband: {} of {} points | mean DT {:.4}",
            band.len(),
            data.len(),
            metrics.mean_dominance_tests(data.len())
        );
        return Ok(());
    }

    let algo: Box<dyn SkylineAlgorithm> = match (flag_value(args, "--algo")?, parse_threads(args)?)
    {
        (None, None) => Box::new(skyline_algos::boosted::SdiSubset::new(parse_sigma(args)?)),
        (None, Some(threads)) => Box::new(skyline_algos::parallel::ParallelBoosted::new(
            skyline_algos::boosted::SdiSubset::new(parse_sigma(args)?),
            threads,
        )),
        (Some(name), None) => {
            algorithm_by_name(name).ok_or_else(|| format!("unknown algorithm {name:?}"))?
        }
        (Some(name), Some(threads)) => parallel_algorithm(name, parse_sigma(args)?, threads)
            .ok_or_else(|| {
                format!("no parallel engine for {name:?} (see `skyline algorithms` for P-* names)")
            })?,
    };
    let mut trace = open_trace(args)?;
    let result = run_maybe_traced(algo.as_ref(), &data, &mut trace);
    finish_trace(trace)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.iter().any(|a| a == "--rows") {
        let rows = data.project(&result.skyline);
        pipe_ok(write_csv(&mut out, &rows))?;
    } else {
        for id in &result.skyline {
            if !write_line(&mut out, format_args!("{id}"))? {
                break;
            }
        }
    }
    eprintln!(
        "{}: {} skyline points of {} | mean DT {:.4} | {:.3} ms",
        algo.name(),
        result.skyline.len(),
        data.len(),
        result.mean_dominance_tests(),
        result.elapsed_ms()
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("stats requires an input file")?;
    let data = load(path, args)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    write_line(&mut out, format_args!("points:        {}", data.len()))?;
    write_line(&mut out, format_args!("dimensions:    {}", data.dims()))?;
    write_line(
        &mut out,
        format_args!(
            "mean pairwise correlation: {:+.4}",
            skyline_data::stats::mean_pairwise_correlation(&data)
        ),
    )?;
    write_line(
        &mut out,
        format_args!(
            "{:<6} {:>14} {:>14} {:>10}",
            "dim", "min", "max", "distinct"
        ),
    )?;
    for (d, (lo, hi)) in skyline_data::stats::ranges(&data).into_iter().enumerate() {
        if !write_line(
            &mut out,
            format_args!(
                "{:<6} {:>14.6} {:>14.6} {:>10}",
                d,
                lo,
                hi,
                skyline_data::stats::distinct_values(&data, d)
            ),
        )? {
            break;
        }
    }
    Ok(())
}

fn tune(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("tune requires an input file")?;
    let data = load(path, args)?;
    let sample_size = match flag_value(args, "--sample")? {
        None => skyline_core::tuner::TunerConfig::default().sample_size,
        Some(v) => v.parse().map_err(|_| "--sample expects an integer")?,
    };
    let config = skyline_core::tuner::TunerConfig {
        sample_size,
        ..Default::default()
    };
    let report = skyline_core::tuner::tune_sigma(&data, &config);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    write_line(
        &mut out,
        format_args!(
            "recommended sigma: {} (paper default round(d/3) = {})",
            report.sigma,
            ((data.dims() as f64) / 3.0).round().max(2.0) as usize
        ),
    )?;
    if !report.trials.is_empty() {
        write_line(
            &mut out,
            format_args!("sample size: {}", report.sample_size),
        )?;
        write_line(
            &mut out,
            format_args!(
                "{:<6} {:>14} {:>12} {:>12} {:>8}",
                "sigma", "cost", "DTs", "nodes", "pivots"
            ),
        )?;
        for t in &report.trials {
            if !write_line(
                &mut out,
                format_args!(
                    "{:<6} {:>14.1} {:>12} {:>12} {:>8}",
                    t.sigma, t.cost, t.dominance_tests, t.nodes_visited, t.pivots
                ),
            )? {
                break;
            }
        }
    }
    Ok(())
}

fn bench(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("bench requires an input file")?;
    let data = load(path, args)?;
    let sigma = parse_sigma(args)?;
    let mut suite = evaluation_suite(sigma);
    if let Some(threads) = parse_threads(args)? {
        suite.extend(parallel_suite(sigma, threads));
    }
    let mut trace = open_trace(args)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    write_line(
        &mut out,
        format_args!(
            "{:<14} {:>12} {:>12} {:>10}",
            "algorithm", "mean DT", "time (ms)", "skyline"
        ),
    )?;
    for algo in suite {
        let r = run_maybe_traced(algo.as_ref(), &data, &mut trace);
        if !write_line(
            &mut out,
            format_args!(
                "{:<14} {:>12.4} {:>12.3} {:>10}",
                algo.name(),
                r.mean_dominance_tests(),
                r.elapsed_ms(),
                r.skyline.len()
            ),
        )? {
            break;
        }
    }
    finish_trace(trace)?;
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let port: u16 = match flag_value(args, "--port")? {
        None => 0, // ephemeral: the resolved port is printed below
        Some(v) => v.parse().map_err(|_| "--port expects a port number")?,
    };
    let bind = flag_value(args, "--bind")?.unwrap_or("127.0.0.1");
    let threads = parse_threads(args)?.unwrap_or(4).max(1);
    let cache_capacity: usize = match flag_value(args, "--cache")? {
        None => 256,
        Some(v) => v.parse().map_err(|_| "--cache expects an entry count")?,
    };
    let trace = match flag_value(args, "--trace")? {
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => std::env::var("SKYLINE_TRACE")
            .ok()
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from),
    };
    let data_dir = flag_value(args, "--data-dir")?.map(std::path::PathBuf::from);
    let fsync = match flag_value(args, "--fsync")? {
        None => skyline_serve::wal::FsyncPolicy::default(),
        Some(v) => v
            .parse()
            .map_err(|_| "--fsync expects always, never, interval, or interval=<ms>")?,
    };
    let max_inflight: usize = match flag_value(args, "--max-inflight")? {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| "--max-inflight expects a query count (0 = unlimited)")?,
    };
    let follow: Option<std::net::SocketAddr> = match flag_value(args, "--follow")? {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| "--follow expects the primary's host:port")?,
        ),
    };
    let follow_wait_ms: u64 = match flag_value(args, "--follow-wait-ms")? {
        None => 1000,
        Some(v) => v
            .parse()
            .map_err(|_| "--follow-wait-ms expects milliseconds")?,
    };
    let feed_retain: usize = match flag_value(args, "--feed-retain")? {
        None => skyline_serve::registry::DEFAULT_FEED_RETAIN,
        Some(v) => v
            .parse()
            .map_err(|_| "--feed-retain expects a record count")?,
    };
    let compact_bytes: u64 = match flag_value(args, "--compact-bytes")? {
        None => 1 << 20,
        Some(v) => v
            .parse()
            .map_err(|_| "--compact-bytes expects a byte count")?,
    };
    let (slow_ms, slow_log) = parse_slow_flags(args)?;
    let config = skyline_serve::ServerConfig {
        bind: format!("{bind}:{port}"),
        threads,
        cache_capacity,
        trace,
        data_dir,
        fsync,
        max_inflight,
        slow_ms,
        slow_log,
        follow,
        follow_wait_ms,
        feed_retain,
        compact_bytes,
        ..Default::default()
    };
    let mut handle = skyline_serve::Server::start(config).map_err(|e| format!("serve: {e}"))?;
    // Scripts parse this line for the resolved ephemeral port.
    println!("listening on {}", handle.local_addr());
    pipe_ok(std::io::Write::flush(&mut std::io::stdout()))?;
    handle.wait();
    eprintln!("server stopped");
    Ok(())
}

/// `skyline cluster` — start the sharded coordinator. Shards come from
/// `--shards host:port,...` (already-running `skyline serve` nodes),
/// `--spawn-local N` (N in-process shard servers on ephemeral ports —
/// the one-command demo and test topology), or both combined.
fn cluster(args: &[String]) -> Result<(), String> {
    let port: u16 = match flag_value(args, "--port")? {
        None => 0,
        Some(v) => v.parse().map_err(|_| "--port expects a port number")?,
    };
    let bind = flag_value(args, "--bind")?.unwrap_or("127.0.0.1");
    let threads = parse_threads(args)?.unwrap_or(4).max(1);
    let trace = match flag_value(args, "--trace")? {
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => std::env::var("SKYLINE_TRACE")
            .ok()
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from),
    };
    let manifest = flag_value(args, "--manifest")?.map(std::path::PathBuf::from);

    let mut shards: Vec<std::net::SocketAddr> = Vec::new();
    if let Some(list) = flag_value(args, "--shards")? {
        for part in list.split(',').filter(|p| !p.is_empty()) {
            shards.push(
                part.trim()
                    .parse()
                    .map_err(|_| format!("--shards entry {part:?} is not host:port"))?,
            );
        }
    }
    // Local shards keep their handles alive for the coordinator's
    // lifetime; dropping them at exit shuts the shard servers down.
    let mut local_shards: Vec<skyline_serve::ServerHandle> = Vec::new();
    if let Some(n) = flag_value(args, "--spawn-local")? {
        let n: usize = n.parse().map_err(|_| "--spawn-local expects a count")?;
        for _ in 0..n {
            let handle = skyline_serve::Server::start(skyline_serve::ServerConfig {
                threads,
                ..Default::default()
            })
            .map_err(|e| format!("spawn-local shard: {e}"))?;
            println!("shard listening on {}", handle.local_addr());
            shards.push(handle.local_addr());
            local_shards.push(handle);
        }
    }
    if shards.is_empty() {
        return Err("cluster needs --shards and/or --spawn-local".to_string());
    }

    // `--replicas 0=host:port,1=host:port,...` — read replicas keyed
    // by shard index; a shard may appear more than once.
    let mut replicas: Vec<Vec<std::net::SocketAddr>> = vec![Vec::new(); shards.len()];
    let mut have_replicas = false;
    if let Some(list) = flag_value(args, "--replicas")? {
        for part in list.split(',').filter(|p| !p.is_empty()) {
            let (idx, addr) = part
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("--replicas entry {part:?} is not SHARD=host:port"))?;
            let idx: usize = idx
                .parse()
                .map_err(|_| format!("--replicas shard index {idx:?} is not a number"))?;
            if idx >= shards.len() {
                return Err(format!(
                    "--replicas names shard {idx}, the cluster has {}",
                    shards.len()
                ));
            }
            replicas[idx].push(
                addr.parse()
                    .map_err(|_| format!("--replicas address {addr:?} is not host:port"))?,
            );
            have_replicas = true;
        }
    }
    let replica_staleness: u64 = match flag_value(args, "--replica-staleness")? {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| "--replica-staleness expects a version count")?,
    };
    let failover = args.iter().any(|a| a == "--failover");
    let probe_ms: u64 = match flag_value(args, "--probe-ms")? {
        None => 500,
        Some(v) => v.parse().map_err(|_| "--probe-ms expects milliseconds")?,
    };
    let suspect_misses: u32 = match flag_value(args, "--suspect-misses")? {
        None => 3,
        Some(v) => v
            .parse()
            .map_err(|_| "--suspect-misses expects a probe count")?,
    };
    let (slow_ms, slow_log) = parse_slow_flags(args)?;
    let config = skyline_cluster::ClusterConfig {
        bind: format!("{bind}:{port}"),
        threads,
        trace,
        manifest,
        slow_ms,
        slow_log,
        shard_reuse: args.iter().any(|a| a == "--shard-reuse"),
        replicas: if have_replicas { replicas } else { Vec::new() },
        replica_staleness,
        failover,
        probe_ms,
        suspect_misses,
        ..skyline_cluster::ClusterConfig::new(shards)
    };
    let mut handle =
        skyline_cluster::Cluster::start(config).map_err(|e| format!("cluster: {e}"))?;
    // Scripts parse this line for the resolved ephemeral port.
    println!("listening on {}", handle.local_addr());
    pipe_ok(std::io::Write::flush(&mut std::io::stdout()))?;
    handle.wait();
    for mut shard in local_shards {
        shard.shutdown();
    }
    eprintln!("cluster stopped");
    Ok(())
}

/// `--slow-ms MS` / `--slow-log PATH` shared by `serve` and `cluster`.
fn parse_slow_flags(args: &[String]) -> Result<(u64, Option<std::path::PathBuf>), String> {
    let slow_ms: u64 = match flag_value(args, "--slow-ms")? {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| "--slow-ms expects milliseconds (0 = disabled)")?,
    };
    let slow_log = flag_value(args, "--slow-log")?.map(std::path::PathBuf::from);
    if slow_ms == 0 && slow_log.is_some() {
        return Err("--slow-log needs --slow-ms to set the threshold".to_string());
    }
    Ok((slow_ms, slow_log))
}

fn report(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("report requires a trace file")?;
    let summary =
        TraceSummary::from_file(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let rendered = if args.iter().any(|a| a == "--stages") {
        summary.render_stages()
    } else {
        summary.render()
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    pipe_ok(std::io::Write::write_all(&mut out, rendered.as_bytes()))?;
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let dist = flag_value(args, "--dist")?
        .ok_or_else(|| "generate requires --dist UI|CO|AC".to_string())
        .and_then(|t| {
            Distribution::from_tag(t).ok_or_else(|| "--dist must be UI, CO or AC".to_string())
        })?;
    let n: usize = flag_value(args, "-n")?
        .ok_or("generate requires -n <cardinality>")?
        .parse()
        .map_err(|_| "-n expects an integer")?;
    let d: usize = flag_value(args, "-d")?
        .ok_or("generate requires -d <dims>")?
        .parse()
        .map_err(|_| "-d expects an integer")?;
    let seed: u64 = match flag_value(args, "--seed")? {
        None => 42,
        Some(s) => s.parse().map_err(|_| "--seed expects an integer")?,
    };
    let data = SyntheticSpec {
        distribution: dist,
        cardinality: n,
        dims: d,
        seed,
    }
    .generate();
    match flag_value(args, "-o")? {
        Some(path) => write_csv_file(path, &data).map_err(|e| e.to_string())?,
        None => {
            let stdout = std::io::stdout();
            pipe_ok(write_csv(stdout.lock(), &data))?;
        }
    }
    Ok(())
}

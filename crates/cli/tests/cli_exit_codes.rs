//! Exit-code regression tests for the `skyline` binary.
//!
//! `compute --skyband K` bypasses the algorithm registry, and an early
//! version returned exit 0 even when `--algo` named a nonexistent
//! algorithm. Unknown names must fail loudly on every path.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skyline"))
}

/// Write a tiny CSV fixture and return its path.
fn fixture(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("skyline-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, "1.0,5.0\n5.0,1.0\n6.0,6.0\n").expect("write fixture");
    path
}

#[test]
fn unknown_algo_fails_in_skyband_mode() {
    let csv = fixture("skyband.csv");
    let out = bin()
        .args([
            "compute",
            csv.to_str().unwrap(),
            "--algo",
            "definitely-not-an-algorithm",
            "--skyband",
            "2",
        ])
        .output()
        .expect("run skyline");
    assert!(
        !out.status.success(),
        "unknown --algo with --skyband must fail, got exit 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"),
        "stderr names the problem: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_algo_fails_in_compute_mode() {
    let csv = fixture("compute.csv");
    let out = bin()
        .args(["compute", csv.to_str().unwrap(), "--algo", "bogus"])
        .output()
        .expect("run skyline");
    assert!(!out.status.success());
}

#[test]
fn valid_invocations_still_exit_zero() {
    let csv = fixture("ok.csv");
    for extra in [vec!["--algo", "SFS"], vec!["--skyband", "2"]] {
        let mut args = vec!["compute", csv.to_str().unwrap()];
        args.extend(extra.iter());
        let out = bin().args(&args).output().expect("run skyline");
        assert!(
            out.status.success(),
            "{args:?} should succeed; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("run skyline");
    assert!(!out.status.success());
}

//! In-tree stand-in for the [`criterion`](https://docs.rs/criterion)
//! bench harness.
//!
//! The workspace builds **offline**, so the real criterion cannot be
//! fetched. This shim keeps every `benches/*.rs` target compiling and
//! runnable (`cargo bench --features criterion-benches`) with the same
//! source: `Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the two declaration macros.
//!
//! Measurement is intentionally simple — per benchmark it warms up, picks
//! an iteration count that fills a sample, then reports the median and
//! min/max of the per-iteration time over a fixed number of samples.
//! There is no statistical outlier analysis, plotting, or baseline
//! comparison; numbers are for coarse tracking, not criterion-grade
//! confidence intervals. When invoked by `cargo test` (`--test` flag),
//! every benchmark body runs exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier — stops the optimiser from deleting benchmark
/// bodies. Re-exported name matches criterion's.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark name is expected (string or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    config: MeasureConfig,
    /// Filled by [`Bencher::iter`]: (median, min, max) per-iteration time.
    result: Option<(Duration, Duration, Duration)>,
}

#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Bencher {
    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            black_box(routine());
            self.result = Some((Duration::ZERO, Duration::ZERO, Duration::ZERO));
            return;
        }
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Iterations per sample so that all samples fit the measurement
        // budget.
        let budget_ns = self.config.measurement_time.as_nanos();
        let per_sample_ns = budget_ns / self.config.sample_size.max(1) as u128;
        let iters = (per_sample_ns / per_iter.max(1)).clamp(1, u128::from(u32::MAX)) as u64;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.config.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters as u32);
            if measure_start.elapsed() > self.config.measurement_time * 2 {
                break; // runaway routine: keep the harness responsive
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = *samples.last().expect("at least one sample");
        self.result = Some((median, min, max));
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The harness entry point; collects configuration and runs benchmarks.
#[derive(Default)]
pub struct Criterion {
    config: MeasureConfig,
    filter: Option<String>,
}

impl Criterion {
    /// Build from command-line arguments (supports the `--test` flag cargo
    /// passes on `cargo test`, and a positional substring filter).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.config.test_mode = true,
                // Flags cargo or users may pass that the shim ignores.
                "--bench" | "--quiet" | "-q" | "--verbose" | "--noplot" => {}
                other if !other.starts_with('-') => c.filter = Some(other.to_string()),
                _ => {}
            }
        }
        c
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: MeasureConfig::default(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let config = self.config;
        self.run_one(&id.into_id(), config, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut config: MeasureConfig, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        config.test_mode = self.config.test_mode;
        let mut bencher = Bencher {
            config,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            _ if config.test_mode => println!("{id}: ok (test mode)"),
            Some((median, min, max)) => println!(
                "{id:<48} time: [{} {} {}]",
                format_duration(min),
                format_duration(median),
                format_duration(max)
            ),
            None => println!("{id}: no measurement recorded"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: MeasureConfig,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.config, f);
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.config, |b| f(b, input));
    }

    /// End the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("algo", 8).id, "algo/8");
        assert_eq!(BenchmarkId::from_parameter("UI").id, "UI");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut calls = 0u64;
        let mut b = Bencher {
            config: MeasureConfig {
                test_mode: true,
                ..MeasureConfig::default()
            },
            result: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.result.is_some());
    }

    #[test]
    fn measurement_produces_ordered_stats() {
        let mut b = Bencher {
            config: MeasureConfig {
                warm_up_time: Duration::from_millis(5),
                measurement_time: Duration::from_millis(20),
                sample_size: 5,
                test_mode: false,
            },
            result: None,
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        let (median, min, max) = b.result.expect("measured");
        assert!(min <= median && median <= max);
    }

    #[test]
    fn groups_respect_filters() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            ..Criterion::default()
        };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("case", |_b| ran = true);
        group.finish();
        assert!(!ran, "filtered-out benchmark must not run");
    }

    #[test]
    fn duration_formatting_bands() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.000 µs");
        assert_eq!(format_duration(Duration::from_millis(40)), "40.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}

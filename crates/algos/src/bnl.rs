//! BNL — *block-nested-loops* (Börzsönyi, Kossmann & Stocker, ICDE 2001).
//!
//! The classic windowed nested loop, here with the window held fully in
//! memory (the paper's experiments are all in-memory too): every point is
//! compared against the current window; dominated points are dropped,
//! window points dominated by the new point are evicted, and surviving
//! points enter the window. With an unbounded in-memory window a single
//! pass suffices and the final window *is* the skyline.
//!
//! BNL makes no assumptions about ordering and is the simplest correct
//! algorithm in the crate — the integration suite uses it as the oracle.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominance, DomRelation};
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;

use crate::SkylineAlgorithm;

/// Block-nested-loops skyline (in-memory window).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bnl;

impl SkylineAlgorithm for Bnl {
    fn name(&self) -> &str {
        "BNL"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let mut window: Vec<PointId> = Vec::new();
        for (id, p) in data.iter() {
            let mut dominated = false;
            let mut i = 0;
            while i < window.len() {
                let w = data.point(window[i]);
                metrics.count_dt();
                match dominance(w, p) {
                    DomRelation::Dominates => {
                        dominated = true;
                        break;
                    }
                    DomRelation::DominatedBy => {
                        // Evict the dominated window point; do not advance,
                        // swap_remove moved a new occupant into slot i.
                        window.swap_remove(i);
                    }
                    DomRelation::Equal | DomRelation::Incomparable => {
                        i += 1;
                    }
                }
            }
            if !dominated {
                window.push(id);
            }
        }
        window.sort_unstable();
        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_skyline() {
        let data = Dataset::from_rows(&[
            [1.0, 9.0],
            [2.0, 7.0],
            [3.0, 8.0], // dominated by [2,7]
            [9.0, 1.0],
            [5.0, 5.0],
        ])
        .unwrap();
        let mut m = Metrics::new();
        assert_eq!(Bnl.compute_with_metrics(&data, &mut m), vec![0, 1, 3, 4]);
    }

    #[test]
    fn eviction_path() {
        // A later point dominates several earlier window entries at once.
        let data = Dataset::from_rows(&[
            [5.0, 5.0],
            [6.0, 4.0],
            [4.0, 6.0],
            [1.0, 1.0], // dominates all of the above
        ])
        .unwrap();
        assert_eq!(Bnl.compute(&data), vec![3]);
    }

    #[test]
    fn duplicates_survive() {
        let data = Dataset::from_rows(&[[2.0, 2.0], [2.0, 2.0], [3.0, 3.0]]).unwrap();
        assert_eq!(Bnl.compute(&data), vec![0, 1]);
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(vec![], 3).unwrap();
        assert!(Bnl.compute(&data).is_empty());
    }

    #[test]
    fn all_incomparable() {
        let data = Dataset::from_rows(&[[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]]).unwrap();
        assert_eq!(Bnl.compute(&data), vec![0, 1, 2]);
    }

    #[test]
    fn one_dimension_keeps_all_minima() {
        let data = Dataset::from_rows(&[[2.0], [1.0], [1.0], [3.0]]).unwrap();
        assert_eq!(Bnl.compute(&data), vec![1, 2]);
    }
}

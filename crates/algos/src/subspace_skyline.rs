//! Subspace skylines and the skycube.
//!
//! A *subspace skyline* is the skyline of the dataset projected onto a
//! subset of its dimensions (Pei et al., VLDB 2005; Section 1 of the
//! subset paper uses the same notion of subspace). The *skycube* (Pei et
//! al., TODS 2006) is the collection of subspace skylines for every
//! non-empty subspace — `2^d - 1` of them.
//!
//! Note that subspace skylines are **not** subsets of the full-space
//! skyline: a point dominated in full space can be optimal in a subspace
//! where its dominator ties with it. These helpers therefore recompute
//! each subspace from the projection, sharing one configurable base
//! algorithm; the skycube enumerates subspaces bottom-up.

use std::collections::HashMap;

use skyline_core::dataset::Dataset;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::subspace::Subspace;

use crate::{salsa::SaLSa, SkylineAlgorithm};

/// Compute the skyline of `data` restricted to `subspace`, using `algo`.
///
/// # Panics
///
/// Panics if the subspace is empty or out of range for the dataset.
pub fn subspace_skyline(
    data: &Dataset,
    subspace: Subspace,
    algo: &dyn SkylineAlgorithm,
    metrics: &mut Metrics,
) -> Vec<PointId> {
    let projected = data.project_dims(subspace);
    algo.compute_with_metrics(&projected, metrics)
}

/// Hard cap on skycube dimensionality: `2^d - 1` subspace skylines get
/// impractical quickly.
pub const MAX_SKYCUBE_DIMS: usize = 16;

/// The skycube: one skyline per non-empty subspace.
#[derive(Debug, Clone)]
pub struct Skycube {
    dims: usize,
    cuboids: HashMap<Subspace, Vec<PointId>>,
}

impl Skycube {
    /// Compute the full skycube of `data` with the given base algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `data.dims() > MAX_SKYCUBE_DIMS` (the result would have
    /// more than 65,535 cuboids) or if the dataset has zero dimensions.
    pub fn compute(data: &Dataset, algo: &dyn SkylineAlgorithm, metrics: &mut Metrics) -> Skycube {
        let d = data.dims();
        assert!(d >= 1, "skycube of a zero-dimensional dataset");
        assert!(
            d <= MAX_SKYCUBE_DIMS,
            "skycube over {d} dimensions would have 2^{d} - 1 cuboids; \
             the supported maximum is {MAX_SKYCUBE_DIMS}"
        );
        let mut cuboids = HashMap::with_capacity((1usize << d) - 1);
        for bits in 1..(1u64 << d) {
            let sub = Subspace::from_bits(bits);
            cuboids.insert(sub, subspace_skyline(data, sub, algo, metrics));
        }
        Skycube { dims: d, cuboids }
    }

    /// As [`Skycube::compute`] with the default base algorithm (SaLSa).
    pub fn with_default_algorithm(data: &Dataset, metrics: &mut Metrics) -> Skycube {
        Skycube::compute(data, &SaLSa, metrics)
    }

    /// Dimensionality of the cube.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of cuboids (`2^d - 1`).
    pub fn len(&self) -> usize {
        self.cuboids.len()
    }

    /// Whether the cube has no cuboids (never true after `compute`).
    pub fn is_empty(&self) -> bool {
        self.cuboids.is_empty()
    }

    /// The skyline of one subspace, if it is part of this cube.
    pub fn skyline(&self, subspace: Subspace) -> Option<&[PointId]> {
        self.cuboids.get(&subspace).map(Vec::as_slice)
    }

    /// Iterate over `(subspace, skyline)` pairs in ascending bit order.
    pub fn iter(&self) -> impl Iterator<Item = (Subspace, &[PointId])> {
        let mut keys: Vec<Subspace> = self.cuboids.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(move |k| (k, self.cuboids[&k].as_slice()))
    }

    /// Ids that appear in at least one cuboid — the points worth keeping
    /// if any subspace query may be asked later.
    pub fn union_of_cuboids(&self) -> Vec<PointId> {
        let mut all: Vec<PointId> = self.cuboids.values().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    fn data() -> Dataset {
        Dataset::from_rows(&[
            [1.0, 4.0, 2.0],
            [2.0, 3.0, 2.0],
            [3.0, 1.0, 3.0],
            [4.0, 4.0, 1.0],
            [4.0, 5.0, 5.0], // dominated in full space
        ])
        .unwrap()
    }

    #[test]
    fn single_dimension_subspace() {
        let ds = data();
        let mut m = Metrics::new();
        let sky = subspace_skyline(&ds, Subspace::singleton(0), &Bnl, &mut m);
        assert_eq!(sky, vec![0], "min of dim 0");
        let sky2 = subspace_skyline(&ds, Subspace::singleton(2), &Bnl, &mut m);
        assert_eq!(sky2, vec![3], "min of dim 2");
    }

    #[test]
    fn full_space_subspace_equals_plain_skyline() {
        let ds = data();
        let mut m = Metrics::new();
        let sky = subspace_skyline(&ds, Subspace::full(3), &Bnl, &mut m);
        assert_eq!(sky, Bnl.compute(&ds));
    }

    #[test]
    fn subspace_skyline_is_not_a_subset_of_full_skyline() {
        // The classic non-containment: ties in a subspace resurrect
        // points dominated in full space.
        let ds = Dataset::from_rows(&[
            [1.0, 1.0],
            [1.0, 2.0], // dominated in full space, ties on dim 0
        ])
        .unwrap();
        let mut m = Metrics::new();
        let full = Bnl.compute(&ds);
        assert_eq!(full, vec![0]);
        let sub = subspace_skyline(&ds, Subspace::singleton(0), &Bnl, &mut m);
        assert_eq!(sub, vec![0, 1], "both tie for the dim-0 minimum");
    }

    #[test]
    fn skycube_has_all_cuboids_and_matches_per_subspace_computation() {
        let ds = data();
        let mut m = Metrics::new();
        let cube = Skycube::with_default_algorithm(&ds, &mut m);
        assert_eq!(cube.len(), 7);
        assert_eq!(cube.dims(), 3);
        assert!(!cube.is_empty());
        for (sub, sky) in cube.iter() {
            let mut m2 = Metrics::new();
            assert_eq!(
                sky,
                subspace_skyline(&ds, sub, &Bnl, &mut m2).as_slice(),
                "cuboid {sub}"
            );
        }
    }

    #[test]
    fn skycube_lookup() {
        let ds = data();
        let mut m = Metrics::new();
        let cube = Skycube::with_default_algorithm(&ds, &mut m);
        assert!(cube.skyline(Subspace::full(3)).is_some());
        assert!(cube.skyline(Subspace::EMPTY).is_none());
        assert!(cube.skyline(Subspace::from_dims([5])).is_none());
    }

    #[test]
    fn union_of_cuboids_covers_every_cuboid() {
        let ds = data();
        let mut m = Metrics::new();
        let cube = Skycube::with_default_algorithm(&ds, &mut m);
        let union = cube.union_of_cuboids();
        for (_, sky) in cube.iter() {
            for id in sky {
                assert!(union.contains(id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "supported maximum")]
    fn skycube_dimensionality_guard() {
        let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64; 17]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let _ = Skycube::with_default_algorithm(&ds, &mut m);
    }
}

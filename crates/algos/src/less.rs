//! LESS — *linear elimination sort for skyline* (Godfrey, Shipley & Gryz,
//! VLDB 2005).
//!
//! LESS extends SFS with an *elimination-filter (EF) window* applied during
//! pass zero of the external sort: a small window of highly dominating
//! points (those with the best scores seen so far) eliminates most of the
//! data before it is ever sorted. This implementation is the in-memory
//! adaptation — the external sort-merge machinery collapses to a plain
//! in-memory sort, but the EF pass, its window-replacement policy and the
//! dominance-test accounting are preserved, which is what the DT/RT
//! metrics measure.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominates, lex_cmp};
use skyline_core::metrics::Metrics;
use skyline_core::point::{coordinate_sum, PointId};

use crate::common::presorted_filter;
use crate::SkylineAlgorithm;

/// Default EF window size (points). Godfrey et al. found that a handful of
/// window entries eliminates almost as much as a large window.
pub const DEFAULT_EF_WINDOW: usize = 16;

/// LESS: elimination-filter pass + SFS scan.
#[derive(Debug, Clone, Copy)]
pub struct Less {
    /// Capacity of the elimination-filter window.
    pub ef_window: usize,
}

impl Default for Less {
    fn default() -> Self {
        Less {
            ef_window: DEFAULT_EF_WINDOW,
        }
    }
}

impl SkylineAlgorithm for Less {
    fn name(&self) -> &str {
        "LESS"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        // Pass zero: eliminate through the EF window. The window keeps the
        // `ef_window` points with the smallest sum score seen so far.
        let mut ef: Vec<(f64, PointId)> = Vec::with_capacity(self.ef_window.max(1));
        let mut survivors: Vec<(f64, PointId)> = Vec::new();
        'points: for (id, p) in data.iter() {
            for &(_, e) in &ef {
                metrics.count_dt();
                if dominates(data.point(e), p) {
                    continue 'points;
                }
            }
            let score = coordinate_sum(p);
            survivors.push((score, id));
            // Window replacement: admit the point if the window has room
            // or it beats the worst (largest-score) entry.
            if ef.len() < self.ef_window.max(1) {
                ef.push((score, id));
            } else if let Some(worst) = ef
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.0.total_cmp(&b.0))
                .map(|(i, _)| i)
            {
                if score < ef[worst].0 {
                    ef[worst] = (score, id);
                }
            }
        }

        // Sort survivors by the monotone score and run the SFS filter.
        // (EF survivors can still be dominated by points that entered the
        // window after them — the filter pass settles everything.)
        survivors.sort_unstable_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| lex_cmp(data.point(a.1), data.point(b.1)))
                .then(a.1.cmp(&b.1))
        });
        let order: Vec<PointId> = survivors.into_iter().map(|(_, id)| id).collect();
        let mut skyline = presorted_filter(data, &order, metrics);
        skyline.sort_unstable();
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    #[test]
    fn matches_bnl() {
        let data = Dataset::from_rows(&[
            [1.0, 9.0],
            [2.0, 7.0],
            [3.0, 8.0],
            [9.0, 1.0],
            [5.0, 5.0],
            [5.0, 5.0],
        ])
        .unwrap();
        assert_eq!(Less::default().compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn ef_window_eliminates_before_sort() {
        // A strong early point then a long dominated tail: the EF pass
        // should drop the tail with one test per point, and the filter
        // pass should see almost nothing.
        let mut rows = vec![[0.0, 0.0]];
        for i in 0..100 {
            rows.push([1.0 + i as f64, 1.0 + i as f64]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = Less::default().compute_with_metrics(&data, &mut m);
        assert_eq!(sky, vec![0]);
        // One EF test per tail point; nothing reaches the filter.
        assert_eq!(m.dominance_tests, 100);
    }

    #[test]
    fn tiny_window_still_correct() {
        let rows: Vec<[f64; 3]> = (0..50)
            .map(|i| {
                let x = (i as f64 * 0.37) % 1.0;
                let y = (i as f64 * 0.71) % 1.0;
                [x, y, ((x + y) * 0.5) % 1.0]
            })
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let small = Less { ef_window: 1 }.compute(&data);
        assert_eq!(small, Bnl.compute(&data));
    }

    #[test]
    fn zero_window_is_clamped() {
        let data = Dataset::from_rows(&[[1.0, 2.0], [2.0, 1.0]]).unwrap();
        let sky = Less { ef_window: 0 }.compute(&data);
        assert_eq!(sky, vec![0, 1]);
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(vec![], 2).unwrap();
        assert!(Less::default().compute(&data).is_empty());
    }
}

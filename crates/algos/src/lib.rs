//! # skyline-algos
//!
//! Reference implementations of every skyline algorithm the paper
//! evaluates or builds on, all instrumented with the paper's *dominance
//! test* counter:
//!
//! | Algorithm | Module | Class |
//! |---|---|---|
//! | BNL (Börzsönyi et al. 2001) | [`bnl`] | nested loop (oracle baseline) |
//! | SFS (Chomicki et al. 2003) | [`sfs`] | sorting-based |
//! | LESS (Godfrey et al. 2005) | [`less`] | sorting-based |
//! | SaLSa (Bartolini et al. 2006) | [`salsa`] | sorting-based, early stop |
//! | SDI (Liu & Li 2020) | [`sdi`] | sorting-based, dimension-indexed |
//! | D&C (Kung et al. 1975 / Börzsönyi) | [`dnc`] | partitioning-based |
//! | Index (Tan et al. 2001) | [`index_algo`] | sorted-lists, progressive |
//! | BBS (Papadias et al. 2003) over an STR R-tree | [`bbs`], [`rtree`] | branch-and-bound, progressive |
//! | BSkyTree-S / BSkyTree-P (Lee & Hwang 2010/2014) | [`bskytree`] | pivot-based state of the art |
//! | SFS-/SaLSa-/SDI-Subset (this paper) | [`boosted`] | subset-boosted |
//! | P-SFS | [`parallel`] | multi-core partition-merge |
//! | P-SFS-/P-SaLSa-/P-SDI-Subset | [`parallel`] | multi-core, subset-boosted per shard |
//!
//! Beyond plain skylines: [`skyband`] (k-skyband), [`subspace_skyline`]
//! (subspace skylines and the skycube) and [`query`] (a fluent builder
//! over all of it).
//!
//! Every implementation returns the identical skyline (ascending
//! [`PointId`]s, duplicates included) — the integration test suite checks
//! them against each other and against a brute-force oracle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bbs;
pub mod bnl;
pub mod boosted;
pub mod bskytree;
pub mod dnc;
pub mod index_algo;
pub mod less;
pub mod parallel;
pub mod query;
pub mod rtree;
pub mod salsa;
pub mod sdi;
pub mod sfs;
pub mod skyband;
pub mod subspace_skyline;

pub(crate) mod common;

use std::time::Instant;

use skyline_core::cancel::{CancelToken, Cancelled};
use skyline_core::dataset::Dataset;
use skyline_core::metrics::{Metrics, RunMeasurement};
use skyline_core::point::PointId;
use skyline_obs::{Event, Recorder};

/// A skyline algorithm: computes the complete set of non-dominated points.
///
/// Contract: the returned ids are ascending and the set is the exact
/// skyline under Definition 3.1 (duplicates of a skyline point are skyline
/// points themselves).
pub trait SkylineAlgorithm {
    /// Display name, matching the paper's tables (e.g. `"SaLSa-Subset"`).
    fn name(&self) -> &str;

    /// Compute the skyline, recording counters into `metrics`.
    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId>;

    /// Compute the skyline, discarding counters.
    fn compute(&self, data: &Dataset) -> Vec<PointId> {
        let mut metrics = Metrics::new();
        self.compute_with_metrics(data, &mut metrics)
    }

    /// Compute the skyline and measure dominance tests plus elapsed time —
    /// the two metrics of the paper's Section 6.
    fn run(&self, data: &Dataset) -> RunMeasurement {
        let mut metrics = Metrics::new();
        let start = Instant::now();
        let skyline = self.compute_with_metrics(data, &mut metrics);
        let elapsed = start.elapsed();
        RunMeasurement {
            skyline,
            metrics,
            elapsed,
            cardinality: data.len(),
        }
    }

    /// Compute the skyline with cooperative cancellation: return
    /// `Err(Cancelled)` once `cancel` fires instead of running to
    /// completion. The serving layer uses this for query deadlines.
    ///
    /// The default implementation checks the token once up front and then
    /// runs the plain computation — correct for every algorithm (an
    /// already-expired deadline is rejected before any work), with
    /// cancellation latency bounded by one full run. The subset-boosted
    /// and parallel engines override this with strided in-loop checks.
    fn compute_cancellable(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        cancel.check()?;
        Ok(self.compute_with_metrics(data, metrics))
    }

    /// Compute the skyline with tracing. The default forwards to
    /// [`SkylineAlgorithm::compute_with_metrics`] and ignores the
    /// recorder — algorithms with internal phases (the subset-boosted
    /// variants) override this to emit spans and per-phase events.
    fn compute_traced(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        _rec: &mut dyn Recorder,
    ) -> Vec<PointId> {
        self.compute_with_metrics(data, metrics)
    }

    /// [`SkylineAlgorithm::run`] with tracing: emits a `run_start` event,
    /// wraps the computation in a `"run"` span, then emits `trie_stats`
    /// (when the run touched the subset index) and a closing
    /// `run_summary`.
    fn run_traced(&self, data: &Dataset, rec: &mut dyn Recorder) -> RunMeasurement {
        let mut metrics = Metrics::new();
        if rec.enabled() {
            rec.event(Event::RunStart {
                algorithm: self.name().to_string(),
                points: data.len() as u64,
                dims: data.dims() as u64,
            });
        }
        rec.span_start("run");
        let start = Instant::now();
        let skyline = self.compute_traced(data, &mut metrics, rec);
        let elapsed = start.elapsed();
        rec.span_end("run");
        if rec.enabled() {
            if !metrics.trie_depth.is_empty() || !metrics.trie_candidates.is_empty() {
                rec.event(Event::TrieStats {
                    nodes: metrics.index_nodes_visited,
                    entries: metrics.container_puts,
                    depth: metrics.trie_depth,
                    candidates: metrics.trie_candidates,
                });
            }
            rec.event(Event::RunSummary {
                algorithm: self.name().to_string(),
                skyline_size: skyline.len() as u64,
                dominance_tests: metrics.dominance_tests,
                container_gets: metrics.container_gets,
                elapsed_us: elapsed.as_micros() as u64,
            });
        }
        RunMeasurement {
            skyline,
            metrics,
            elapsed,
            cardinality: data.len(),
        }
    }
}

/// All algorithms of the paper's evaluation (Section 6), in table order,
/// with their default configurations. Boosted variants use the paper's
/// recommended `σ = round(d/3)` unless `sigma` is given.
pub fn evaluation_suite(sigma: Option<usize>) -> Vec<Box<dyn SkylineAlgorithm>> {
    vec![
        Box::new(sfs::Sfs),
        Box::new(boosted::SfsSubset::new(sigma)),
        Box::new(salsa::SaLSa),
        Box::new(boosted::SalsaSubset::new(sigma)),
        Box::new(sdi::Sdi),
        Box::new(boosted::SdiSubset::new(sigma)),
        Box::new(bskytree::BSkyTreeS),
        Box::new(bskytree::BSkyTreeP::default()),
    ]
}

/// The multi-core engines: `P-SFS` plus the subset-boosted trio wrapped
/// in [`parallel::ParallelBoosted`]. `threads == 0` means one worker per
/// available CPU.
pub fn parallel_suite(sigma: Option<usize>, threads: usize) -> Vec<Box<dyn SkylineAlgorithm>> {
    vec![
        Box::new(parallel::ParallelSfs { threads }),
        Box::new(parallel::ParallelBoosted::new(
            boosted::SfsSubset::new(sigma),
            threads,
        )),
        Box::new(parallel::ParallelBoosted::new(
            boosted::SalsaSubset::new(sigma),
            threads,
        )),
        Box::new(parallel::ParallelBoosted::new(
            boosted::SdiSubset::new(sigma),
            threads,
        )),
    ]
}

/// Resolve a name to its parallel engine with the given worker count.
/// Accepts both the sequential name (`"SFS-Subset"`) and the prefixed
/// parallel one (`"P-SFS-Subset"`), case-insensitively.
pub fn parallel_algorithm(
    name: &str,
    sigma: Option<usize>,
    threads: usize,
) -> Option<Box<dyn SkylineAlgorithm>> {
    let base = name
        .strip_prefix("P-")
        .or_else(|| name.strip_prefix("p-"))
        .unwrap_or(name);
    parallel_suite(sigma, threads)
        .into_iter()
        .find(|a| a.name()["P-".len()..].eq_ignore_ascii_case(base))
}

/// Every algorithm in the crate (evaluation suite plus the classic
/// baselines and the parallel engines), with default configurations.
pub fn all_algorithms() -> Vec<Box<dyn SkylineAlgorithm>> {
    let mut v: Vec<Box<dyn SkylineAlgorithm>> = vec![
        Box::new(bnl::Bnl),
        Box::new(dnc::DivideAndConquer::default()),
        Box::new(less::Less::default()),
        Box::new(index_algo::IndexAlgo),
        Box::new(bbs::Bbs),
    ];
    v.extend(evaluation_suite(None));
    v.extend(parallel_suite(None, 0));
    v
}

/// Look an algorithm up by its display name (case-insensitive).
pub fn algorithm_by_name(name: &str) -> Option<Box<dyn SkylineAlgorithm>> {
    all_algorithms()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let algos = all_algorithms();
        let mut names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(algorithm_by_name("SFS").is_some());
        assert!(algorithm_by_name("salsa-subset").is_some());
        assert!(algorithm_by_name("BSkyTree-P").is_some());
        assert!(algorithm_by_name("p-sdi-subset").is_some());
        assert!(algorithm_by_name("nope").is_none());
    }

    #[test]
    fn parallel_lookup_accepts_both_name_forms() {
        for name in ["SFS-Subset", "P-SFS-Subset", "p-sfs-subset", "SFS", "P-SFS"] {
            let a = parallel_algorithm(name, None, 3).unwrap_or_else(|| panic!("{name}"));
            assert!(a.name().starts_with("P-"), "{name} -> {}", a.name());
        }
        assert!(parallel_algorithm("BNL", None, 2).is_none());
    }

    #[test]
    fn parallel_suite_names_mirror_the_sequential_ones() {
        let names: Vec<String> = parallel_suite(None, 2)
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["P-SFS", "P-SFS-Subset", "P-SaLSa-Subset", "P-SDI-Subset"]
        );
    }

    #[test]
    fn evaluation_suite_matches_table_layout() {
        let names: Vec<String> = evaluation_suite(None)
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "SFS",
                "SFS-Subset",
                "SaLSa",
                "SaLSa-Subset",
                "SDI",
                "SDI-Subset",
                "BSkyTree-S",
                "BSkyTree-P",
            ]
        );
    }

    #[test]
    fn every_algorithm_supports_cancellation() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                vec![
                    ((i * 7) % 13) as f64,
                    ((i * 11) % 17) as f64,
                    ((i * 5) % 19) as f64,
                ]
            })
            .collect();
        let data = skyline_core::dataset::Dataset::from_rows(&rows).unwrap();
        let expired = CancelToken::with_deadline(std::time::Duration::ZERO);
        for algo in all_algorithms() {
            let mut m = Metrics::new();
            assert!(
                algo.compute_cancellable(&data, &mut m, &expired).is_err(),
                "{} must reject an expired deadline",
                algo.name()
            );
            let mut m2 = Metrics::new();
            let sky = algo
                .compute_cancellable(&data, &mut m2, &CancelToken::none())
                .expect("none token never cancels");
            assert_eq!(sky, algo.compute(&data), "{}", algo.name());
        }
    }

    #[test]
    fn run_measures_time_and_counts() {
        let data = skyline_core::dataset::Dataset::from_rows(&[[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
            .unwrap();
        let m = bnl::Bnl.run(&data);
        assert_eq!(m.skyline, vec![0, 1]);
        assert!(m.metrics.dominance_tests > 0);
        assert_eq!(m.cardinality, 3);
    }
}

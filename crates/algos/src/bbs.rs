//! BBS — *branch-and-bound skyline* (Papadias, Tao, Fu & Seeger,
//! SIGMOD 2003 / TODS 2005): the optimal progressive algorithm over an
//! R-tree, and the classic representative of index-based
//! partitioning algorithms in the paper's related work.
//!
//! Entries (nodes and points) are popped from a min-heap ordered by the
//! monotone key `sum(lower corner)`. Because the key of any point is at
//! least the key of every node containing it, all of a point's
//! dominators are confirmed before the point itself pops — so a single
//! dominance check against the current skyline suffices, and whole
//! subtrees are pruned when their lower corner is dominated.
//!
//! Dominance-test accounting counts both point-vs-point tests and
//! point-vs-corner (MBR pruning) tests, as in the original paper's
//! analysis.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use skyline_core::dataset::Dataset;
use skyline_core::dominance::dominates;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;

use crate::rtree::{RNode, RTree};
use crate::SkylineAlgorithm;

#[derive(Debug)]
enum HeapItem {
    Node(usize),
    Point(PointId),
}

/// Min-heap entry (BinaryHeap is a max-heap, so the ordering is
/// reversed).
///
/// `tie` breaks rounding-equal keys lexicographically (the point's row,
/// or a node's lower corner): a dominator's row is lexicographically
/// smaller than its victim's, and a node's lower corner is
/// lexicographically ≤ any point inside it, so the "all dominators pop
/// first" invariant survives floating-point sum collisions. Nodes win
/// full ties against points so a containing subtree is expanded before
/// an identical-key point is confirmed.
#[derive(Debug)]
struct Entry {
    key: f64,
    tie: Vec<f64>,
    item: HeapItem,
}

impl Entry {
    fn kind_rank(&self) -> u8 {
        match self.item {
            HeapItem::Node(_) => 0,
            HeapItem::Point(_) => 1,
        }
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the smallest (key, tie, kind) pops first.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| skyline_core::dominance::lex_cmp(&other.tie, &self.tie))
            .then_with(|| other.kind_rank().cmp(&self.kind_rank()))
    }
}

/// Branch-and-bound skyline over a bulk-loaded R-tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bbs;

impl SkylineAlgorithm for Bbs {
    fn name(&self) -> &str {
        "BBS"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let tree = RTree::bulk_load(data);
        let Some(root) = tree.root() else {
            return Vec::new();
        };
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        let root_mbr = tree.root_mbr().expect("non-empty tree");
        heap.push(Entry {
            key: root_mbr.min_key(),
            tie: root_mbr.lo.clone(),
            item: HeapItem::Node(root),
        });

        let mut skyline: Vec<PointId> = Vec::new();
        while let Some(entry) = heap.pop() {
            match entry.item {
                HeapItem::Node(idx) => match tree.node(idx) {
                    RNode::Inner(children) => {
                        for (child, mbr) in children {
                            if !dominated_by_skyline(data, &skyline, &mbr.lo, metrics) {
                                heap.push(Entry {
                                    key: mbr.min_key(),
                                    tie: mbr.lo.clone(),
                                    item: HeapItem::Node(*child),
                                });
                            }
                        }
                    }
                    RNode::Leaf(ids) => {
                        for &id in ids {
                            let row = data.point(id);
                            if !dominated_by_skyline(data, &skyline, row, metrics) {
                                heap.push(Entry {
                                    key: row.iter().sum(),
                                    tie: row.to_vec(),
                                    item: HeapItem::Point(id),
                                });
                            }
                        }
                    }
                },
                HeapItem::Point(id) => {
                    // Points already confirmed since this entry was pushed
                    // may dominate it: re-check at pop time (the BBS
                    // "lazy" check).
                    if !dominated_by_skyline(data, &skyline, data.point(id), metrics) {
                        skyline.push(id);
                    }
                }
            }
        }
        skyline.sort_unstable();
        skyline
    }
}

/// Is the (virtual) point `corner` dominated by any confirmed skyline
/// point? Works for real points and MBR lower corners alike.
fn dominated_by_skyline(
    data: &Dataset,
    skyline: &[PointId],
    corner: &[f64],
    metrics: &mut Metrics,
) -> bool {
    for &s in skyline {
        metrics.count_dt();
        if dominates(data.point(s), corner) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 37 + k * 11) * 2654435761usize) % 797) as f64 / 797.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_oracle_across_shapes() {
        for &(n, d) in &[(50usize, 2usize), (300, 3), (800, 4), (400, 6)] {
            let data = pseudo_random_dataset(n, d);
            assert_eq!(Bbs.compute(&data), Bnl.compute(&data), "n={n} d={d}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::from_flat(vec![], 2).unwrap();
        assert!(Bbs.compute(&empty).is_empty());
        let one = Dataset::from_rows(&[[3.0, 4.0]]).unwrap();
        assert_eq!(Bbs.compute(&one), vec![0]);
    }

    #[test]
    fn duplicates_survive() {
        let data = Dataset::from_rows(&[[1.0, 1.0], [1.0, 1.0], [2.0, 0.5]]).unwrap();
        assert_eq!(Bbs.compute(&data), vec![0, 1, 2]);
    }

    #[test]
    fn correlated_data_needs_few_tests() {
        // One strong point dominates everything: the branch-and-bound
        // should prune whole subtrees via their lower corners.
        let mut rows = vec![[0.0, 0.0, 0.0]];
        for i in 0..2000 {
            let v = 1.0 + (i % 50) as f64;
            rows.push([v, v + 1.0, v + 2.0]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = Bbs.compute_with_metrics(&data, &mut m);
        assert_eq!(sky, vec![0]);
        // Far fewer tests than points: pruning must bite.
        assert!(
            m.dominance_tests < data.len() as u64 / 2,
            "expected subtree pruning, got {} tests for {} points",
            m.dominance_tests,
            data.len()
        );
    }

    #[test]
    fn progressive_order_is_correct_with_negative_values() {
        let data = Dataset::from_rows(&[
            [-5.0, 2.0],
            [2.0, -5.0],
            [-1.0, -1.0],
            [3.0, 3.0], // dominated
        ])
        .unwrap();
        assert_eq!(Bbs.compute(&data), Bnl.compute(&data));
    }
}

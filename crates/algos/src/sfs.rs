//! SFS — *sort-filter-skyline* (Chomicki, Godfrey, Gryz & Liang,
//! ICDE 2003).
//!
//! All points are presorted by a monotone scoring function `f` such that
//! `f(p) < f(q) ⇒ q ⊀ p`; we use the coordinate sum (the classic choice —
//! the original paper also discusses entropy, which orders identically on
//! the unit cube up to monotone transformation). The minimum-score point
//! is immediately a skyline point, and each following point only needs
//! dominance tests against the already-confirmed skyline.

use skyline_core::dataset::Dataset;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;

use crate::common::{order_by_sum, presorted_filter};
use crate::SkylineAlgorithm;

/// Sort-filter-skyline with sum presorting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sfs;

impl SkylineAlgorithm for Sfs {
    fn name(&self) -> &str {
        "SFS"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let order = order_by_sum(data);
        let mut skyline = presorted_filter(data, &order, metrics);
        skyline.sort_unstable();
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    #[test]
    fn matches_bnl_on_small_inputs() {
        let data = Dataset::from_rows(&[
            [1.0, 9.0],
            [2.0, 7.0],
            [3.0, 8.0],
            [9.0, 1.0],
            [5.0, 5.0],
            [5.0, 5.0],
        ])
        .unwrap();
        assert_eq!(Sfs.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn first_sorted_point_is_never_tested() {
        let data = Dataset::from_rows(&[[1.0, 1.0], [2.0, 2.0]]).unwrap();
        let mut m = Metrics::new();
        let sky = Sfs.compute_with_metrics(&data, &mut m);
        assert_eq!(sky, vec![0]);
        // Only the second point is tested, against one skyline point.
        assert_eq!(m.dominance_tests, 1);
    }

    #[test]
    fn dominated_points_tested_against_prefix_only() {
        // Everything dominated by the first point: exactly one test each.
        let rows: Vec<[f64; 2]> = (0..10).map(|i| [i as f64, i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = Sfs.compute_with_metrics(&data, &mut m);
        assert_eq!(sky, vec![0]);
        assert_eq!(m.dominance_tests, 9);
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(vec![], 2).unwrap();
        assert!(Sfs.compute(&data).is_empty());
    }

    #[test]
    fn anti_correlated_line() {
        let rows: Vec<[f64; 2]> = (0..20).map(|i| [i as f64, 19.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        assert_eq!(Sfs.compute(&data).len(), 20);
    }
}

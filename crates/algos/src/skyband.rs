//! The k-skyband operator — the standard generalisation of the skyline
//! (Papadias et al., SIGMOD 2003): the set of points dominated by fewer
//! than `k` other points. The skyline is exactly the 1-skyband.
//!
//! ## Why band-only counting is exact
//!
//! The scan processes points in ascending sum order and counts, for each
//! point, its dominators **among confirmed band members only**. This is
//! exact:
//!
//! - if `x ≺ q` then `Dom(x) ⊂ Dom(q)`, so every dominator of a band
//!   member is itself a band member — counts of band members are exact;
//! - if `|Dom(q)| ≥ k`, order `Dom(q)` by sum: the `i`-th element has at
//!   most `i` dominators (all its dominators precede it inside
//!   `Dom(q)`), so the first `k` are band members — the band-only count
//!   reaches `k` and `q` is correctly rejected.
//!
//! Note the *pruning* tricks of plain skyline algorithms do not carry
//! over: a dominated point may both belong to the band (for `k > 1`) and
//! dominate later points, so nothing can be discarded mid-scan.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::dominates;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;

use crate::common::order_by_sum;

/// One k-skyband member with its exact dominator count (`< k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandPoint {
    /// Id of the point.
    pub id: PointId,
    /// Exact number of points dominating it.
    pub dominators: u32,
}

/// Compute the k-skyband: all points dominated by fewer than `k` others.
///
/// Returns band members ascending by id, each with its exact dominator
/// count. `k = 1` yields the skyline (all counts 0). `k = 0` is empty by
/// definition.
pub fn k_skyband(data: &Dataset, k: usize, metrics: &mut Metrics) -> Vec<BandPoint> {
    if k == 0 || data.is_empty() {
        return Vec::new();
    }
    let order = order_by_sum(data);
    // Band members in scan (sum) order; dominators of any point precede
    // it here, so one pass suffices.
    let mut band: Vec<BandPoint> = Vec::new();
    for &id in &order {
        let row = data.point(id);
        let mut count = 0u32;
        for member in &band {
            metrics.count_dt();
            if dominates(data.point(member.id), row) {
                count += 1;
                if count as usize >= k {
                    break;
                }
            }
        }
        if (count as usize) < k {
            band.push(BandPoint {
                id,
                dominators: count,
            });
        }
    }
    band.sort_unstable_by_key(|b| b.id);
    band
}

/// Convenience: the ids of the k-skyband, ascending.
pub fn k_skyband_ids(data: &Dataset, k: usize, metrics: &mut Metrics) -> Vec<PointId> {
    k_skyband(data, k, metrics)
        .into_iter()
        .map(|b| b.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;
    use crate::SkylineAlgorithm;

    /// Brute-force oracle: count all dominators of every point.
    fn oracle(data: &Dataset, k: usize) -> Vec<BandPoint> {
        let mut out = Vec::new();
        for (i, p) in data.iter() {
            let mut dominators = 0u32;
            for (j, q) in data.iter() {
                if i != j && dominates(q, p) {
                    dominators += 1;
                }
            }
            if (dominators as usize) < k {
                out.push(BandPoint { id: i, dominators });
            }
        }
        out
    }

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|x| (((i * 31 + x * 17) * 40503) % 19) as f64)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn one_skyband_is_the_skyline() {
        let data = pseudo_random_dataset(200, 3);
        let mut m = Metrics::new();
        let band = k_skyband(&data, 1, &mut m);
        let ids: Vec<PointId> = band.iter().map(|b| b.id).collect();
        assert_eq!(ids, Bnl.compute(&data));
        assert!(band.iter().all(|b| b.dominators == 0));
    }

    #[test]
    fn zero_skyband_is_empty() {
        let data = pseudo_random_dataset(50, 2);
        let mut m = Metrics::new();
        assert!(k_skyband(&data, 0, &mut m).is_empty());
    }

    #[test]
    fn matches_oracle_for_various_k() {
        for &(n, d) in &[(120usize, 2usize), (150, 3), (100, 5)] {
            let data = pseudo_random_dataset(n, d);
            for k in [1usize, 2, 3, 5, 10] {
                let mut m = Metrics::new();
                assert_eq!(
                    k_skyband(&data, k, &mut m),
                    oracle(&data, k),
                    "n={n} d={d} k={k}"
                );
            }
        }
    }

    #[test]
    fn huge_k_returns_everything_with_exact_counts() {
        let data = pseudo_random_dataset(80, 3);
        let mut m = Metrics::new();
        let band = k_skyband(&data, usize::MAX, &mut m);
        assert_eq!(band.len(), data.len());
        assert_eq!(band, oracle(&data, usize::MAX));
    }

    #[test]
    fn chain_counts() {
        // A totally ordered chain: point i has exactly i dominators.
        let rows: Vec<[f64; 2]> = (0..10).map(|i| [i as f64, i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let band = k_skyband(&data, 4, &mut m);
        assert_eq!(band.len(), 4);
        for (i, b) in band.iter().enumerate() {
            assert_eq!(b.id, i as PointId);
            assert_eq!(b.dominators, i as u32);
        }
    }

    #[test]
    fn duplicates_do_not_dominate_each_other() {
        let data = Dataset::from_rows(&[[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]).unwrap();
        let mut m = Metrics::new();
        let band = k_skyband(&data, 2, &mut m);
        // Both duplicates have 0 dominators; [2,2] has 2.
        assert_eq!(
            band,
            vec![
                BandPoint {
                    id: 0,
                    dominators: 0
                },
                BandPoint {
                    id: 1,
                    dominators: 0
                },
            ]
        );
        let band3 = k_skyband(&data, 3, &mut m);
        assert_eq!(
            band3[2],
            BandPoint {
                id: 2,
                dominators: 2
            }
        );
    }

    #[test]
    fn ids_helper() {
        let data = pseudo_random_dataset(60, 3);
        let mut m = Metrics::new();
        let ids = k_skyband_ids(&data, 2, &mut m);
        let full: Vec<PointId> = k_skyband(&data, 2, &mut m).iter().map(|b| b.id).collect();
        assert_eq!(ids, full);
    }
}

//! Index — the sorted-lists skyline algorithm of Tan, Eng & Ooi
//! (VLDB 2001), the earliest index-based progressive method in the
//! paper's related work ("Index builds a B⁺-tree data structure to sort
//! and index each dimension value of all points in order to prune
//! irrelevant points and to retrieve skyline points by comparing their
//! min/max values").
//!
//! Points are partitioned into `d` lists by the dimension holding their
//! minimum coordinate; each list is kept sorted by that minimum (the
//! role the original's B⁺-tree plays, collapsed to a sorted vector for
//! in-memory data). The scan repeatedly advances the list whose head has
//! the smallest key — so points are visited in ascending `minC` order,
//! which makes the order monotone (every dominator precedes its victims)
//! — and stops early once every head key strictly exceeds the smallest
//! `maxC` of the skyline found so far: every unseen point is then
//! provably dominated.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominates, lex_cmp};
use skyline_core::metrics::Metrics;
use skyline_core::point::{coordinate_sum, max_coordinate, PointId};

use crate::SkylineAlgorithm;

/// The Index algorithm (sorted per-dimension partitions, early stop).
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexAlgo;

impl SkylineAlgorithm for IndexAlgo {
    fn name(&self) -> &str {
        "Index"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let d = data.dims();
        let n = data.len();
        if n == 0 {
            return Vec::new();
        }

        // Partition: point -> list of its argmin dimension, keyed by the
        // minimum value (sum breaks ties monotonically).
        let mut lists: Vec<Vec<(f64, f64, PointId)>> = vec![Vec::new(); d];
        for (id, row) in data.iter() {
            let (dim, min) = row
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .expect("non-zero dimensionality");
            lists[dim].push((min, coordinate_sum(row), id));
        }
        for list in &mut lists {
            list.sort_unstable_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then(a.1.total_cmp(&b.1))
                    .then_with(|| lex_cmp(data.point(a.2), data.point(b.2)))
                    .then(a.2.cmp(&b.2))
            });
        }

        let mut heads = vec![0usize; d];
        let mut skyline: Vec<PointId> = Vec::new();
        let mut best_max = f64::INFINITY;
        let mut remaining = n;
        while remaining > 0 {
            // Advance the list whose head key is smallest.
            let next = (0..d)
                .filter(|&j| heads[j] < lists[j].len())
                .min_by(|&a, &b| {
                    let (ka, kb) = (&lists[a][heads[a]], &lists[b][heads[b]]);
                    ka.0.total_cmp(&kb.0)
                        .then(ka.1.total_cmp(&kb.1))
                        .then_with(|| lex_cmp(data.point(ka.2), data.point(kb.2)))
                        .then(a.cmp(&b))
                });
            let Some(j) = next else { break };
            let (min_key, _, id) = lists[j][heads[j]];

            // Early stop: every unprocessed point has minC ≥ this key; if
            // the key strictly exceeds the best skyline maxC, the stop
            // point dominates them all.
            if min_key > best_max {
                metrics.stop_pruned += remaining as u64;
                break;
            }
            heads[j] += 1;
            remaining -= 1;

            let row = data.point(id);
            let mut dominated = false;
            for &s in &skyline {
                metrics.count_dt();
                if dominates(data.point(s), row) {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                best_max = best_max.min(max_coordinate(row));
                skyline.push(id);
            }
        }
        skyline.sort_unstable();
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 43 + k * 29) * 2654435761usize) % 613) as f64 / 613.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_oracle_across_shapes() {
        for &(n, d) in &[(50usize, 1usize), (80, 2), (300, 3), (500, 5), (200, 8)] {
            let data = pseudo_random_dataset(n, d);
            assert_eq!(IndexAlgo.compute(&data), Bnl.compute(&data), "n={n} d={d}");
        }
    }

    #[test]
    fn empty_and_duplicates() {
        let empty = Dataset::from_flat(vec![], 3).unwrap();
        assert!(IndexAlgo.compute(&empty).is_empty());
        let dup = Dataset::from_rows(&[[1.0, 2.0], [1.0, 2.0], [2.0, 3.0]]).unwrap();
        assert_eq!(IndexAlgo.compute(&dup), vec![0, 1]);
    }

    #[test]
    fn early_stop_prunes_the_tail() {
        let mut rows = vec![[0.2, 0.3], [0.3, 0.2]];
        for i in 0..500 {
            rows.push([1.0 + i as f64, 2.0 + i as f64]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = IndexAlgo.compute_with_metrics(&data, &mut m);
        assert_eq!(sky, vec![0, 1]);
        assert!(m.stop_pruned > 400, "stop point should cut the tail");
    }

    #[test]
    fn heavy_ties_on_the_min_dimension() {
        let rows: Vec<[f64; 3]> = (0..150)
            .map(|i| {
                [
                    ((i * 3) % 4) as f64,
                    ((i * 5) % 4) as f64,
                    ((i * 7) % 4) as f64,
                ]
            })
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        assert_eq!(IndexAlgo.compute(&data), Bnl.compute(&data));
    }
}

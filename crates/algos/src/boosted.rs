//! The paper's boosted algorithms: SFS-Subset, SaLSa-Subset, SDI-Subset.
//!
//! Each keeps its base algorithm's design untouched (sort order, stop
//! rule, dimension traversal) and swaps the skyline store for the
//! subset-query index: the merge phase (Algorithm 1) assigns every
//! surviving point a maximum dominating subspace, confirmed skyline points
//! are `put` into the index under their subspace, and every test retrieves
//! only the comparable candidates (Lemma 5.1).
//!
//! `sigma = None` selects the paper's recommended stability threshold
//! `σ = round(d/3)` at run time.

use skyline_core::boost::{
    boosted_skyline, boosted_skyline_cancellable, boosted_skyline_traced, BoostConfig, SortStrategy,
};
use skyline_core::cancel::{CancelToken, Cancelled, CHECK_STRIDE};
use skyline_core::container::{SkylineContainer, SubsetContainer};
use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominates, lex_cmp, points_equal};
use skyline_core::merge::{merge_traced_cancel, MergeConfig};
use skyline_core::metrics::Metrics;
use skyline_core::point::{coordinate_sum, PointId};
use skyline_obs::{NoopRecorder, Recorder};

use crate::SkylineAlgorithm;

fn merge_config(sigma: Option<usize>, dims: usize) -> MergeConfig {
    match sigma {
        None => MergeConfig::recommended(dims),
        Some(s) => {
            let mut config = MergeConfig::recommended(dims);
            config.sigma = s.clamp(2, dims.max(2));
            config
        }
    }
}

/// SFS boosted by the subset index (sum presorting, no stop rule).
#[derive(Debug, Clone, Copy, Default)]
pub struct SfsSubset {
    /// Stability threshold override; `None` = `round(d/3)`.
    pub sigma: Option<usize>,
}

impl SfsSubset {
    /// Create with an optional stability-threshold override.
    pub fn new(sigma: Option<usize>) -> Self {
        SfsSubset { sigma }
    }
}

impl SkylineAlgorithm for SfsSubset {
    fn name(&self) -> &str {
        "SFS-Subset"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let config = BoostConfig {
            merge: merge_config(self.sigma, data.dims()),
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        boosted_skyline(data, &config, metrics).skyline
    }

    fn compute_cancellable(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        let config = BoostConfig {
            merge: merge_config(self.sigma, data.dims()),
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        boosted_skyline_cancellable(data, &config, metrics, cancel).map(|o| o.skyline)
    }

    fn compute_traced(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        rec: &mut dyn Recorder,
    ) -> Vec<PointId> {
        let config = BoostConfig {
            merge: merge_config(self.sigma, data.dims()),
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        boosted_skyline_traced(data, &config, metrics, rec).skyline
    }
}

/// SaLSa boosted by the subset index (minC presorting + stop point).
#[derive(Debug, Clone, Copy, Default)]
pub struct SalsaSubset {
    /// Stability threshold override; `None` = `round(d/3)`.
    pub sigma: Option<usize>,
}

impl SalsaSubset {
    /// Create with an optional stability-threshold override.
    pub fn new(sigma: Option<usize>) -> Self {
        SalsaSubset { sigma }
    }
}

impl SkylineAlgorithm for SalsaSubset {
    fn name(&self) -> &str {
        "SaLSa-Subset"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let config = BoostConfig {
            merge: merge_config(self.sigma, data.dims()),
            sort: SortStrategy::MinCoordinate,
            use_stop_point: true,
        };
        boosted_skyline(data, &config, metrics).skyline
    }

    fn compute_cancellable(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        let config = BoostConfig {
            merge: merge_config(self.sigma, data.dims()),
            sort: SortStrategy::MinCoordinate,
            use_stop_point: true,
        };
        boosted_skyline_cancellable(data, &config, metrics, cancel).map(|o| o.skyline)
    }

    fn compute_traced(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        rec: &mut dyn Recorder,
    ) -> Vec<PointId> {
        let config = BoostConfig {
            merge: merge_config(self.sigma, data.dims()),
            sort: SortStrategy::MinCoordinate,
            use_stop_point: true,
        };
        boosted_skyline_traced(data, &config, metrics, rec).skyline
    }
}

/// SDI boosted by the subset index.
///
/// The merge phase runs first; the SDI dimension-index machinery then
/// scans only the merge survivors, and every dominance test goes through
/// the subset index instead of the per-dimension skylines (which remain
/// only as counts for the dimension-switch heuristic).
#[derive(Debug, Clone, Copy, Default)]
pub struct SdiSubset {
    /// Stability threshold override; `None` = `round(d/3)`.
    pub sigma: Option<usize>,
}

impl SdiSubset {
    /// Create with an optional stability-threshold override.
    pub fn new(sigma: Option<usize>) -> Self {
        SdiSubset { sigma }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Unknown,
    Skyline,
    Dominated,
}

impl SkylineAlgorithm for SdiSubset {
    fn name(&self) -> &str {
        "SDI-Subset"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        self.compute_traced(data, metrics, &mut NoopRecorder)
    }

    fn compute_cancellable(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        self.compute_traced_cancel(data, metrics, &mut NoopRecorder, cancel)
    }

    fn compute_traced(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        rec: &mut dyn Recorder,
    ) -> Vec<PointId> {
        self.compute_traced_cancel(data, metrics, rec, &CancelToken::none())
            .expect("the none token never cancels")
    }
}

impl SdiSubset {
    /// The full SDI-Subset machinery with tracing and cancellation. The
    /// token is checked once per merge pivot and every [`CHECK_STRIDE`]
    /// steps of the dimension traversal.
    fn compute_traced_cancel(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        rec: &mut dyn Recorder,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        let dims = data.dims();
        let outcome =
            merge_traced_cancel(data, &merge_config(self.sigma, dims), metrics, rec, cancel)?;
        let mut skyline = outcome.confirmed_skyline();
        if outcome.exhausted {
            return Ok(skyline);
        }
        rec.span_start("sort");

        let survivors = &outcome.survivors;
        let m = survivors.len();
        let sums: Vec<f64> = survivors
            .iter()
            .map(|&q| coordinate_sum(data.point(q)))
            .collect();

        // Per-dimension sorted indexes over survivor *positions*.
        let mut orders: Vec<Vec<u32>> = Vec::with_capacity(dims);
        for dim in 0..dims {
            let mut order: Vec<u32> = (0..m as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                let (qa, qb) = (survivors[a as usize], survivors[b as usize]);
                data.value(qa, dim)
                    .total_cmp(&data.value(qb, dim))
                    .then_with(|| sums[a as usize].total_cmp(&sums[b as usize]))
                    .then_with(|| lex_cmp(data.point(qa), data.point(qb)))
                    .then(qa.cmp(&qb))
            });
            orders.push(order);
        }

        // Stop point among the survivors: argmin squared distance to the
        // dataset min corner.
        let mut min_corner = vec![f64::INFINITY; dims];
        for (_, p) in data.iter() {
            for (mc, v) in min_corner.iter_mut().zip(p) {
                if *v < *mc {
                    *mc = *v;
                }
            }
        }
        let stop_pos = (0..m)
            .min_by(|&a, &b| {
                let score = |i: usize| -> f64 {
                    data.point(survivors[i])
                        .iter()
                        .zip(&min_corner)
                        .map(|(v, mc)| (v - mc) * (v - mc))
                        .sum()
                };
                score(a).total_cmp(&score(b)).then(a.cmp(&b))
            })
            .expect("survivors is non-empty");
        let stop_row = data.point(survivors[stop_pos]).to_vec();
        rec.span_end("sort");
        rec.span_start("scan");

        let mut container: SubsetContainer = SubsetContainer::new(dims);
        let mut status = vec![Status::Unknown; m];
        let mut dim_sky_count = vec![0usize; dims];
        let mut pos = vec![0usize; dims];
        let mut stop_dims_remaining = dims;
        let mut current = 0usize;
        let mut candidates: Vec<PointId> = Vec::new();

        // Breadth-first traversal among dimensions, as in plain SDI.
        let mut steps = 0usize;
        loop {
            if steps % CHECK_STRIDE == 0 && cancel.check().is_err() {
                rec.span_end("scan");
                return Err(Cancelled);
            }
            steps += 1;
            if pos[current] >= m {
                match (0..dims)
                    .filter(|&d| pos[d] < m)
                    .min_by_key(|&d| (dim_sky_count[d], d))
                {
                    Some(d) => {
                        current = d;
                        continue;
                    }
                    None => break,
                }
            }
            let spos = orders[current][pos[current]] as usize;
            pos[current] += 1;
            if spos == stop_pos {
                stop_dims_remaining -= 1;
            }
            let mut confirmed_new = false;
            match status[spos] {
                Status::Skyline => {
                    dim_sky_count[current] += 1;
                }
                Status::Dominated => {}
                Status::Unknown => {
                    let q = survivors[spos];
                    let q_row = data.point(q);
                    let q_sub = outcome.subspaces[spos];
                    candidates.clear();
                    container.candidates_into(q_sub, &mut candidates, metrics);
                    let mut dominated = false;
                    for &c in &candidates {
                        metrics.count_dt();
                        if dominates(data.point(c), q_row) {
                            dominated = true;
                            break;
                        }
                    }
                    if dominated {
                        status[spos] = Status::Dominated;
                    } else {
                        status[spos] = Status::Skyline;
                        container.put(q, q_sub, metrics);
                        dim_sky_count[current] += 1;
                        confirmed_new = true;
                    }
                }
            }
            if stop_dims_remaining == 0 {
                break;
            }
            current = if confirmed_new {
                (0..dims)
                    .filter(|&d| pos[d] < m)
                    .min_by_key(|&d| (dim_sky_count[d], d))
                    .unwrap_or(current)
            } else {
                (current + 1) % dims
            };
        }

        // Positional finalisation against the stop point.
        for spos in 0..m {
            if status[spos] == Status::Unknown {
                if points_equal(data.point(survivors[spos]), &stop_row) {
                    status[spos] = Status::Skyline;
                } else {
                    status[spos] = Status::Dominated;
                    metrics.stop_pruned += 1;
                }
            }
        }

        skyline.extend(
            (0..m)
                .filter(|&i| status[i] == Status::Skyline)
                .map(|i| survivors[i]),
        );
        skyline.sort_unstable();
        rec.span_end("scan");
        Ok(skyline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;
    use crate::salsa::SaLSa;
    use crate::sdi::Sdi;
    use crate::sfs::Sfs;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 41 + k * 19) * 2654435761usize) % 777) as f64 / 777.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn boosted_variants_match_their_bases() {
        for &(n, d) in &[(80usize, 2usize), (150, 4), (200, 6), (120, 8)] {
            let data = pseudo_random_dataset(n, d);
            let oracle = Bnl.compute(&data);
            assert_eq!(Sfs.compute(&data), oracle, "SFS n={n} d={d}");
            assert_eq!(
                SfsSubset::default().compute(&data),
                oracle,
                "SFS-Subset n={n} d={d}"
            );
            assert_eq!(SaLSa.compute(&data), oracle, "SaLSa n={n} d={d}");
            assert_eq!(
                SalsaSubset::default().compute(&data),
                oracle,
                "SaLSa-Subset n={n} d={d}"
            );
            assert_eq!(Sdi.compute(&data), oracle, "SDI n={n} d={d}");
            assert_eq!(
                SdiSubset::default().compute(&data),
                oracle,
                "SDI-Subset n={n} d={d}"
            );
        }
    }

    #[test]
    fn explicit_sigma_is_respected_and_clamped() {
        let data = pseudo_random_dataset(100, 6);
        let oracle = Bnl.compute(&data);
        for sigma in [0usize, 2, 3, 6, 99] {
            assert_eq!(
                SfsSubset::new(Some(sigma)).compute(&data),
                oracle,
                "sigma={sigma}"
            );
            assert_eq!(
                SdiSubset::new(Some(sigma)).compute(&data),
                oracle,
                "sigma={sigma}"
            );
        }
    }

    #[test]
    fn merge_exhaustion_path() {
        // A totally ordered chain: the merge phase consumes everything.
        let rows: Vec<[f64; 3]> = (0..40).map(|i| [i as f64, i as f64, i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        assert_eq!(SdiSubset::default().compute(&data), vec![0]);
        assert_eq!(SfsSubset::default().compute(&data), vec![0]);
        assert_eq!(SalsaSubset::default().compute(&data), vec![0]);
    }

    #[test]
    fn duplicates_everywhere() {
        let mut rows = vec![[0.2, 0.8], [0.2, 0.8], [0.8, 0.2], [0.8, 0.2]];
        rows.push([0.9, 0.9]);
        let data = Dataset::from_rows(&rows).unwrap();
        let oracle = Bnl.compute(&data);
        assert_eq!(oracle, vec![0, 1, 2, 3]);
        assert_eq!(SfsSubset::default().compute(&data), oracle);
        assert_eq!(SalsaSubset::default().compute(&data), oracle);
        assert_eq!(SdiSubset::default().compute(&data), oracle);
    }

    #[test]
    fn sdi_subset_stop_point_fires() {
        // Survivors dominated by a near-origin survivor that every
        // dimension passes early.
        let mut rows = vec![[0.5, 0.01], [0.01, 0.5], [0.05, 0.05]];
        for i in 0..200 {
            let v = 0.2 + i as f64 / 300.0;
            rows.push([v, v]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = SdiSubset::new(Some(2)).compute_with_metrics(&data, &mut m);
        assert_eq!(sky, Bnl.compute(&data));
    }

    #[test]
    fn high_dimensional_agreement() {
        let data = pseudo_random_dataset(80, 12);
        let oracle = Bnl.compute(&data);
        assert_eq!(SfsSubset::default().compute(&data), oracle);
        assert_eq!(SalsaSubset::default().compute(&data), oracle);
        assert_eq!(SdiSubset::default().compute(&data), oracle);
    }
}

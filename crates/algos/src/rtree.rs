//! A static, bulk-loaded R-tree — the index substrate BBS needs
//! (Papadias et al., SIGMOD 2003: "BBS uses R-tree to partition and
//! index the dataset").
//!
//! Bulk loading uses the classic Sort-Tile-Recursive (STR) packing:
//! points are sorted by the first dimension, tiled into vertical slabs,
//! each slab sorted by the second dimension, and so on; leaves pack
//! `CAPACITY` points each and upper levels pack the resulting MBRs the
//! same way. The tree is immutable — exactly what a skyline scan needs.

use skyline_core::dataset::Dataset;
use skyline_core::point::PointId;

/// Fan-out of every node.
pub const CAPACITY: usize = 32;

/// Minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    /// Lower corner (componentwise minimum).
    pub lo: Vec<f64>,
    /// Upper corner (componentwise maximum).
    pub hi: Vec<f64>,
}

impl Mbr {
    fn of_points(data: &Dataset, ids: &[PointId]) -> Mbr {
        let d = data.dims();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for &id in ids {
            for (k, v) in data.point(id).iter().enumerate() {
                lo[k] = lo[k].min(*v);
                hi[k] = hi[k].max(*v);
            }
        }
        Mbr { lo, hi }
    }

    fn union(entries: &[Mbr]) -> Mbr {
        let d = entries[0].lo.len();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for m in entries {
            for k in 0..d {
                lo[k] = lo[k].min(m.lo[k]);
                hi[k] = hi[k].max(m.hi[k]);
            }
        }
        Mbr { lo, hi }
    }

    /// The monotone lower bound BBS orders its heap by: the coordinate
    /// sum of the lower corner. For any point `p` inside the MBR,
    /// `sum(lo) ≤ sum(p)`.
    pub fn min_key(&self) -> f64 {
        self.lo.iter().sum()
    }

    /// Whether the rectangle contains `p` (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((l, h), v)| l <= v && v <= h)
    }
}

/// One node of the tree.
#[derive(Debug, Clone)]
pub enum RNode {
    /// Leaf: point ids.
    Leaf(Vec<PointId>),
    /// Inner node: `(child index, child MBR)` pairs.
    Inner(Vec<(usize, Mbr)>),
}

/// A static R-tree over a dataset.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<RNode>,
    root: Option<usize>,
    root_mbr: Option<Mbr>,
}

impl RTree {
    /// Bulk-load the tree from every point of `data` using STR packing.
    pub fn bulk_load(data: &Dataset) -> RTree {
        let n = data.len();
        if n == 0 {
            return RTree {
                nodes: Vec::new(),
                root: None,
                root_mbr: None,
            };
        }
        let mut ids: Vec<PointId> = (0..n as PointId).collect();
        let mut nodes: Vec<RNode> = Vec::new();

        // Leaf level: STR-tile the points.
        let mut leaves: Vec<(usize, Mbr)> = Vec::new();
        let leaf_groups = str_tile(data, &mut ids, 0);
        for group in leaf_groups {
            let mbr = Mbr::of_points(data, &group);
            nodes.push(RNode::Leaf(group));
            leaves.push((nodes.len() - 1, mbr));
        }

        // Upper levels: pack child MBRs (already spatially ordered by the
        // leaf tiling) sequentially until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<(usize, Mbr)> = Vec::new();
            for chunk in level.chunks(CAPACITY) {
                let mbr = Mbr::union(&chunk.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>());
                nodes.push(RNode::Inner(chunk.to_vec()));
                next.push((nodes.len() - 1, mbr));
            }
            level = next;
        }
        let (root, root_mbr) = level.into_iter().next().expect("non-empty tree");
        RTree {
            nodes,
            root: Some(root),
            root_mbr: Some(root_mbr),
        }
    }

    /// Root node index, if the tree is non-empty.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// MBR of the whole dataset.
    pub fn root_mbr(&self) -> Option<&Mbr> {
        self.root_mbr.as_ref()
    }

    /// Access a node.
    pub fn node(&self, idx: usize) -> &RNode {
        &self.nodes[idx]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth(tree: &RTree, idx: usize) -> usize {
            match tree.node(idx) {
                RNode::Leaf(_) => 1,
                RNode::Inner(children) => {
                    1 + children
                        .iter()
                        .map(|(c, _)| depth(tree, *c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        self.root.map_or(0, |r| depth(self, r))
    }

    /// Every point id stored in the tree (used by validation tests).
    pub fn all_ids(&self) -> Vec<PointId> {
        let mut out = Vec::new();
        for node in &self.nodes {
            if let RNode::Leaf(ids) = node {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out
    }
}

/// Recursive STR tiling: returns groups of at most [`CAPACITY`] ids.
fn str_tile(data: &Dataset, ids: &mut [PointId], dim: usize) -> Vec<Vec<PointId>> {
    let n = ids.len();
    if n <= CAPACITY {
        return vec![ids.to_vec()];
    }
    ids.sort_unstable_by(|&a, &b| {
        data.value(a, dim)
            .total_cmp(&data.value(b, dim))
            .then(a.cmp(&b))
    });
    if dim + 1 == data.dims() {
        return ids.chunks(CAPACITY).map(<[PointId]>::to_vec).collect();
    }
    // Number of slabs: sqrt-style split so that tiles stay square-ish.
    let leaves = n.div_ceil(CAPACITY);
    let slabs = (leaves as f64).sqrt().ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut out = Vec::new();
    for slab in ids.chunks_mut(slab_size.max(CAPACITY)) {
        out.extend(str_tile(data, slab, dim + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 31 + k * 7) * 2654435761usize) % 1000) as f64)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn empty_tree() {
        let data = Dataset::from_flat(vec![], 3).unwrap();
        let tree = RTree::bulk_load(&data);
        assert!(tree.root().is_none());
        assert_eq!(tree.height(), 0);
        assert!(tree.all_ids().is_empty());
    }

    #[test]
    fn single_leaf_tree() {
        let data = pseudo_random_dataset(10, 2);
        let tree = RTree::bulk_load(&data);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.all_ids(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn every_point_is_stored_exactly_once() {
        for &(n, d) in &[(100usize, 2usize), (1000, 3), (5000, 6)] {
            let data = pseudo_random_dataset(n, d);
            let tree = RTree::bulk_load(&data);
            assert_eq!(
                tree.all_ids(),
                (0..n as PointId).collect::<Vec<_>>(),
                "n={n} d={d}"
            );
        }
    }

    #[test]
    fn mbrs_contain_their_subtrees() {
        let data = pseudo_random_dataset(2000, 3);
        let tree = RTree::bulk_load(&data);

        fn check(tree: &RTree, data: &Dataset, idx: usize, mbr: &Mbr) {
            match tree.node(idx) {
                RNode::Leaf(ids) => {
                    for &id in ids {
                        assert!(mbr.contains(data.point(id)), "point {id} escapes its MBR");
                    }
                }
                RNode::Inner(children) => {
                    for (child, child_mbr) in children {
                        // Child MBR must be inside the parent MBR.
                        assert!(mbr.contains(&child_mbr.lo));
                        assert!(mbr.contains(&child_mbr.hi));
                        check(tree, data, *child, child_mbr);
                    }
                }
            }
        }
        let root = tree.root().unwrap();
        check(&tree, &data, root, tree.root_mbr().unwrap());
    }

    #[test]
    fn fan_out_is_respected() {
        let data = pseudo_random_dataset(3000, 4);
        let tree = RTree::bulk_load(&data);
        for i in 0..tree.node_count() {
            match tree.node(i) {
                RNode::Leaf(ids) => assert!(ids.len() <= CAPACITY),
                RNode::Inner(children) => assert!(children.len() <= CAPACITY),
            }
        }
        // log_32(3000) -> height 3 at most for this capacity.
        assert!(tree.height() <= 3, "height {}", tree.height());
    }

    #[test]
    fn min_key_is_a_lower_bound() {
        let data = pseudo_random_dataset(500, 3);
        let tree = RTree::bulk_load(&data);
        for i in 0..tree.node_count() {
            if let RNode::Leaf(ids) = tree.node(i) {
                let mbr = Mbr::of_points(&data, ids);
                for &id in ids {
                    let sum: f64 = data.point(id).iter().sum();
                    assert!(mbr.min_key() <= sum + 1e-9);
                }
            }
        }
    }
}

//! SDI — *sort-based dimension indexing* (Liu & Li, EDBT 2020),
//! re-implemented from the description in Section 2 of the subset paper.
//!
//! **Sort phase.** For every dimension, point ids are sorted ascending by
//! `(value in that dimension, coordinate sum, id)`. The sum tie-break is
//! the "SFS-like local dominance" device for duplicate dimension values:
//! it guarantees that every dominator of a point precedes it in *every*
//! dimension index (`p ≺ q ⇒ p[i] ≤ q[i]` and `Σp < Σq`).
//!
//! **Scan phase.** Dimensions are traversed breadth-first, each holding a
//! cursor into its sorted index. Visiting a point for the first time
//! classifies it: it is tested against the *dimension skyline* — the
//! skyline points already passed by this dimension's cursor, which by the
//! sort-phase invariant contains every potential dominator. A point
//! already classified elsewhere is skipped (known skyline points join the
//! dimension skyline without any test). When a new skyline point is
//! confirmed, the scan switches to the dimension with the fewest skyline
//! points.
//!
//! **Stop point.** The point with the minimum Euclidean norm serves as the
//! stop point: once every dimension's cursor has passed it, every
//! still-unclassified point is componentwise ≥ the stop point and hence
//! dominated (exact duplicates of the stop point excepted) — no dominance
//! tests needed. This is how SDI reaches mean-DT values far below 1 on
//! correlated data.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominates, lex_cmp, points_equal};
use skyline_core::metrics::Metrics;
use skyline_core::point::{coordinate_sum, PointId};

use crate::SkylineAlgorithm;

/// Point classification during the scan phase.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Unknown,
    Skyline,
    Dominated,
}

/// Sort-based dimension indexing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sdi;

/// Build the per-dimension sorted indexes (the sort phase). Public within
/// the crate: the boosted SDI variant reuses it.
pub(crate) fn dimension_orders(data: &Dataset, sums: &[f64]) -> Vec<Vec<PointId>> {
    let dims = data.dims();
    let mut orders = Vec::with_capacity(dims);
    for dim in 0..dims {
        let mut order: Vec<PointId> = (0..data.len() as PointId).collect();
        order.sort_unstable_by(|&a, &b| {
            data.value(a, dim)
                .total_cmp(&data.value(b, dim))
                .then_with(|| sums[a as usize].total_cmp(&sums[b as usize]))
                // Rounding-equal sums: keep dominators first in every
                // dimension index (see `lex_cmp`).
                .then_with(|| lex_cmp(data.point(a), data.point(b)))
                .then(a.cmp(&b))
        });
        orders.push(order);
    }
    orders
}

/// The stop point: argmin of the squared distance to the dataset's min
/// corner (ties by id). Always a skyline point.
pub(crate) fn stop_point(data: &Dataset) -> PointId {
    let dims = data.dims();
    let mut min_corner = vec![f64::INFINITY; dims];
    for (_, p) in data.iter() {
        for (m, v) in min_corner.iter_mut().zip(p) {
            if *v < *m {
                *m = *v;
            }
        }
    }
    let mut best = (f64::INFINITY, 0 as PointId);
    for (id, p) in data.iter() {
        let score: f64 = p
            .iter()
            .zip(&min_corner)
            .map(|(v, m)| (v - m) * (v - m))
            .sum();
        if score < best.0 {
            best = (score, id);
        }
    }
    best.1
}

impl SkylineAlgorithm for Sdi {
    fn name(&self) -> &str {
        "SDI"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let n = data.len();
        if n == 0 {
            return Vec::new();
        }
        let dims = data.dims();
        let sums: Vec<f64> = data.iter().map(|(_, p)| coordinate_sum(p)).collect();
        let orders = dimension_orders(data, &sums);
        let stop = stop_point(data);
        let stop_row = data.point(stop).to_vec();

        let mut status = vec![Status::Unknown; n];
        let mut dim_skyline: Vec<Vec<PointId>> = vec![Vec::new(); dims];
        let mut pos = vec![0usize; dims];
        let mut stop_dims_remaining = dims;
        let mut current = 0usize;

        // Breadth-first traversal among dimensions: one point per step,
        // advancing round-robin, except that confirming a new skyline
        // point redirects the scan to the dimension with the fewest
        // skyline points. This interleaving is what lets the stop point
        // be passed in *every* dimension early on easy data.
        loop {
            if pos[current] >= n {
                // Dimension exhausted: hop to the next live one.
                match (0..dims)
                    .filter(|&d| pos[d] < n)
                    .min_by_key(|&d| (dim_skyline[d].len(), d))
                {
                    Some(d) => {
                        current = d;
                        continue;
                    }
                    None => break,
                }
            }
            let id = orders[current][pos[current]];
            pos[current] += 1;
            if id == stop {
                stop_dims_remaining -= 1;
            }
            let mut confirmed_new = false;
            match status[id as usize] {
                Status::Skyline => {
                    // Known skyline point: joins this dimension's skyline
                    // without a test.
                    dim_skyline[current].push(id);
                }
                Status::Dominated => {}
                Status::Unknown => {
                    let q_row = data.point(id);
                    let mut dominated = false;
                    for &s in &dim_skyline[current] {
                        metrics.count_dt();
                        if dominates(data.point(s), q_row) {
                            dominated = true;
                            break;
                        }
                    }
                    if dominated {
                        status[id as usize] = Status::Dominated;
                    } else {
                        status[id as usize] = Status::Skyline;
                        dim_skyline[current].push(id);
                        confirmed_new = true;
                    }
                }
            }
            if stop_dims_remaining == 0 {
                break;
            }
            current = if confirmed_new {
                (0..dims)
                    .filter(|&d| pos[d] < n)
                    .min_by_key(|&d| (dim_skyline[d].len(), d))
                    .unwrap_or(current)
            } else {
                (current + 1) % dims
            };
        }

        // Positional finalisation: the stop point has been passed in every
        // dimension, so every unclassified point is weakly dominated by it
        // — strictly, unless it is an exact duplicate.
        for id in 0..n as PointId {
            if status[id as usize] == Status::Unknown {
                if points_equal(data.point(id), &stop_row) {
                    status[id as usize] = Status::Skyline;
                } else {
                    status[id as usize] = Status::Dominated;
                    metrics.stop_pruned += 1;
                }
            }
        }

        (0..n as PointId)
            .filter(|&id| status[id as usize] == Status::Skyline)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 29 + k * 13) * 2246822519usize) % 500) as f64 / 500.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_bnl_across_shapes() {
        for &(n, d) in &[(30usize, 2usize), (100, 3), (150, 5), (120, 8), (40, 1)] {
            let data = pseudo_random_dataset(n, d);
            assert_eq!(Sdi.compute(&data), Bnl.compute(&data), "n={n} d={d}");
        }
    }

    #[test]
    fn duplicate_dimension_values() {
        // Heavy ties in every dimension: the sum tie-break must keep
        // dominators ahead.
        let rows: Vec<[f64; 3]> = (0..120)
            .map(|i| {
                [
                    ((i * 7) % 4) as f64,
                    ((i * 11) % 3) as f64,
                    ((i * 5) % 2) as f64,
                ]
            })
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        assert_eq!(Sdi.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn stop_point_is_in_skyline() {
        let data = pseudo_random_dataset(100, 4);
        let stop = stop_point(&data);
        assert!(Bnl.compute(&data).contains(&stop));
    }

    #[test]
    fn stop_prunes_on_correlated_data() {
        // A strongly dominating point near the origin plus a dominated
        // diagonal tail: SDI should classify the tail positionally.
        let mut rows = vec![[0.01, 0.01, 0.01]];
        for i in 0..200 {
            let v = 0.1 + i as f64 / 100.0;
            rows.push([v, v + 0.01, v + 0.02]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = Sdi.compute_with_metrics(&data, &mut m);
        assert_eq!(sky, vec![0]);
        assert!(
            m.stop_pruned > 150,
            "expected positional pruning, got {}",
            m.stop_pruned
        );
        assert!(m.mean_dominance_tests(data.len()) < 1.0);
    }

    #[test]
    fn duplicates_of_the_stop_point_survive() {
        let data = Dataset::from_rows(&[[0.1, 0.1], [0.1, 0.1], [0.5, 0.6], [0.7, 0.8]]).unwrap();
        assert_eq!(Sdi.compute(&data), vec![0, 1]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::from_flat(vec![], 2).unwrap();
        assert!(Sdi.compute(&empty).is_empty());
        let one = Dataset::from_rows(&[[1.0, 2.0]]).unwrap();
        assert_eq!(Sdi.compute(&one), vec![0]);
    }

    #[test]
    fn all_identical_points() {
        let data = Dataset::from_rows(&[[2.0, 3.0]; 10]).unwrap();
        let sky = Sdi.compute(&data);
        assert_eq!(sky.len(), 10);
    }

    #[test]
    fn anti_correlated_line() {
        let rows: Vec<[f64; 2]> = (0..30).map(|i| [i as f64, 29.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        assert_eq!(Sdi.compute(&data).len(), 30);
    }
}

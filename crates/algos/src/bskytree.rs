//! BSkyTree-S and BSkyTree-P (Lee & Hwang, EDBT 2010 / Information
//! Systems 2014) — the state-of-the-art baselines of the paper's
//! evaluation.
//!
//! Both algorithms select a *pivot point* and map every point `q` to a
//! binary lattice vector `B(q) ∈ {0,1}^d` with bit `i` set iff
//! `q[i] ≥ pivot[i]`. Two key facts drive everything:
//!
//! - `B(q) = 1…1` and `q ≠ pivot` ⇒ the pivot dominates `q` (pruned);
//! - `p ⪯ q ⇒ B(p) ⊆ B(q)` — so points whose vectors are
//!   inclusion-incomparable need no dominance test at all.
//!
//! **BSkyTree-S** applies this once: after pivot-based pruning, a
//! sum-presorted SFS-style scan runs in which a candidate is tested only
//! if its lattice vector is a subset of the testing point's
//! (the "bypass dominance tests between incomparable points" of the
//! paper's Section 2).
//!
//! **BSkyTree-P** applies it recursively: points are partitioned by their
//! lattice vector into up to `2^d - 2` regions, each region's skyline is
//! computed recursively, and region results are filtered only against
//! regions whose vector is a strict subset (processed in ascending
//! popcount order).
//!
//! Pivot selection is the clean-room *balanced* heuristic: the point with
//! the lexicographically smallest `(max normalised coordinate, sum)` —
//! provably a skyline point (any dominator would sort strictly before
//! it), close to the diagonal, with a large dominance region. This is the
//! spirit of Lee & Hwang's balanced pivot selection; their exact
//! range-partitioning tie-breaks are not reproduced.

use std::collections::HashMap;

use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominates, lex_cmp, points_equal};
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;

use crate::common::block_skyline;
use crate::SkylineAlgorithm;

/// Select the balanced pivot among `ids`: minimise
/// `(max_i norm(q[i]), Σ_i norm(q[i]))` where `norm` rescales each
/// dimension to `[0,1]` over the id set. The winner is a skyline point of
/// the set.
fn balanced_pivot(data: &Dataset, ids: &[PointId]) -> PointId {
    let dims = data.dims();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for &id in ids {
        for (d, v) in data.point(id).iter().enumerate() {
            lo[d] = lo[d].min(*v);
            hi[d] = hi[d].max(*v);
        }
    }
    let norm = |v: f64, d: usize| {
        if hi[d] > lo[d] {
            (v - lo[d]) / (hi[d] - lo[d])
        } else {
            0.0
        }
    };
    let mut best: Option<(f64, f64, PointId)> = None;
    for &id in ids {
        let mut max_norm: f64 = 0.0;
        let mut sum_norm = 0.0;
        for (d, v) in data.point(id).iter().enumerate() {
            let x = norm(*v, d);
            max_norm = max_norm.max(x);
            sum_norm += x;
        }
        let better = match &best {
            None => true,
            Some((bm, bs, bid)) => {
                max_norm
                    .total_cmp(bm)
                    .then_with(|| sum_norm.total_cmp(bs))
                    // Rounding can collapse a dominator's strictly smaller
                    // normalised sum into a tie; the lexicographic
                    // tie-break keeps the winner a skyline point.
                    .then_with(|| lex_cmp(data.point(id), data.point(*bid)))
                    .then(id.cmp(bid))
                    .is_lt()
            }
        };
        if better {
            best = Some((max_norm, sum_norm, id));
        }
    }
    best.expect("ids is non-empty").2
}

/// Lattice vector of `q` with respect to the pivot row: bit `i` set iff
/// `q[i] ≥ pivot[i]`.
fn lattice_vector(q: &[f64], pivot: &[f64]) -> u64 {
    let mut bits = 0u64;
    for (i, (a, b)) in q.iter().zip(pivot).enumerate() {
        if a >= b {
            bits |= 1 << i;
        }
    }
    bits
}

#[inline]
fn is_subset(a: u64, b: u64) -> bool {
    a & !b == 0
}

/// BSkyTree-S: single pivot, lattice-vector bypass inside a sum-presorted
/// scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct BSkyTreeS;

impl SkylineAlgorithm for BSkyTreeS {
    fn name(&self) -> &str {
        "BSkyTree-S"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        if data.is_empty() {
            return Vec::new();
        }
        let full = if data.dims() == 64 {
            u64::MAX
        } else {
            (1u64 << data.dims()) - 1
        };
        let ids: Vec<PointId> = (0..data.len() as PointId).collect();
        let pivot = balanced_pivot(data, &ids);
        let pivot_row = data.point(pivot);

        // Map and prune against the pivot. Each mapping doubles as one
        // dominance test (it inspects every coordinate pair).
        let mut skyline: Vec<PointId> = vec![pivot];
        let mut vectors: Vec<(PointId, u64, f64)> = Vec::with_capacity(data.len());
        for (id, q) in data.iter() {
            if id == pivot {
                continue;
            }
            metrics.count_dt();
            let b = lattice_vector(q, pivot_row);
            if b == full {
                if points_equal(q, pivot_row) {
                    skyline.push(id); // duplicate of the pivot
                }
                continue; // dominated by the pivot
            }
            vectors.push((id, b, q.iter().sum()));
        }

        // Sum-presorted scan; candidates kept as (id, lattice vector).
        vectors.sort_unstable_by(|a, b| {
            a.2.total_cmp(&b.2)
                // Rounding-equal sums: keep dominators first.
                .then_with(|| lex_cmp(data.point(a.0), data.point(b.0)))
                .then(a.0.cmp(&b.0))
        });
        let mut confirmed: Vec<(PointId, u64)> = Vec::new();
        'scan: for &(id, b, _) in &vectors {
            let q_row = data.point(id);
            for &(s, sb) in &confirmed {
                // Bypass: only vectors ⊆ b can dominate (no DT counted —
                // this is the bitwise incomparability check the method is
                // about).
                if !is_subset(sb, b) {
                    continue;
                }
                metrics.count_dt();
                if dominates(data.point(s), q_row) {
                    continue 'scan;
                }
            }
            confirmed.push((id, b));
        }
        skyline.extend(confirmed.into_iter().map(|(id, _)| id));
        skyline.sort_unstable();
        skyline
    }
}

/// Default block size for BSkyTree-P's recursion base case.
pub const DEFAULT_P_BLOCK: usize = 24;

/// BSkyTree-P: recursive lattice partitioning with balanced pivots.
#[derive(Debug, Clone, Copy)]
pub struct BSkyTreeP {
    /// Region size at which recursion falls back to pairwise elimination.
    pub block: usize,
}

impl Default for BSkyTreeP {
    fn default() -> Self {
        BSkyTreeP {
            block: DEFAULT_P_BLOCK,
        }
    }
}

impl SkylineAlgorithm for BSkyTreeP {
    fn name(&self) -> &str {
        "BSkyTree-P"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let ids: Vec<PointId> = (0..data.len() as PointId).collect();
        let mut skyline = self.recurse(data, ids, metrics);
        skyline.sort_unstable();
        skyline
    }
}

impl BSkyTreeP {
    fn recurse(&self, data: &Dataset, ids: Vec<PointId>, metrics: &mut Metrics) -> Vec<PointId> {
        if ids.len() <= self.block.max(2) {
            return block_skyline(data, &ids, metrics);
        }
        let dims = data.dims();
        let full = if dims == 64 {
            u64::MAX
        } else {
            (1u64 << dims) - 1
        };
        let pivot = balanced_pivot(data, &ids);
        let pivot_row = data.point(pivot);

        let mut skyline: Vec<PointId> = vec![pivot];
        let mut regions: HashMap<u64, Vec<PointId>> = HashMap::new();
        for &id in &ids {
            if id == pivot {
                continue;
            }
            let q = data.point(id);
            metrics.count_dt();
            let b = lattice_vector(q, pivot_row);
            if b == full {
                if points_equal(q, pivot_row) {
                    skyline.push(id);
                }
                continue;
            }
            regions.entry(b).or_default().push(id);
        }

        // Ascending popcount is a topological order of the ⊆ lattice:
        // when region B is processed, every region that could dominate it
        // (strict subsets of B) is already in `accepted`.
        let mut order: Vec<u64> = regions.keys().copied().collect();
        order.sort_unstable_by_key(|b| (b.count_ones(), *b));
        let mut accepted: Vec<(u64, Vec<PointId>)> = Vec::new();
        for b in order {
            let region = regions.remove(&b).expect("key from map");
            let local = self.recurse(data, region, metrics);
            let mut kept: Vec<PointId> = Vec::with_capacity(local.len());
            'points: for q in local {
                let q_row = data.point(q);
                for (ab, points) in &accepted {
                    // Regions with incomparable vectors are skipped
                    // wholesale — the heart of the lattice method.
                    if !is_subset(*ab, b) || *ab == b {
                        continue;
                    }
                    for &p in points {
                        metrics.count_dt();
                        if dominates(data.point(p), q_row) {
                            continue 'points;
                        }
                    }
                }
                kept.push(q);
            }
            if !kept.is_empty() {
                skyline.extend_from_slice(&kept);
                accepted.push((b, kept));
            }
        }
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 31 + k * 17) * 2654435761usize) % 1000) as f64 / 1000.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn balanced_pivot_is_a_skyline_point() {
        let data = pseudo_random_dataset(200, 4);
        let ids: Vec<PointId> = (0..200).collect();
        let pivot = balanced_pivot(&data, &ids);
        let sky = Bnl.compute(&data);
        assert!(sky.contains(&pivot), "pivot {pivot} must be in the skyline");
    }

    #[test]
    fn lattice_vector_definition() {
        let pivot = [0.5, 0.5, 0.5];
        assert_eq!(lattice_vector(&[0.4, 0.6, 0.5], &pivot), 0b110);
        assert_eq!(lattice_vector(&[0.6, 0.6, 0.6], &pivot), 0b111);
        assert_eq!(lattice_vector(&[0.1, 0.1, 0.1], &pivot), 0);
    }

    #[test]
    fn lattice_vector_respects_dominance() {
        // p ⪯ q ⇒ B(p) ⊆ B(q) for any pivot.
        let pivot = [0.3, 0.7, 0.5];
        let p = [0.2, 0.5, 0.5];
        let q = [0.4, 0.5, 0.9];
        assert!(dominates(&p, &q));
        let bp = lattice_vector(&p, &pivot);
        let bq = lattice_vector(&q, &pivot);
        assert!(is_subset(bp, bq));
    }

    #[test]
    fn s_variant_matches_bnl() {
        for &(n, d) in &[(50usize, 2usize), (120, 3), (150, 5), (100, 8)] {
            let data = pseudo_random_dataset(n, d);
            assert_eq!(BSkyTreeS.compute(&data), Bnl.compute(&data), "n={n} d={d}");
        }
    }

    #[test]
    fn p_variant_matches_bnl() {
        for &(n, d) in &[(50usize, 2usize), (120, 3), (150, 5), (100, 8)] {
            let data = pseudo_random_dataset(n, d);
            let p = BSkyTreeP { block: 8 };
            assert_eq!(p.compute(&data), Bnl.compute(&data), "n={n} d={d}");
        }
    }

    #[test]
    fn duplicates_of_the_pivot_survive_both_variants() {
        let mut rows = vec![[0.5, 0.5]; 3];
        rows.push([0.9, 0.9]);
        rows.push([0.4, 0.95]);
        let data = Dataset::from_rows(&rows).unwrap();
        let expected = Bnl.compute(&data);
        assert_eq!(BSkyTreeS.compute(&data), expected);
        assert_eq!(BSkyTreeP { block: 2 }.compute(&data), expected);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::from_flat(vec![], 3).unwrap();
        assert!(BSkyTreeS.compute(&empty).is_empty());
        assert!(BSkyTreeP::default().compute(&empty).is_empty());
        let one = Dataset::from_rows(&[[1.0, 2.0]]).unwrap();
        assert_eq!(BSkyTreeS.compute(&one), vec![0]);
        assert_eq!(BSkyTreeP::default().compute(&one), vec![0]);
    }

    #[test]
    fn incomparability_bypass_saves_tests() {
        // Anti-correlated data spreads points across incomparable lattice
        // regions; BSkyTree-S must do fewer dominance tests than SFS-like
        // exhaustive filtering would.
        let rows: Vec<[f64; 2]> = (0..200)
            .map(|i| [i as f64 / 200.0, (199 - i) as f64 / 200.0])
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = BSkyTreeS.compute_with_metrics(&data, &mut m);
        assert_eq!(sky.len(), 200);
        // Exhaustive filtering would need ~n²/2 ≈ 20000 tests; the bypass
        // must cut that down materially.
        assert!(
            m.dominance_tests < 15_000,
            "expected bypass savings, got {} tests",
            m.dominance_tests
        );
    }
}

//! D&C — divide and conquer (Kung, Luccio & Preparata, JACM 1975;
//! adapted to the skyline setting by Börzsönyi et al., ICDE 2001).
//!
//! The point set is recursively split on alternating dimensions at the
//! midpoint of the dimension's value range; skylines of the two halves are
//! computed recursively and merged: every *high*-half skyline point is
//! kept only if no *low*-half skyline point dominates it (low-half points
//! can never be dominated by high-half points because the split is strict
//! on the split dimension). Small blocks fall back to pairwise
//! elimination.
//!
//! The merge step here is the practical pairwise filter rather than Kung's
//! `O(N log^{d-2} N)` recursive merge — the same simplification the
//! original skyline paper's implementation makes; Godfrey et al.'s
//! observation that D&C deteriorates with dimensionality applies to both.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::dominates;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;

use crate::common::block_skyline;
use crate::SkylineAlgorithm;

/// Default block size under which recursion stops.
pub const DEFAULT_BLOCK: usize = 32;

/// Divide-and-conquer skyline.
#[derive(Debug, Clone, Copy)]
pub struct DivideAndConquer {
    /// Block size at which the recursion falls back to pairwise
    /// elimination.
    pub block: usize,
}

impl Default for DivideAndConquer {
    fn default() -> Self {
        DivideAndConquer {
            block: DEFAULT_BLOCK,
        }
    }
}

impl SkylineAlgorithm for DivideAndConquer {
    fn name(&self) -> &str {
        "D&C"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let ids: Vec<PointId> = (0..data.len() as PointId).collect();
        let mut skyline = self.recurse(data, ids, 0, metrics);
        skyline.sort_unstable();
        skyline
    }
}

impl DivideAndConquer {
    fn recurse(
        &self,
        data: &Dataset,
        ids: Vec<PointId>,
        depth: usize,
        metrics: &mut Metrics,
    ) -> Vec<PointId> {
        if ids.len() <= self.block.max(2) {
            return block_skyline(data, &ids, metrics);
        }
        let dims = data.dims();
        // Find a splittable dimension starting from the depth-rotated one:
        // a dimension splits if its value range is non-degenerate.
        let mut split: Option<(usize, f64)> = None;
        for offset in 0..dims {
            let dim = (depth + offset) % dims;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &id in &ids {
                let v = data.value(id, dim);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if lo < hi {
                // The midpoint can round up to exactly `hi` when lo and
                // hi are adjacent floats, which would leave the high
                // partition empty and recurse forever; fall back to
                // splitting at `lo` (points equal to lo go low, the rest
                // high — both non-empty because lo < hi).
                let mut mid = lo + (hi - lo) / 2.0;
                if mid >= hi {
                    mid = lo;
                }
                split = Some((dim, mid));
                break;
            }
        }
        let Some((dim, mid)) = split else {
            // Every point is identical in every dimension: all are
            // mutually non-dominating duplicates.
            return ids;
        };
        let (low, high): (Vec<PointId>, Vec<PointId>) =
            ids.into_iter().partition(|&id| data.value(id, dim) <= mid);
        debug_assert!(!low.is_empty() && !high.is_empty());

        let sky_low = self.recurse(data, low, depth + 1, metrics);
        let sky_high = self.recurse(data, high, depth + 1, metrics);

        // Merge: a high point survives iff no low skyline point dominates
        // it. Low points have a strictly smaller value on `dim` than every
        // high point, so the reverse direction is impossible.
        let mut merged = sky_low.clone();
        'high: for &q in &sky_high {
            let q_row = data.point(q);
            for &p in &sky_low {
                metrics.count_dt();
                if dominates(data.point(p), q_row) {
                    continue 'high;
                }
            }
            merged.push(q);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    #[test]
    fn matches_bnl_small() {
        let data =
            Dataset::from_rows(&[[1.0, 9.0], [2.0, 7.0], [3.0, 8.0], [9.0, 1.0], [5.0, 5.0]])
                .unwrap();
        assert_eq!(
            DivideAndConquer::default().compute(&data),
            Bnl.compute(&data)
        );
    }

    #[test]
    fn matches_bnl_with_forced_recursion() {
        // Deterministic pseudo-random 3-D cloud larger than the block.
        let rows: Vec<[f64; 3]> = (0..300)
            .map(|i| {
                let x = ((i * 37) % 101) as f64;
                let y = ((i * 73) % 97) as f64;
                let z = ((i * 11) % 89) as f64;
                [x, y, z]
            })
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let dnc = DivideAndConquer { block: 8 };
        assert_eq!(dnc.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn all_identical_points() {
        let data = Dataset::from_rows(&vec![[1.0, 2.0]; 100]).unwrap();
        let dnc = DivideAndConquer { block: 4 };
        let sky = dnc.compute(&data);
        assert_eq!(
            sky.len(),
            100,
            "identical points are mutual skyline duplicates"
        );
    }

    #[test]
    fn ties_on_split_dimension() {
        // Half the points share the split value; correctness must not
        // depend on where ties land.
        let mut rows = Vec::new();
        for i in 0..60 {
            rows.push([(i % 2) as f64, (60 - i) as f64, i as f64]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let dnc = DivideAndConquer { block: 4 };
        assert_eq!(dnc.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(vec![], 2).unwrap();
        assert!(DivideAndConquer::default().compute(&data).is_empty());
    }
}

//! Multi-core skyline computation (partition → local skyline → merge),
//! in the spirit of the shared-memory parallelisation that Chester et
//! al. (ICDE 2015) applied to skyline computation — the same work the
//! paper's real datasets come from.
//!
//! Two engines live here:
//!
//! - [`ParallelSfs`]: the classic partition-merge skyline with a plain
//!   sum-presorted filter per chunk and one more presorted filter over
//!   the union of local skylines.
//! - [`ParallelBoosted`]: the subset-boosted generalisation. The dataset
//!   is split into contiguous shards; each worker runs the *full* boost
//!   pipeline (pivot merge → presort → subset-index filter) of the
//!   wrapped algorithm on its shard, and the local skylines are merged
//!   with a final shared subset-index pass — so the paper's `O((d/2)²)`
//!   expected query advantage survives both phases.
//!
//! ## Exactness
//!
//! Dominance is shard-oblivious: if `p ≺ q` and both land in the same
//! shard, `q` dies in that shard's local computation; if they land in
//! different shards, `p` survives its own shard (or some dominator of
//! `p` from `p`'s shard does, and dominance is transitive) and kills `q`
//! in the merge. Hence every global skyline point is a local skyline
//! point of its shard, and filtering the union of local skylines yields
//! exactly the global skyline — duplicates included, since duplicates
//! never dominate each other.
//!
//! The merge pass exploits one more shard fact: two local skyline points
//! of the *same* shard are mutually non-dominated by construction, so a
//! merge candidate only ever needs dominance tests against points from
//! *other* shards. [`ParallelBoosted`] therefore keeps one subset
//! container per shard and queries all containers except the testing
//! point's own — same candidates semantics (Lemma 5.1), strictly fewer
//! dominance tests than a single shared container.

use std::thread;
use std::time::Instant;

use skyline_core::cancel::{CancelToken, Cancelled};
use skyline_core::dataset::Dataset;
use skyline_core::dominance::lex_cmp;
use skyline_core::metrics::Metrics;
use skyline_core::point::{coordinate_sum, max_coordinate, PointId};
use skyline_core::shard_merge::{merge_shard_skylines, EliteRef, MergeEntry, NO_SHARD};
use skyline_core::subspace::Subspace;
use skyline_obs::{Event, NoopRecorder, Recorder};

use crate::common::presorted_filter_cancel;
use crate::SkylineAlgorithm;

/// Resolve a requested worker count against the dataset size.
///
/// `requested == 0` means "auto": one worker per available CPU, clamped
/// so tiny inputs do not spawn workers for sub-1024-point chunks. An
/// explicit `requested > 0` is honoured as given (the caller asked for
/// that sharding), clamped only to `[1, n]` so every worker owns at
/// least one point.
fn resolve_workers(requested: usize, n: usize) -> usize {
    if requested == 0 {
        let hw = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        hw.clamp(1, n.div_ceil(1024).max(1))
    } else {
        requested.clamp(1, n.max(1))
    }
}

/// Parallel sort-filter skyline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelSfs {
    /// Worker count; 0 (the default) = one per available CPU.
    pub threads: usize,
}

impl ParallelSfs {
    fn worker_count(&self, n: usize) -> usize {
        resolve_workers(self.threads, n)
    }

    /// The partition-merge pipeline with cooperative cancellation: every
    /// worker's presorted filter checks the shared token, as does the
    /// final merge filter.
    fn compute_cancel_inner(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        let n = data.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.worker_count(n);
        let chunk = n.div_ceil(workers);

        // Phase 1: local skylines, one worker per chunk.
        let mut locals: Vec<(Vec<PointId>, Metrics)> = Vec::with_capacity(workers);
        let mut cancelled = false;
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    let mut local_metrics = Metrics::new();
                    let mut ids: Vec<PointId> = (lo as u32..hi as u32).collect();
                    ids.sort_unstable_by(|&a, &b| {
                        coordinate_sum(data.point(a))
                            .total_cmp(&coordinate_sum(data.point(b)))
                            .then_with(|| lex_cmp(data.point(a), data.point(b)))
                            .then(a.cmp(&b))
                    });
                    presorted_filter_cancel(data, &ids, &mut local_metrics, cancel)
                        .map(|local| (local, local_metrics))
                }));
            }
            // Join every worker even when one reports cancellation: all of
            // them share the token, so the stragglers abort promptly.
            for h in handles {
                match h.join().expect("skyline worker panicked") {
                    Ok(pair) => locals.push(pair),
                    Err(Cancelled) => cancelled = true,
                }
            }
        });
        if cancelled {
            return Err(Cancelled);
        }

        // Phase 2: merge the local skylines with one more presorted
        // filter over their union.
        let mut merged: Vec<PointId> = Vec::new();
        for (local, local_metrics) in &locals {
            merged.extend_from_slice(local);
            metrics.absorb(local_metrics);
        }
        merged.sort_unstable_by(|&a, &b| {
            coordinate_sum(data.point(a))
                .total_cmp(&coordinate_sum(data.point(b)))
                .then_with(|| lex_cmp(data.point(a), data.point(b)))
                .then(a.cmp(&b))
        });
        let mut skyline = presorted_filter_cancel(data, &merged, metrics, cancel)?;
        skyline.sort_unstable();
        Ok(skyline)
    }
}

impl SkylineAlgorithm for ParallelSfs {
    fn name(&self) -> &str {
        "P-SFS"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        self.compute_cancel_inner(data, metrics, &CancelToken::none())
            .expect("the none token never cancels")
    }

    fn compute_cancellable(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        self.compute_cancel_inner(data, metrics, cancel)
    }
}

/// One worker's slice of a [`ParallelBoosted`] run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// First point id of the shard (inclusive).
    pub lo: usize,
    /// One past the last point id of the shard.
    pub hi: usize,
    /// The shard's local skyline, in *global* ids, ascending.
    pub skyline: Vec<PointId>,
    /// Counters the worker collected, isolated per shard.
    pub metrics: Metrics,
    /// The worker's own wall-clock, microseconds.
    pub elapsed_us: u64,
}

/// Detailed result of a [`ParallelBoosted`] run, exposing the per-shard
/// breakdown the differential tests assert over.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Worker count the run actually used.
    pub workers: usize,
    /// Per-shard local results, in shard order.
    pub shards: Vec<ShardRun>,
    /// Counters of the cross-shard merge pass alone.
    pub merge_metrics: Metrics,
    /// The global skyline, ascending. Equals the union of shard skylines
    /// filtered down by the merge pass.
    pub skyline: Vec<PointId>,
}

impl ParallelOutcome {
    /// All shard counters plus the merge counters folded into one
    /// [`Metrics`] — exactly what [`SkylineAlgorithm::compute_with_metrics`]
    /// reports for the same run.
    pub fn total_metrics(&self) -> Metrics {
        let mut total = Metrics::new();
        for s in &self.shards {
            total.absorb(&s.metrics);
        }
        total.absorb(&self.merge_metrics);
        total
    }
}

/// Subset-boosted partition-merge adapter: runs `A` per shard on scoped
/// threads, then merges the local skylines with a shared subset-index
/// pass (see the module docs for the exactness argument).
///
/// `A` is typically one of the paper's boosted trio ([`crate::boosted`])
/// — the prebuilt `P-SFS-Subset` / `P-SaLSa-Subset` / `P-SDI-Subset`
/// registry entries — but any exact [`SkylineAlgorithm`] works.
#[derive(Debug, Clone)]
pub struct ParallelBoosted<A> {
    inner: A,
    name: String,
    /// Worker count; 0 (the default) = one per available CPU.
    pub threads: usize,
}

impl<A: SkylineAlgorithm + Sync> ParallelBoosted<A> {
    /// Wrap `inner`, prefixing its display name with `P-`.
    pub fn new(inner: A, threads: usize) -> Self {
        let name = format!("P-{}", inner.name());
        ParallelBoosted {
            inner,
            name,
            threads,
        }
    }

    /// The wrapped sequential algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Run the engine and return the per-shard breakdown.
    ///
    /// Tracing layout: phase 1 under a `"parallel_scan"` span with one
    /// [`Event::ShardScan`] per shard (worker-measured durations), phase 2
    /// under a `"parallel_merge"` span (nesting `"sort"`/`"scan"` child
    /// spans) closed by one [`Event::ParallelMerge`] carrying the shard
    /// skyline sizes.
    pub fn compute_detailed(&self, data: &Dataset, rec: &mut dyn Recorder) -> ParallelOutcome {
        self.compute_detailed_cancel(data, rec, &CancelToken::none())
            .expect("the none token never cancels")
    }

    /// [`ParallelBoosted::compute_detailed`] with cooperative
    /// cancellation: every shard worker runs the wrapped algorithm's
    /// cancellable entry point against the shared token, and the
    /// cross-shard merge checks it every [`CHECK_STRIDE`] candidates.
    pub fn compute_detailed_cancel(
        &self,
        data: &Dataset,
        rec: &mut dyn Recorder,
        cancel: &CancelToken,
    ) -> Result<ParallelOutcome, Cancelled> {
        let n = data.len();
        if n == 0 {
            return Ok(ParallelOutcome {
                workers: 0,
                shards: Vec::new(),
                merge_metrics: Metrics::new(),
                skyline: Vec::new(),
            });
        }
        let workers = resolve_workers(self.threads, n);
        let chunk = n.div_ceil(workers);

        // Elite seeding: every worker's shard is prefixed with the same
        // few globally strongest points (smallest maximum coordinate —
        // the best universal dominators and stop points). They ride along
        // as ghosts: cross-shard dominated points die inside the shard
        // scan instead of surviving into the merge, and stop-point rules
        // fire against the *global* bound immediately. Ghosts are cut
        // from the local skyline afterwards, so exactness is untouched —
        // a global skyline point is never dominated by anything.
        let elites: Vec<PointId> = if workers > 1 {
            elite_points(data)
        } else {
            Vec::new()
        };
        let ghosts = elites.len();

        // Phase 1: the full boost pipeline per shard, one scoped worker
        // per chunk. Workers run untraced (a recorder is not shareable
        // across threads) but time themselves, so the emitted events are
        // exact.
        rec.span_start("parallel_scan");
        let mut shards: Vec<ShardRun> = Vec::with_capacity(workers);
        let mut cancelled = false;
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                let inner = &self.inner;
                let elites = &elites;
                handles.push(scope.spawn(move || {
                    let start = Instant::now();
                    let mut ids: Vec<PointId> = Vec::with_capacity(ghosts + (hi - lo));
                    ids.extend_from_slice(elites);
                    ids.extend(lo as u32..hi as u32);
                    let shard_data = data.project(&ids);
                    let mut metrics = Metrics::new();
                    let local = inner.compute_cancellable(&shard_data, &mut metrics, cancel)?;
                    // Drop the ghost prefix and shift shard-local offsets
                    // back to global ids.
                    let skyline: Vec<PointId> = local
                        .into_iter()
                        .filter(|&id| id as usize >= ghosts)
                        .map(|id| id - ghosts as u32 + lo as u32)
                        .collect();
                    Ok(ShardRun {
                        lo,
                        hi,
                        skyline,
                        metrics,
                        elapsed_us: start.elapsed().as_micros() as u64,
                    })
                }));
            }
            // Join every worker even on cancellation: the token is shared,
            // so the rest abort promptly rather than being abandoned.
            for h in handles {
                match h.join().expect("skyline worker panicked") {
                    Ok(shard) => shards.push(shard),
                    Err(Cancelled) => cancelled = true,
                }
            }
        });
        if cancelled {
            rec.span_end("parallel_scan");
            return Err(Cancelled);
        }
        if rec.enabled() {
            for (i, s) in shards.iter().enumerate() {
                rec.event(Event::ShardScan {
                    shard: i as u64,
                    lo: s.lo as u64,
                    hi: s.hi as u64,
                    skyline_size: s.skyline.len() as u64,
                    dominance_tests: s.metrics.dominance_tests,
                    elapsed_us: s.elapsed_us,
                });
            }
        }
        rec.span_end("parallel_scan");

        let mut merge_metrics = Metrics::new();
        let skyline = if shards.len() == 1 {
            shards[0].skyline.clone()
        } else {
            rec.span_start("parallel_merge");
            let merged = merge_shards(data, &shards, &elites, &mut merge_metrics, rec, cancel);
            rec.span_end("parallel_merge");
            merged?
        };
        if rec.enabled() {
            rec.event(Event::ParallelMerge {
                shard_skylines: shards.iter().map(|s| s.skyline.len() as u64).collect(),
                candidates: shards.iter().map(|s| s.skyline.len() as u64).sum(),
                skyline_size: skyline.len() as u64,
                dominance_tests: merge_metrics.dominance_tests,
            });
        }
        Ok(ParallelOutcome {
            workers: shards.len(),
            shards,
            merge_metrics,
            skyline,
        })
    }
}

/// How many elite points each shard is seeded with (ghost prefix).
const ELITE_SEEDS: usize = 16;

/// The globally strongest points by maximum coordinate: the best
/// universal dominators (`maxC(p) ≤ minC(q)` proves `p ⪯ q`) and the
/// strongest stop-point candidates. `O(n)` selection, no full sort.
fn elite_points(data: &Dataset) -> Vec<PointId> {
    let count = ELITE_SEEDS.min(data.len() / 8);
    if count == 0 {
        return Vec::new();
    }
    let mut keyed: Vec<(f64, PointId)> = (0..data.len() as u32)
        .map(|id| (max_coordinate(data.point(id)), id))
        .collect();
    keyed.select_nth_unstable_by(count - 1, |a, b| a.0.total_cmp(&b.0));
    keyed.truncate(count);
    keyed.into_iter().map(|(_, id)| id).collect()
}

/// The shared subset-index merge pass over the union of local skylines —
/// a thin adapter over [`skyline_core::shard_merge::merge_shard_skylines`],
/// which the cluster coordinator reuses verbatim.
///
/// The elite set doubles as the subspace reference (tagged [`NO_SHARD`]
/// so every candidate is referenced against every elite): every union
/// point gets `D_{q≺E} = ∪ₑ D_{q≺e}`, sound for Lemma 5.1 under *any*
/// shared reference set. See the core module docs for the presort, the
/// per-shard containers, and the stop-point rule.
fn merge_shards(
    data: &Dataset,
    shards: &[ShardRun],
    elites: &[PointId],
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<Vec<PointId>, Cancelled> {
    let mut entries: Vec<MergeEntry> =
        Vec::with_capacity(shards.iter().map(|s| s.skyline.len()).sum());
    for (i, shard) in shards.iter().enumerate() {
        for &q in &shard.skyline {
            entries.push(MergeEntry {
                key: q as u64,
                shard: i as u32,
                premask: Subspace::from_bits(0),
            });
        }
    }
    let elite_refs: Vec<EliteRef> = elites
        .iter()
        .map(|&e| EliteRef {
            shard: NO_SHARD,
            row: data.point(e),
        })
        .collect();
    let merged = merge_shard_skylines(
        data.dims(),
        shards.len(),
        &entries,
        &elite_refs,
        |k| data.point(k as u32),
        metrics,
        rec,
        cancel,
    )?;
    Ok(merged.into_iter().map(|k| k as PointId).collect())
}

impl<A: SkylineAlgorithm + Sync> SkylineAlgorithm for ParallelBoosted<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        self.compute_traced(data, metrics, &mut NoopRecorder)
    }

    fn compute_cancellable(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        cancel: &CancelToken,
    ) -> Result<Vec<PointId>, Cancelled> {
        let outcome = self.compute_detailed_cancel(data, &mut NoopRecorder, cancel)?;
        metrics.absorb(&outcome.total_metrics());
        Ok(outcome.skyline)
    }

    fn compute_traced(
        &self,
        data: &Dataset,
        metrics: &mut Metrics,
        rec: &mut dyn Recorder,
    ) -> Vec<PointId> {
        let outcome = self.compute_detailed(data, rec);
        metrics.absorb(&outcome.total_metrics());
        outcome.skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;
    use crate::boosted::{SalsaSubset, SdiSubset, SfsSubset};
    use skyline_obs::MemoryRecorder;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 23 + k * 41) * 2654435761usize) % 887) as f64 / 887.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let data = pseudo_random_dataset(5000, 5);
        let expected = Bnl.compute(&data);
        for threads in [1usize, 2, 3, 8] {
            let algo = ParallelSfs { threads };
            assert_eq!(algo.compute(&data), expected, "threads={threads}");
        }
    }

    #[test]
    fn default_uses_available_parallelism() {
        let data = pseudo_random_dataset(4000, 4);
        assert_eq!(ParallelSfs::default().compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn auto_mode_does_not_over_spawn_on_tiny_inputs() {
        let data = pseudo_random_dataset(10, 3);
        let algo = ParallelSfs::default();
        assert_eq!(algo.worker_count(data.len()), 1);
        assert_eq!(algo.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn explicit_thread_count_is_honoured_below_the_auto_clamp() {
        // Regression: the auto clamp `n.div_ceil(1024)` used to silently
        // override an explicit thread count on small inputs.
        let algo = ParallelSfs { threads: 4 };
        assert_eq!(algo.worker_count(100), 4, "n < 1024 must still shard x4");
        assert_eq!(algo.worker_count(2000), 4);
        // Still never more workers than points.
        assert_eq!(algo.worker_count(3), 3);
        let data = pseudo_random_dataset(100, 4);
        assert_eq!(algo.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn empty_and_duplicates() {
        let empty = Dataset::from_flat(vec![], 3).unwrap();
        assert!(ParallelSfs::default().compute(&empty).is_empty());
        let dup = Dataset::from_rows(&vec![[1.0, 2.0]; 100]).unwrap();
        let sky = ParallelSfs { threads: 4 }.compute(&dup);
        assert_eq!(sky.len(), 100);
    }

    #[test]
    fn metrics_accumulate_across_workers() {
        let data = pseudo_random_dataset(3000, 4);
        let mut m = Metrics::new();
        let _ = ParallelSfs { threads: 4 }.compute_with_metrics(&data, &mut m);
        assert!(m.dominance_tests > 0);
    }

    #[test]
    fn boosted_engines_match_oracle_across_thread_counts() {
        let data = pseudo_random_dataset(2000, 5);
        let expected = Bnl.compute(&data);
        for threads in [1usize, 2, 3, 7] {
            assert_eq!(
                ParallelBoosted::new(SfsSubset::default(), threads).compute(&data),
                expected,
                "P-SFS-Subset threads={threads}"
            );
            assert_eq!(
                ParallelBoosted::new(SalsaSubset::default(), threads).compute(&data),
                expected,
                "P-SaLSa-Subset threads={threads}"
            );
            assert_eq!(
                ParallelBoosted::new(SdiSubset::default(), threads).compute(&data),
                expected,
                "P-SDI-Subset threads={threads}"
            );
        }
    }

    #[test]
    fn cancellable_runs_match_plain_and_honour_the_token() {
        let data = pseudo_random_dataset(2000, 4);
        let expected = Bnl.compute(&data);
        let engines: Vec<Box<dyn SkylineAlgorithm>> = vec![
            Box::new(ParallelSfs { threads: 3 }),
            Box::new(ParallelBoosted::new(SfsSubset::default(), 3)),
            Box::new(ParallelBoosted::new(SdiSubset::default(), 3)),
        ];
        for algo in engines {
            let mut m = Metrics::new();
            let sky = algo
                .compute_cancellable(&data, &mut m, &CancelToken::none())
                .expect("none token never cancels");
            assert_eq!(sky, expected, "{}", algo.name());
            let token = CancelToken::manual();
            token.cancel();
            let mut m2 = Metrics::new();
            assert!(
                algo.compute_cancellable(&data, &mut m2, &token).is_err(),
                "{} must honour a cancelled token",
                algo.name()
            );
        }
    }

    #[test]
    fn names_carry_the_parallel_prefix() {
        assert_eq!(
            ParallelBoosted::new(SfsSubset::default(), 2).name(),
            "P-SFS-Subset"
        );
        assert_eq!(
            ParallelBoosted::new(SdiSubset::default(), 0).name(),
            "P-SDI-Subset"
        );
    }

    #[test]
    fn detailed_outcome_is_internally_consistent() {
        let data = pseudo_random_dataset(1500, 4);
        let engine = ParallelBoosted::new(SfsSubset::default(), 3);
        let outcome = engine.compute_detailed(&data, &mut NoopRecorder);
        assert_eq!(outcome.workers, 3);
        assert_eq!(outcome.shards.len(), 3);
        // Shards tile [0, n) without gaps or overlap.
        let mut expected_lo = 0usize;
        for s in &outcome.shards {
            assert_eq!(s.lo, expected_lo);
            assert!(s.hi > s.lo);
            expected_lo = s.hi;
            // Every local id lies inside the shard.
            assert!(s
                .skyline
                .iter()
                .all(|&id| (id as usize) >= s.lo && (id as usize) < s.hi));
        }
        assert_eq!(expected_lo, data.len());
        // The summed per-shard metrics plus the merge metrics are exactly
        // what the plain entry point reports.
        let mut via_plain = Metrics::new();
        let sky_plain = engine.compute_with_metrics(&data, &mut via_plain);
        assert_eq!(sky_plain, outcome.skyline);
        assert_eq!(via_plain, outcome.total_metrics());
    }

    /// Verbatim copy of `merge_shards` as it stood before the merge was
    /// lifted into `skyline_core::shard_merge` — the oracle pinning the
    /// extraction: identical skylines *and* identical counter values.
    fn legacy_merge_shards(
        data: &Dataset,
        shards: &[ShardRun],
        elites: &[PointId],
        metrics: &mut Metrics,
    ) -> Vec<PointId> {
        use skyline_core::container::{SkylineContainer, SubsetContainer};
        use skyline_core::dominance::{dominates, dominating_subspace, points_equal};
        use skyline_core::point::min_coordinate;

        let dims = data.dims();
        let mut entries: Vec<(PointId, u32, Subspace)> = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            'points: for &q in &shard.skyline {
                let q_row = data.point(q);
                let mut sub = Subspace::from_bits(0);
                for &e in elites {
                    metrics.count_dt();
                    let d = dominating_subspace(q_row, data.point(e));
                    if d.is_empty() && !points_equal(q_row, data.point(e)) {
                        continue 'points;
                    }
                    sub = sub.union(d);
                }
                entries.push((q, i as u32, sub));
            }
        }
        entries.sort_unstable_by(|&(a, _, _), &(b, _, _)| {
            let (pa, pb) = (data.point(a), data.point(b));
            min_coordinate(pa)
                .total_cmp(&min_coordinate(pb))
                .then_with(|| coordinate_sum(pa).total_cmp(&coordinate_sum(pb)))
                .then_with(|| lex_cmp(pa, pb))
        });
        let mut skyline: Vec<PointId> = Vec::new();
        let mut best_max = f64::INFINITY;
        let mut containers: Vec<SubsetContainer> = (0..shards.len())
            .map(|_| SubsetContainer::new(dims))
            .collect();
        let mut candidates: Vec<PointId> = Vec::new();
        for (scanned, &(q, q_shard, q_sub)) in entries.iter().enumerate() {
            let q_row = data.point(q);
            if min_coordinate(q_row) > best_max {
                metrics.stop_pruned += (entries.len() - scanned) as u64;
                break;
            }
            let mut dominated = false;
            'shards: for (s, container) in containers.iter().enumerate() {
                if s == q_shard as usize || container.is_empty() {
                    continue;
                }
                candidates.clear();
                container.candidates_into(q_sub, &mut candidates, metrics);
                for &c in &candidates {
                    metrics.count_dt();
                    if dominates(data.point(c), q_row) {
                        dominated = true;
                        break 'shards;
                    }
                }
            }
            best_max = best_max.min(max_coordinate(q_row));
            if !dominated {
                containers[q_shard as usize].put(q, q_sub, metrics);
                skyline.push(q);
            }
        }
        skyline.sort_unstable();
        skyline
    }

    #[test]
    fn extracted_merge_matches_the_pre_refactor_path_exactly() {
        for (n, d, threads) in [(1500, 4, 3), (2000, 5, 4), (900, 6, 2), (1200, 3, 5)] {
            let data = pseudo_random_dataset(n, d);
            let engine = ParallelBoosted::new(SfsSubset::default(), threads);
            let outcome = engine.compute_detailed(&data, &mut NoopRecorder);
            let elites = elite_points(&data);
            let mut legacy_metrics = Metrics::new();
            let legacy = legacy_merge_shards(&data, &outcome.shards, &elites, &mut legacy_metrics);
            assert_eq!(outcome.skyline, legacy, "n={n} d={d} threads={threads}");
            assert_eq!(
                outcome.merge_metrics, legacy_metrics,
                "merge counters drifted for n={n} d={d} threads={threads}"
            );
        }
    }

    #[test]
    fn shard_duplicates_survive_the_merge() {
        // The same point in every shard: all copies are skyline points.
        let mut rows = vec![[0.1, 0.9], [0.9, 0.1]];
        for _ in 0..40 {
            rows.push([0.5, 0.5]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let expected = Bnl.compute(&data);
        for threads in [2usize, 3, 5] {
            let engine = ParallelBoosted::new(SdiSubset::default(), threads);
            assert_eq!(engine.compute(&data), expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_dataset_yields_empty_outcome() {
        let empty = Dataset::from_flat(vec![], 3).unwrap();
        let engine = ParallelBoosted::new(SfsSubset::default(), 4);
        let outcome = engine.compute_detailed(&empty, &mut NoopRecorder);
        assert_eq!(outcome.workers, 0);
        assert!(outcome.skyline.is_empty());
        assert!(outcome.shards.is_empty());
    }

    #[test]
    fn traced_run_emits_shard_and_merge_events() {
        let data = pseudo_random_dataset(1200, 4);
        let engine = ParallelBoosted::new(SfsSubset::default(), 3);
        let mut rec = MemoryRecorder::new();
        let mut m = Metrics::new();
        let sky = engine.compute_traced(&data, &mut m, &mut rec);
        assert_eq!(sky, Bnl.compute(&data));
        assert!(rec.open_spans().is_empty(), "unbalanced spans");
        let shard_events: Vec<&Event> = rec
            .events()
            .filter(|e| matches!(e, Event::ShardScan { .. }))
            .collect();
        assert_eq!(shard_events.len(), 3);
        let merge_event = rec
            .events()
            .find(|e| matches!(e, Event::ParallelMerge { .. }))
            .expect("parallel_merge event");
        if let Event::ParallelMerge {
            shard_skylines,
            skyline_size,
            ..
        } = merge_event
        {
            assert_eq!(shard_skylines.len(), 3);
            assert_eq!(*skyline_size, sky.len() as u64);
        }
    }
}

//! Multi-core skyline computation (partition → local skyline → merge),
//! in the spirit of the shared-memory parallelisation that Chester et
//! al. (ICDE 2015) applied to skyline computation — the same work the
//! paper's real datasets come from.
//!
//! The dataset is split into `threads` contiguous chunks; each worker
//! computes its chunk's local skyline with a sum-presorted filter, and
//! the local skylines are merged with one final presorted filter. Every
//! global skyline point is a local skyline point of its chunk, so the
//! merge is exact. Dominance tests from all workers are summed into the
//! caller's [`Metrics`].

use std::thread;

use skyline_core::dataset::Dataset;
use skyline_core::dominance::lex_cmp;
use skyline_core::metrics::Metrics;
use skyline_core::point::{coordinate_sum, PointId};

use crate::common::presorted_filter;
use crate::SkylineAlgorithm;

/// Parallel sort-filter skyline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelSfs {
    /// Worker count; 0 (the default) = one per available CPU.
    pub threads: usize,
}

impl ParallelSfs {
    fn worker_count(&self, n: usize) -> usize {
        let hw = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let t = if self.threads == 0 { hw } else { self.threads };
        // No point spawning workers for tiny chunks.
        t.clamp(1, n.div_ceil(1024).max(1))
    }
}

impl SkylineAlgorithm for ParallelSfs {
    fn name(&self) -> &str {
        "P-SFS"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let n = data.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.worker_count(n);
        let chunk = n.div_ceil(workers);

        // Phase 1: local skylines, one worker per chunk.
        let mut locals: Vec<(Vec<PointId>, Metrics)> = Vec::with_capacity(workers);
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    let mut local_metrics = Metrics::new();
                    let mut ids: Vec<PointId> = (lo as u32..hi as u32).collect();
                    ids.sort_unstable_by(|&a, &b| {
                        coordinate_sum(data.point(a))
                            .total_cmp(&coordinate_sum(data.point(b)))
                            .then_with(|| lex_cmp(data.point(a), data.point(b)))
                            .then(a.cmp(&b))
                    });
                    let local = presorted_filter(data, &ids, &mut local_metrics);
                    (local, local_metrics)
                }));
            }
            for h in handles {
                locals.push(h.join().expect("skyline worker panicked"));
            }
        });

        // Phase 2: merge the local skylines with one more presorted
        // filter over their union.
        let mut merged: Vec<PointId> = Vec::new();
        for (local, local_metrics) in &locals {
            merged.extend_from_slice(local);
            metrics.absorb(local_metrics);
        }
        merged.sort_unstable_by(|&a, &b| {
            coordinate_sum(data.point(a))
                .total_cmp(&coordinate_sum(data.point(b)))
                .then_with(|| lex_cmp(data.point(a), data.point(b)))
                .then(a.cmp(&b))
        });
        let mut skyline = presorted_filter(data, &merged, metrics);
        skyline.sort_unstable();
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    fn pseudo_random_dataset(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 23 + k * 41) * 2654435761usize) % 887) as f64 / 887.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let data = pseudo_random_dataset(5000, 5);
        let expected = Bnl.compute(&data);
        for threads in [1usize, 2, 3, 8] {
            let algo = ParallelSfs { threads };
            assert_eq!(algo.compute(&data), expected, "threads={threads}");
        }
    }

    #[test]
    fn default_uses_available_parallelism() {
        let data = pseudo_random_dataset(4000, 4);
        assert_eq!(ParallelSfs::default().compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn small_inputs_do_not_over_spawn() {
        let data = pseudo_random_dataset(10, 3);
        let algo = ParallelSfs { threads: 64 };
        assert_eq!(algo.worker_count(data.len()), 1);
        assert_eq!(algo.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn empty_and_duplicates() {
        let empty = Dataset::from_flat(vec![], 3).unwrap();
        assert!(ParallelSfs::default().compute(&empty).is_empty());
        let dup = Dataset::from_rows(&vec![[1.0, 2.0]; 100]).unwrap();
        let sky = ParallelSfs { threads: 4 }.compute(&dup);
        assert_eq!(sky.len(), 100);
    }

    #[test]
    fn metrics_accumulate_across_workers() {
        let data = pseudo_random_dataset(3000, 4);
        let mut m = Metrics::new();
        let _ = ParallelSfs { threads: 4 }.compute_with_metrics(&data, &mut m);
        assert!(m.dominance_tests > 0);
    }
}

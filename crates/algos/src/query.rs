//! A fluent query layer over the whole library — the entry point a
//! downstream application would typically use.
//!
//! ```
//! use skyline_algos::query::SkylineQuery;
//!
//! // Laptops: price ↓, battery hours ↑, weight ↓.
//! let rows = vec![
//!     vec![999.0, 10.0, 1.4],
//!     vec![799.0, 8.0, 1.8],
//!     vec![999.0, 9.0, 1.5],   // dominated by the first laptop
//! ];
//! let result = SkylineQuery::new()
//!     .minimize()   // column 0: price
//!     .maximize()   // column 1: battery
//!     .minimize()   // column 2: weight
//!     .execute(&rows)
//!     .unwrap();
//! assert_eq!(result.ids, vec![0, 1]);
//! ```

use skyline_core::dataset::Dataset;
use skyline_core::error::{Error, Result};
use skyline_core::metrics::Metrics;
use skyline_core::point::{PointId, Preference};
use skyline_core::subspace::Subspace;

use crate::boosted::SdiSubset;
use crate::skyband::{k_skyband, BandPoint};
use crate::subspace_skyline::subspace_skyline;
use crate::SkylineAlgorithm;

/// Result of an executed [`SkylineQuery`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Row indexes of the answer, ascending.
    pub ids: Vec<PointId>,
    /// For k-skyband queries with `k > 1`: exact dominator counts,
    /// parallel to `ids`. Empty for plain skyline queries.
    pub dominator_counts: Vec<u32>,
    /// Counters collected during execution.
    pub metrics: Metrics,
}

/// Builder for skyline / subspace-skyline / k-skyband queries over raw
/// row data.
pub struct SkylineQuery {
    prefs: Vec<Preference>,
    subspace: Option<Subspace>,
    algorithm: Box<dyn SkylineAlgorithm>,
    band_k: usize,
}

impl Default for SkylineQuery {
    fn default() -> Self {
        SkylineQuery::new()
    }
}

impl SkylineQuery {
    /// A fresh query with no columns declared yet. The default executor
    /// is the paper's SDI-Subset with σ = round(d/3).
    pub fn new() -> Self {
        SkylineQuery {
            prefs: Vec::new(),
            subspace: None,
            algorithm: Box::new(SdiSubset::default()),
            band_k: 1,
        }
    }

    /// Declare the next column as minimised (e.g. price).
    #[must_use]
    pub fn minimize(mut self) -> Self {
        self.prefs.push(Preference::Min);
        self
    }

    /// Declare the next column as maximised (e.g. rating).
    #[must_use]
    pub fn maximize(mut self) -> Self {
        self.prefs.push(Preference::Max);
        self
    }

    /// Declare all columns at once.
    #[must_use]
    pub fn preferences(mut self, prefs: &[Preference]) -> Self {
        self.prefs = prefs.to_vec();
        self
    }

    /// Restrict the query to a subspace of the declared columns.
    #[must_use]
    pub fn subspace(mut self, subspace: Subspace) -> Self {
        self.subspace = Some(subspace);
        self
    }

    /// Use a specific algorithm instead of the default SDI-Subset.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Box<dyn SkylineAlgorithm>) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Ask for the k-skyband instead of the skyline (`k = 1`). The
    /// result then carries exact dominator counts.
    #[must_use]
    pub fn skyband(mut self, k: usize) -> Self {
        self.band_k = k;
        self
    }

    /// Execute over raw rows. Columns without a declared preference are
    /// an error, as are ragged rows and NaNs (validated by the dataset
    /// layer).
    pub fn execute<R: AsRef<[f64]>>(&self, rows: &[R]) -> Result<QueryResult> {
        if self.prefs.is_empty() {
            return Err(Error::ZeroDimensions);
        }
        let data = Dataset::from_rows_with_preferences(rows, &self.prefs)?;
        self.execute_on(&data)
    }

    /// Execute over an already-canonicalised dataset (preferences are
    /// assumed folded; the builder's preference list is only used for
    /// raw-row execution).
    pub fn execute_on(&self, data: &Dataset) -> Result<QueryResult> {
        let mut metrics = Metrics::new();
        // Subspace restriction applies first.
        let restricted;
        let target: &Dataset = match self.subspace {
            None => data,
            Some(sub) => {
                if sub.is_empty() || sub.dims().any(|d| d >= data.dims()) {
                    return Err(Error::TooManyDimensions {
                        requested: sub.dims().max().map_or(0, |d| d + 1),
                        max: data.dims(),
                    });
                }
                restricted = data.project_dims(sub);
                &restricted
            }
        };
        if self.band_k == 1 {
            let ids = match self.subspace {
                None => self.algorithm.compute_with_metrics(data, &mut metrics),
                Some(sub) => subspace_skyline(data, sub, self.algorithm.as_ref(), &mut metrics),
            };
            return Ok(QueryResult {
                ids,
                dominator_counts: Vec::new(),
                metrics,
            });
        }
        let band: Vec<BandPoint> = k_skyband(target, self.band_k, &mut metrics);
        Ok(QueryResult {
            ids: band.iter().map(|b| b.id).collect(),
            dominator_counts: band.iter().map(|b| b.dominators).collect(),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![10.0, 5.0, 3.0],
            vec![12.0, 7.0, 2.0],
            vec![10.0, 4.0, 3.0], // dominated by row 0 (maximised col 1)
            vec![15.0, 9.0, 1.0],
        ]
    }

    #[test]
    fn basic_mixed_preference_query() {
        let result = SkylineQuery::new()
            .minimize()
            .maximize()
            .minimize()
            .execute(&rows())
            .unwrap();
        assert_eq!(result.ids, vec![0, 1, 3]);
        assert!(result.dominator_counts.is_empty());
        assert!(result.metrics.dominance_tests > 0);
    }

    #[test]
    fn preferences_in_bulk() {
        use Preference::{Max, Min};
        let a = SkylineQuery::new()
            .preferences(&[Min, Max, Min])
            .execute(&rows())
            .unwrap();
        let b = SkylineQuery::new()
            .minimize()
            .maximize()
            .minimize()
            .execute(&rows())
            .unwrap();
        assert_eq!(a.ids, b.ids);
    }

    #[test]
    fn no_columns_is_an_error() {
        assert!(SkylineQuery::new().execute(&rows()).is_err());
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let result = SkylineQuery::new().minimize().execute(&rows());
        assert!(result.is_err());
    }

    #[test]
    fn custom_algorithm() {
        let result = SkylineQuery::new()
            .minimize()
            .maximize()
            .minimize()
            .algorithm(Box::new(Bnl))
            .execute(&rows())
            .unwrap();
        assert_eq!(result.ids, vec![0, 1, 3]);
    }

    #[test]
    fn subspace_query() {
        // Only price (col 0, minimised): rows 0 and 2 tie for the
        // minimum.
        let result = SkylineQuery::new()
            .minimize()
            .maximize()
            .minimize()
            .subspace(Subspace::singleton(0))
            .execute(&rows())
            .unwrap();
        assert_eq!(result.ids, vec![0, 2]);
    }

    #[test]
    fn out_of_range_subspace_is_an_error() {
        let result = SkylineQuery::new()
            .minimize()
            .maximize()
            .minimize()
            .subspace(Subspace::singleton(7))
            .execute(&rows());
        assert!(result.is_err());
    }

    #[test]
    fn skyband_query_carries_counts() {
        let chain: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, i as f64]).collect();
        let result = SkylineQuery::new()
            .minimize()
            .minimize()
            .skyband(3)
            .execute(&chain)
            .unwrap();
        assert_eq!(result.ids, vec![0, 1, 2]);
        assert_eq!(result.dominator_counts, vec![0, 1, 2]);
    }

    #[test]
    fn skyband_respects_subspace() {
        let result = SkylineQuery::new()
            .minimize()
            .maximize()
            .minimize()
            .subspace(Subspace::from_dims([0, 2]))
            .skyband(2)
            .execute(&rows())
            .unwrap();
        // Projection onto (price, weight): rows 0 and 2 are identical.
        assert!(result.ids.contains(&0) && result.ids.contains(&2));
        assert_eq!(result.ids.len(), result.dominator_counts.len());
    }

    #[test]
    fn execute_on_prefolded_dataset() {
        let data = Dataset::from_rows(&[[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]]).unwrap();
        let result = SkylineQuery::new().execute_on(&data).unwrap();
        assert_eq!(result.ids, vec![0, 1]);
    }
}

//! Shared helpers for the algorithm implementations.

use skyline_core::cancel::{CancelToken, Cancelled, CHECK_STRIDE};
use skyline_core::dataset::Dataset;
use skyline_core::dominance::{dominates, lex_cmp};
use skyline_core::metrics::Metrics;
use skyline_core::point::{coordinate_sum, min_coordinate, PointId};

/// Ids of all points sorted ascending by `sum` of coordinates — the
/// monotone presorting used by SFS and LESS. Ties cannot dominate each
/// other (dominance implies a strictly smaller sum), so any tie order is
/// correct; ids break ties for determinism.
pub fn order_by_sum(data: &Dataset) -> Vec<PointId> {
    let keys: Vec<f64> = data.iter().map(|(_, p)| coordinate_sum(p)).collect();
    let mut order: Vec<PointId> = (0..data.len() as PointId).collect();
    order.sort_unstable_by(|&a, &b| {
        keys[a as usize]
            .total_cmp(&keys[b as usize])
            // Rounding can collapse a dominator's strictly-smaller sum
            // into equality; the lexicographic tie-break keeps the
            // dominator first (see `lex_cmp`).
            .then_with(|| lex_cmp(data.point(a), data.point(b)))
            .then(a.cmp(&b))
    });
    order
}

/// Ids sorted ascending by `(minC, sum)` — SaLSa's presorting. `minC` is
/// monotone (`p ≺ q ⇒ minC(p) ≤ minC(q)`) and the `sum` tie-break makes
/// the combination strictly monotone.
pub fn order_by_min_coordinate(data: &Dataset) -> Vec<PointId> {
    let keys: Vec<(f64, f64)> = data
        .iter()
        .map(|(_, p)| (min_coordinate(p), coordinate_sum(p)))
        .collect();
    let mut order: Vec<PointId> = (0..data.len() as PointId).collect();
    order.sort_unstable_by(|&a, &b| {
        let (ka, kb) = (&keys[a as usize], &keys[b as usize]);
        ka.0.total_cmp(&kb.0)
            .then_with(|| ka.1.total_cmp(&kb.1))
            .then_with(|| lex_cmp(data.point(a), data.point(b)))
            .then(a.cmp(&b))
    });
    order
}

/// The core filter of every presorted scan: keep `id` if no confirmed
/// skyline point dominates it, confirming it otherwise. Returns the
/// skyline ids in confirmation order.
///
/// Precondition: `order` is ascending under a monotone key, so every
/// dominator of a point precedes it.
pub fn presorted_filter(data: &Dataset, order: &[PointId], metrics: &mut Metrics) -> Vec<PointId> {
    presorted_filter_cancel(data, order, metrics, &CancelToken::none())
        .expect("the none token never cancels")
}

/// [`presorted_filter`] with cooperative cancellation, checked every
/// [`CHECK_STRIDE`] points of the scan.
pub fn presorted_filter_cancel(
    data: &Dataset,
    order: &[PointId],
    metrics: &mut Metrics,
    cancel: &CancelToken,
) -> Result<Vec<PointId>, Cancelled> {
    let mut skyline: Vec<PointId> = Vec::new();
    for (scanned, &id) in order.iter().enumerate() {
        if scanned % CHECK_STRIDE == 0 {
            cancel.check()?;
        }
        let p = data.point(id);
        let mut dominated = false;
        for &s in &skyline {
            metrics.count_dt();
            if dominates(data.point(s), p) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            skyline.push(id);
        }
    }
    Ok(skyline)
}

/// Brute-force pairwise skyline of a subset of points — the base case of
/// the divide-and-conquer algorithms. Quadratic; only for small blocks.
pub fn block_skyline(data: &Dataset, ids: &[PointId], metrics: &mut Metrics) -> Vec<PointId> {
    let mut out: Vec<PointId> = Vec::new();
    'candidates: for &q in ids {
        let q_row = data.point(q);
        for &p in ids {
            if p == q {
                continue;
            }
            metrics.count_dt();
            if dominates(data.point(p), q_row) {
                continue 'candidates;
            }
        }
        out.push(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_rows(&[
            [3.0, 3.0], // sum 6, minC 3
            [1.0, 4.0], // sum 5, minC 1
            [4.0, 0.5], // sum 4.5, minC 0.5
            [1.0, 4.0], // duplicate of 1
        ])
        .unwrap()
    }

    #[test]
    fn sum_order() {
        assert_eq!(order_by_sum(&data()), vec![2, 1, 3, 0]);
    }

    #[test]
    fn min_coordinate_order() {
        assert_eq!(order_by_min_coordinate(&data()), vec![2, 1, 3, 0]);
    }

    #[test]
    fn min_coordinate_tie_break_by_sum() {
        let ds = Dataset::from_rows(&[
            [1.0, 9.0], // minC 1, sum 10
            [1.0, 2.0], // minC 1, sum 3
        ])
        .unwrap();
        assert_eq!(order_by_min_coordinate(&ds), vec![1, 0]);
    }

    #[test]
    fn presorted_filter_finds_skyline() {
        let ds = data();
        let order = order_by_sum(&ds);
        let mut m = Metrics::new();
        let mut sky = presorted_filter(&ds, &order, &mut m);
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1, 2, 3]);
        assert!(m.dominance_tests > 0);
    }

    #[test]
    fn block_skyline_keeps_duplicates() {
        let ds = data();
        let ids: Vec<PointId> = (0..4).collect();
        let mut m = Metrics::new();
        let mut sky = block_skyline(&ds, &ids, &mut m);
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1, 2, 3]);
    }

    #[test]
    fn block_skyline_empty_input() {
        let ds = data();
        let mut m = Metrics::new();
        assert!(block_skyline(&ds, &[], &mut m).is_empty());
    }
}

//! SaLSa — *Sort and Limit Skyline algorithm* (Bartolini, Ciaccia &
//! Patella, CIKM 2006 / TODS 2008).
//!
//! Like SFS, but with the `minC` sorting function (minimum coordinate,
//! ties broken by sum) and a *stop point*: among all points seen so far,
//! track the smallest maximum coordinate `maxC*`. As soon as the next
//! point's `minC` strictly exceeds `maxC*`, the tracked point dominates
//! every remaining point (its every coordinate is below their every
//! coordinate), so the scan terminates with the exact skyline without
//! reading the rest of the data.

use skyline_core::dataset::Dataset;
use skyline_core::dominance::dominates;
use skyline_core::metrics::Metrics;
use skyline_core::point::{max_coordinate, min_coordinate, PointId};

use crate::common::order_by_min_coordinate;
use crate::SkylineAlgorithm;

/// SaLSa: minC-presorted scan with a stop point.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaLSa;

impl SkylineAlgorithm for SaLSa {
    fn name(&self) -> &str {
        "SaLSa"
    }

    fn compute_with_metrics(&self, data: &Dataset, metrics: &mut Metrics) -> Vec<PointId> {
        let order = order_by_min_coordinate(data);
        // The skyline window is kept sorted ascending by maxC: balanced
        // points (strong dominators) are tested first, and the head of the
        // window is the stop-point candidate among skyline points.
        let mut window: Vec<(f64, PointId)> = Vec::new();
        let mut best_max = f64::INFINITY;
        for (scanned, &id) in order.iter().enumerate() {
            let p = data.point(id);
            if min_coordinate(p) > best_max {
                metrics.stop_pruned += (order.len() - scanned) as u64;
                break;
            }
            let maxc = max_coordinate(p);
            // `s ≺ p` requires `maxC(s) ≤ maxC(p)` (componentwise ≤
            // implies max ≤), so only the window prefix up to maxC(p) can
            // contain a dominator.
            let prefix = window.partition_point(|&(m, _)| m <= maxc);
            let mut dominated = false;
            for &(_, s) in &window[..prefix] {
                metrics.count_dt();
                if dominates(data.point(s), p) {
                    dominated = true;
                    break;
                }
            }
            best_max = best_max.min(maxc);
            if !dominated {
                let at = window.partition_point(|&(m, _)| m <= maxc);
                window.insert(at, (maxc, id));
            }
        }
        let mut skyline: Vec<PointId> = window.into_iter().map(|(_, id)| id).collect();
        skyline.sort_unstable();
        skyline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::Bnl;

    #[test]
    fn matches_bnl() {
        let data = Dataset::from_rows(&[
            [1.0, 9.0],
            [2.0, 7.0],
            [3.0, 8.0],
            [9.0, 1.0],
            [5.0, 5.0],
            [5.0, 5.0],
        ])
        .unwrap();
        assert_eq!(SaLSa.compute(&data), Bnl.compute(&data));
    }

    #[test]
    fn stop_point_fires_on_clustered_data() {
        // One balanced point near the origin dominates a distant cloud;
        // the cloud must be cut positionally, not tested.
        let mut rows = vec![[0.2, 0.3], [0.3, 0.2]];
        for i in 0..100 {
            rows.push([1.0 + i as f64, 2.0 + i as f64]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = SaLSa.compute_with_metrics(&data, &mut m);
        assert_eq!(sky, vec![0, 1]);
        assert_eq!(m.stop_pruned, 100);
        // Mean DT far below one test per point — SaLSa's signature on
        // easy data.
        assert!(m.mean_dominance_tests(data.len()) < 0.1);
    }

    #[test]
    fn stop_point_does_not_cut_duplicates_of_the_stopper() {
        // The stop condition is strict, so ties (including exact
        // duplicates of the stop point) are still scanned.
        let data = Dataset::from_rows(&[[0.5, 0.5], [0.5, 0.5], [0.5, 0.6]]).unwrap();
        assert_eq!(SaLSa.compute(&data), vec![0, 1]);
    }

    #[test]
    fn anti_correlated_line_never_stops_early() {
        let rows: Vec<[f64; 2]> = (0..20).map(|i| [i as f64, 19.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let sky = SaLSa.compute_with_metrics(&data, &mut m);
        assert_eq!(sky.len(), 20);
        assert_eq!(m.stop_pruned, 0);
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(vec![], 2).unwrap();
        assert!(SaLSa.compute(&data).is_empty());
    }
}

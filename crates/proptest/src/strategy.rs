//! The `Strategy` trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// deterministic function of the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.gen_below(span as u64)
                };
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident : $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_unit_tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (-3i8..5).generate(&mut r);
            assert!((-3..5).contains(&v));
            let u = (1usize..=64).generate(&mut r);
            assert!((1..=64).contains(&u));
            let f = (-5.0f64..5.0).generate(&mut r);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut r = rng();
        let doubled = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u32..4, 10u64..20, 0.0f64..1.0).generate(&mut r);
        assert!(a < 4);
        assert!((10..20).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }
}

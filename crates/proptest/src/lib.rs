//! In-tree stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! This workspace must build and test **offline**, so the real proptest
//! cannot be fetched. This shim re-implements the small API surface the
//! workspace's property suites use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, range/tuple/`vec`/`any` strategies, `prop_map`, and
//! `ProptestConfig::with_cases` — on top of a deterministic xoshiro256++
//! generator.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the exact generated input
//!   (plus the case number) instead of a minimised one.
//! - **Determinism.** Inputs derive from a fixed hash of the test name and
//!   the case index, so a failure always reproduces; there is no
//!   `proptest-regressions` persistence.
//! - Only the strategy combinators used in this workspace exist.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The items a property test file conventionally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declare a block of property tests.
///
/// Mirrors proptest's macro shape: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments use `name in strategy` binders. Each function expands
/// to a plain `#[test]` that draws `cases` inputs and runs the body on
/// each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                ($($strat,)+),
                move |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Assert inside a property body; on failure the current case is rejected
/// with the formatted message (instead of panicking without input context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

//! Deterministic case generation and execution.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Runner configuration; only the knob the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// A rejected test case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator handed to strategies: xoshiro256++ seeded from
/// the test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one `(test, case)` pair. FNV-1a over the test name keeps
    /// different tests on unrelated streams.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        TestRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` below `bound` (unbiased; `bound` must be non-zero).
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drive one property: generate `config.cases` inputs from `strategy` and
/// run `body` on each. A `prop_assert` failure or a panic inside the body
/// reports the offending input and case number, then panics.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut body: F)
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        let input = strategy.generate(&mut rng);
        let shown = format!("{input:?}");
        match catch_unwind(AssertUnwindSafe(|| body(input))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "property `{name}` failed at case {case}/{}: {}\n  input: {shown}",
                config.cases,
                e.message()
            ),
            Err(panic) => {
                eprintln!(
                    "property `{name}` panicked at case {case}/{}\n  input: {shown}",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::for_case("arbitrary_bool", 0);
        let flips: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(flips.iter().any(|&b| b));
        assert!(flips.iter().any(|&b| !b));
    }

    #[test]
    fn any_is_deterministic_per_rng_state() {
        let mut a = TestRng::for_case("arbitrary_det", 3);
        let mut b = TestRng::for_case("arbitrary_det", 3);
        for _ in 0..32 {
            assert_eq!(any::<u64>().generate(&mut a), any::<u64>().generate(&mut b));
        }
    }
}

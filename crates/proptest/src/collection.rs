//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy generating a `Vec` of `element` draws with a length inside
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.gen_below((self.size.hi - self.size.lo + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::for_case("collection_lengths", 0);
        for _ in 0..200 {
            assert_eq!(vec(0u32..5, 7usize).generate(&mut rng).len(), 7);
            let v = vec(0u32..5, 1..4usize).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = vec(0u32..5, 2..=3usize).generate(&mut rng);
            assert!((2..=3).contains(&w.len()));
        }
    }

    #[test]
    fn nested_vec_generates_rows() {
        let mut rng = TestRng::for_case("collection_nested", 0);
        let rows = vec(vec(0i8..6, 3usize), 1..10usize).generate(&mut rng);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.len() == 3));
        assert!(rows.iter().flatten().all(|v| (0..6).contains(v)));
    }
}

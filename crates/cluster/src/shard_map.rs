//! Deterministic row placement and the coordinator's per-dataset id
//! bookkeeping.
//!
//! Every row gets a coordinator-assigned **global id** (dense, in
//! arrival order, so a cluster answer lines up id-for-id with a
//! single-node server fed the same rows). The owning shard is a pure
//! function of that id — [`shard_of`] — so placement needs no lookup
//! table and any replica of the computation agrees. What *does* need
//! state is the reverse direction: shards speak their own local handle
//! space, so the coordinator keeps, per dataset, the handle→global map
//! for each shard (to translate scatter-gather results) and the
//! global→(shard, handle) map (to route removals).

use std::collections::HashMap;
use std::sync::Arc;

/// The shard that owns global row id `global_id` in a cluster of
/// `shard_count` shards. SplitMix64 finalizer over the id: sequential
/// ids spread uniformly, and the map is stable across restarts and
/// replicas.
pub fn shard_of(global_id: u64, shard_count: usize) -> usize {
    assert!(shard_count > 0, "cluster needs at least one shard");
    (splitmix64(global_id) % shard_count as u64) as usize
}

/// SplitMix64 output function: a full-period bijective mixer, the
/// standard cheap way to turn a counter into something hash-like.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Coordinator-side state for one logical dataset.
///
/// The per-shard handle maps sit behind `Arc` so a `/skyline` query can
/// snapshot them without cloning point-count-sized tables while holding
/// the registry lock; mutations copy-on-write via [`Arc::make_mut`].
#[derive(Debug, Clone)]
pub struct DatasetState {
    /// Dimensionality, fixed at creation.
    pub dims: usize,
    /// Bumped once per successful mutation (create = 1).
    pub version: u64,
    /// Next global id to hand out. Never reused, so removals leave
    /// holes rather than re-keying surviving rows.
    pub next_global: u64,
    /// Live (not removed) rows across all shards.
    pub live: usize,
    /// Global id → (owning shard, shard-local handle).
    pub locations: HashMap<u64, (u32, u32)>,
    /// Per shard: shard-local handle → global id.
    pub handle_to_global: Vec<Arc<HashMap<u32, u64>>>,
    /// Per-shard mutation counters: bumped inside [`record_insert`] /
    /// [`record_remove`] for every shard a mutation actually touched, so
    /// manifest replay reproduces them exactly. A shard whose counter is
    /// unchanged between two queries holds byte-identical rows, which is
    /// what lets the coordinator reuse its previous skyline answer.
    ///
    /// [`record_insert`]: DatasetState::record_insert
    /// [`record_remove`]: DatasetState::record_remove
    pub shard_versions: Vec<u64>,
}

impl DatasetState {
    /// Fresh, empty dataset over `shard_count` shards.
    pub fn new(dims: usize, shard_count: usize) -> DatasetState {
        DatasetState {
            dims,
            version: 1,
            next_global: 0,
            live: 0,
            locations: HashMap::new(),
            handle_to_global: (0..shard_count).map(|_| Arc::new(HashMap::new())).collect(),
            shard_versions: vec![0; shard_count],
        }
    }

    /// Record that `shard` accepted rows with these global ids and
    /// answered with these local handles (parallel arrays).
    pub fn record_insert(&mut self, shard: usize, globals: &[u64], handles: &[u32]) {
        debug_assert_eq!(globals.len(), handles.len());
        if globals.is_empty() {
            return;
        }
        let map = Arc::make_mut(&mut self.handle_to_global[shard]);
        for (&g, &h) in globals.iter().zip(handles) {
            self.locations.insert(g, (shard as u32, h));
            map.insert(h, g);
            self.next_global = self.next_global.max(g + 1);
        }
        self.live += globals.len();
        self.shard_versions[shard] += 1;
    }

    /// Drop these global ids from the maps, returning, per shard, the
    /// local handles to delete there. Unknown ids are ignored (idempotent
    /// replay). `self.live` is adjusted here; `version` is the caller's
    /// to bump once per acknowledged mutation.
    pub fn record_remove(&mut self, globals: &[u64]) -> Vec<Vec<u32>> {
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.handle_to_global.len()];
        for g in globals {
            if let Some((shard, handle)) = self.locations.remove(g) {
                Arc::make_mut(&mut self.handle_to_global[shard as usize]).remove(&handle);
                per_shard[shard as usize].push(handle);
                self.live -= 1;
            }
        }
        for (shard, handles) in per_shard.iter().enumerate() {
            if !handles.is_empty() {
                self.shard_versions[shard] += 1;
            }
        }
        per_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_roughly_balanced() {
        for shards in 1..=5usize {
            let mut counts = vec![0usize; shards];
            for id in 0..10_000u64 {
                let s = shard_of(id, shards);
                assert_eq!(s, shard_of(id, shards), "stable per id");
                counts[s] += 1;
            }
            let expected = 10_000 / shards;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c > expected / 2 && c < expected * 2,
                    "shard {s} of {shards} got {c} of 10000 rows"
                );
            }
        }
    }

    #[test]
    fn insert_then_remove_round_trips_the_maps() {
        let mut st = DatasetState::new(3, 2);
        st.record_insert(0, &[0, 3], &[0, 1]);
        st.record_insert(1, &[1, 2], &[0, 1]);
        st.version += 1;
        assert_eq!(st.live, 4);
        assert_eq!(st.next_global, 4);
        assert_eq!(st.locations[&3], (0, 1));
        assert_eq!(st.handle_to_global[1][&0], 1);

        let per_shard = st.record_remove(&[3, 2, 99]);
        assert_eq!(per_shard, vec![vec![1], vec![1]]);
        assert_eq!(st.live, 2);
        assert!(!st.locations.contains_key(&3));
        assert!(!st.handle_to_global[0].contains_key(&1));
        // Ids are never reused even after removal.
        assert_eq!(st.next_global, 4);
        // One insert + one remove touched each shard.
        assert_eq!(st.shard_versions, vec![2, 2]);
    }

    #[test]
    fn shard_versions_move_only_for_touched_shards() {
        let mut st = DatasetState::new(2, 3);
        assert_eq!(st.shard_versions, vec![0, 0, 0]);
        st.record_insert(1, &[0, 1], &[0, 1]);
        assert_eq!(st.shard_versions, vec![0, 1, 0]);
        // Empty groups and misses leave the counters alone.
        st.record_insert(0, &[], &[]);
        st.record_remove(&[42]);
        assert_eq!(st.shard_versions, vec![0, 1, 0]);
        st.record_remove(&[1]);
        assert_eq!(st.shard_versions, vec![0, 2, 0]);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutations() {
        let mut st = DatasetState::new(2, 1);
        st.record_insert(0, &[0], &[0]);
        let snap = Arc::clone(&st.handle_to_global[0]);
        st.record_insert(0, &[1], &[1]);
        assert_eq!(snap.len(), 1, "query snapshot must not see the new row");
        assert_eq!(st.handle_to_global[0].len(), 2);
    }
}

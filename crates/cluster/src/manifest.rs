//! The coordinator's durable registry: a WAL-style JSONL manifest.
//!
//! Shards already write-ahead-log their own rows (`skyline-serve`'s
//! `--data-dir`); what would be lost on a coordinator crash is the
//! *cluster-level* bookkeeping — which datasets exist, which global id
//! lives on which shard under which local handle. Every acknowledged
//! mutation appends one JSON line here, flushed and fsynced before the
//! client sees the response, and `open` replays the file back into
//! [`DatasetState`]s on startup.
//!
//! Record shapes (one object per line):
//!
//! ```text
//! {"op":"create","name":"hotels","dims":4,"shards":2}
//! {"op":"insert","name":"hotels","version":2,"shard":1,"globals":[0,3],"handles":[0,1]}
//! {"op":"remove","name":"hotels","version":3,"globals":[3]}
//! {"op":"promote","shard":1,"epoch":2,"primary":"127.0.0.1:9103"}
//! ```
//!
//! `promote` records (written by the failure detector) carry no dataset
//! name: they change *routing*, not data. Replay keeps only the latest
//! promotion per shard — the highest epoch and its primary address —
//! so a restarted coordinator resumes routing writes to the promoted
//! node instead of the deposed boot-config primary.
//!
//! The `shards` count is pinned at creation: replaying a manifest into a
//! cluster of a different size would silently mis-route every row, so it
//! is a hard startup error (resharding is out of scope — see DESIGN.md).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use skyline_obs::json::{ObjectWriter, Value};

use crate::shard_map::DatasetState;

/// Append handle over the manifest file.
#[derive(Debug)]
pub struct Manifest {
    file: File,
    bytes: u64,
}

/// What replaying an existing manifest recovered.
#[derive(Debug)]
pub struct Replay {
    /// Rebuilt per-dataset state.
    pub datasets: HashMap<String, DatasetState>,
    /// Number of records replayed.
    pub records: u64,
    /// Highest fencing epoch seen per shard (0 = never failed over).
    pub epochs: Vec<u64>,
    /// Latest promoted primary per shard, from the highest-epoch
    /// `promote` record; `None` = the boot-config primary still stands.
    pub primaries: Vec<Option<std::net::SocketAddr>>,
}

impl Manifest {
    /// Open (creating if absent) and replay the manifest at `path` for a
    /// cluster of `shard_count` shards.
    pub fn open(path: &Path, shard_count: usize) -> io::Result<(Manifest, Replay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let replay = replay(&text, shard_count).map_err(io::Error::other)?;
        let bytes = text.len() as u64;
        Ok((Manifest { file, bytes }, replay))
    }

    /// Total manifest size, bytes (for `/metrics`).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn append(&mut self, line: String) -> io::Result<()> {
        let mut buf = line.into_bytes();
        buf.push(b'\n');
        self.file.write_all(&buf)?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Log a dataset creation.
    pub fn append_create(&mut self, name: &str, dims: usize, shards: usize) -> io::Result<()> {
        let mut w = ObjectWriter::new();
        w.str_field("op", "create")
            .str_field("name", name)
            .u64_field("dims", dims as u64)
            .u64_field("shards", shards as u64);
        self.append(w.finish())
    }

    /// Log one shard's slice of an acknowledged insert (`globals` and
    /// `handles` are parallel arrays).
    pub fn append_insert(
        &mut self,
        name: &str,
        version: u64,
        shard: usize,
        globals: &[u64],
        handles: &[u32],
    ) -> io::Result<()> {
        let handles64: Vec<u64> = handles.iter().map(|&h| h as u64).collect();
        let mut w = ObjectWriter::new();
        w.str_field("op", "insert")
            .str_field("name", name)
            .u64_field("version", version)
            .u64_field("shard", shard as u64)
            .u64_array_field("globals", globals)
            .u64_array_field("handles", &handles64);
        self.append(w.finish())
    }

    /// Log an acknowledged removal of these global ids.
    pub fn append_remove(&mut self, name: &str, version: u64, globals: &[u64]) -> io::Result<()> {
        let mut w = ObjectWriter::new();
        w.str_field("op", "remove")
            .str_field("name", name)
            .u64_field("version", version)
            .u64_array_field("globals", globals);
        self.append(w.finish())
    }

    /// Log a promotion: `primary` now owns `shard` under fencing
    /// `epoch`. Appended *after* the node acknowledged `POST /promote`
    /// (the epoch is durable on the node first) and *before* the
    /// coordinator routes writes to it.
    pub fn append_promote(
        &mut self,
        shard: usize,
        epoch: u64,
        primary: &std::net::SocketAddr,
    ) -> io::Result<()> {
        let mut w = ObjectWriter::new();
        w.str_field("op", "promote")
            .u64_field("shard", shard as u64)
            .u64_field("epoch", epoch)
            .str_field("primary", &primary.to_string());
        self.append(w.finish())
    }
}

fn field_u64(v: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("manifest line {line_no}: missing numeric {key:?}"))
}

fn field_u64_array(v: &Value, key: &str, line_no: usize) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("manifest line {line_no}: missing array {key:?}"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| format!("manifest line {line_no}: {key:?} entry is not an id"))
        })
        .collect()
}

/// Replay manifest `text` into per-dataset state.
fn replay(text: &str, shard_count: usize) -> Result<Replay, String> {
    let mut datasets: HashMap<String, DatasetState> = HashMap::new();
    let mut records = 0u64;
    let mut epochs = vec![0u64; shard_count];
    let mut primaries: Vec<Option<std::net::SocketAddr>> = vec![None; shard_count];
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("manifest line {line_no}: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("manifest line {line_no}: missing \"op\""))?;
        // Routing records carry no dataset name — handle them before
        // the name extraction below.
        if op == "promote" {
            let shard = field_u64(&v, "shard", line_no)? as usize;
            if shard >= shard_count {
                return Err(format!(
                    "manifest line {line_no}: shard {shard} out of range"
                ));
            }
            let epoch = field_u64(&v, "epoch", line_no)?;
            let primary = v
                .get("primary")
                .and_then(Value::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    format!("manifest line {line_no}: missing or unparseable \"primary\"")
                })?;
            if epoch >= epochs[shard] {
                epochs[shard] = epoch;
                primaries[shard] = Some(primary);
            }
            records += 1;
            continue;
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("manifest line {line_no}: missing \"name\""))?;
        match op {
            "create" => {
                let dims = field_u64(&v, "dims", line_no)? as usize;
                let shards = field_u64(&v, "shards", line_no)? as usize;
                if shards != shard_count {
                    return Err(format!(
                        "manifest line {line_no}: dataset {name:?} was created over {shards} \
                         shards but this cluster has {shard_count}; resharding is not supported"
                    ));
                }
                if datasets.contains_key(name) {
                    return Err(format!(
                        "manifest line {line_no}: duplicate create {name:?}"
                    ));
                }
                datasets.insert(name.to_string(), DatasetState::new(dims, shard_count));
            }
            "insert" => {
                let version = field_u64(&v, "version", line_no)?;
                let shard = field_u64(&v, "shard", line_no)? as usize;
                if shard >= shard_count {
                    return Err(format!(
                        "manifest line {line_no}: shard {shard} out of range"
                    ));
                }
                let globals = field_u64_array(&v, "globals", line_no)?;
                let handles: Vec<u32> = field_u64_array(&v, "handles", line_no)?
                    .into_iter()
                    .map(|h| h as u32)
                    .collect();
                if globals.len() != handles.len() {
                    return Err(format!(
                        "manifest line {line_no}: globals/handles length mismatch"
                    ));
                }
                let state = datasets.get_mut(name).ok_or_else(|| {
                    format!("manifest line {line_no}: insert into unknown {name:?}")
                })?;
                state.record_insert(shard, &globals, &handles);
                state.version = state.version.max(version);
            }
            "remove" => {
                let version = field_u64(&v, "version", line_no)?;
                let globals = field_u64_array(&v, "globals", line_no)?;
                let state = datasets.get_mut(name).ok_or_else(|| {
                    format!("manifest line {line_no}: remove from unknown {name:?}")
                })?;
                state.record_remove(&globals);
                state.version = state.version.max(version);
            }
            other => return Err(format!("manifest line {line_no}: unknown op {other:?}")),
        }
        records += 1;
    }
    Ok(Replay {
        datasets,
        records,
        epochs,
        primaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "skyline-cluster-manifest-{tag}-{}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn append_then_reopen_rebuilds_the_maps() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut m, replay) = Manifest::open(&path, 2).unwrap();
            assert_eq!(replay.records, 0);
            m.append_create("hotels", 4, 2).unwrap();
            m.append_insert("hotels", 2, 0, &[0, 3], &[0, 1]).unwrap();
            m.append_insert("hotels", 2, 1, &[1, 2], &[0, 1]).unwrap();
            m.append_remove("hotels", 3, &[3]).unwrap();
        }
        let (m, replay) = Manifest::open(&path, 2).unwrap();
        assert_eq!(replay.records, 4);
        assert!(m.bytes() > 0);
        let st = &replay.datasets["hotels"];
        assert_eq!((st.dims, st.version, st.live, st.next_global), (4, 3, 3, 4));
        assert_eq!(st.locations[&1], (1, 0));
        assert!(!st.locations.contains_key(&3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_count_mismatch_is_a_startup_error() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        {
            let (mut m, _) = Manifest::open(&path, 2).unwrap();
            m.append_create("d", 3, 2).unwrap();
        }
        let err = Manifest::open(&path, 3).unwrap_err();
        assert!(err.to_string().contains("resharding"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn promote_records_survive_reopen_and_keep_the_highest_epoch() {
        let path = temp_path("promote");
        let _ = std::fs::remove_file(&path);
        let a: std::net::SocketAddr = "127.0.0.1:9101".parse().unwrap();
        let b: std::net::SocketAddr = "127.0.0.1:9102".parse().unwrap();
        {
            let (mut m, _) = Manifest::open(&path, 2).unwrap();
            m.append_create("hotels", 4, 2).unwrap();
            m.append_promote(1, 1, &a).unwrap();
            m.append_promote(1, 2, &b).unwrap();
        }
        let (_, replay) = Manifest::open(&path, 2).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.epochs, vec![0, 2]);
        assert_eq!(replay.primaries, vec![None, Some(b)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_lines_are_rejected_loudly() {
        let path = temp_path("garbage");
        std::fs::write(&path, "{\"op\":\"explode\",\"name\":\"x\"}\n").unwrap();
        assert!(Manifest::open(&path, 1).is_err());
        let _ = std::fs::remove_file(&path);
    }
}

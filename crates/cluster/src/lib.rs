//! `skyline-cluster` — sharded multi-node skyline serving.
//!
//! A coordinator process fronting N independent `skyline-serve` shard
//! nodes over the same zero-dependency HTTP stack. Rows are partitioned
//! by a deterministic hash of their coordinator-assigned global id
//! ([`shard_map::shard_of`]); the cluster-level registry (which global
//! id lives on which shard under which local handle) is persisted in
//! the coordinator's own WAL-style JSONL manifest ([`manifest`]).
//!
//! ## Query path: scatter-gather with the subset merge
//!
//! `GET /skyline` scatters to every shard with `include_masks=1&
//! include_rows=1`, so each shard answers with its local skyline *plus*
//! each point's maximum dominating subspace w.r.t. the shard's own
//! elite reference set, the elite positions, and the raw coordinates.
//! The coordinator translates shard handles back to global ids and
//! finishes with [`skyline_core::shard_merge::merge_shard_skylines`] —
//! the exact code path the in-process parallel engine uses — taking the
//! global reference set to be the union of the per-shard elites. The
//! shard-supplied premasks already cover same-shard elites, so the
//! coordinator only pays cross-shard dominance tests during subspace
//! assignment, and cluster answers match a single-node server fed the
//! same rows id-for-id.
//!
//! With [`ClusterConfig::shard_reuse`] on, the coordinator additionally
//! keeps each shard's last parsed answer per exact query, tagged with
//! that shard's per-dataset mutation version
//! ([`shard_map::DatasetState::shard_versions`]). A scatter leg to a
//! shard whose version has not moved is skipped outright and its cached
//! answer fed straight into the merge; the response lists such shards
//! in `reused_shards`. This is the cluster-side face of the incremental
//! maintenance engine: a mutation re-queries only the shards it
//! touched.
//!
//! ## Degraded operation
//!
//! Shard calls go through the retrying client with a total-deadline
//! budget derived from the request's `deadline_ms`; a shard that stays
//! down after retries is *skipped*, and the response carries
//! `"partial": true` plus the missing shard list — the skyline of the
//! surviving shards' rows, not an error. Mutations are stricter: a
//! failed shard fails the request (502) after applying what succeeded,
//! because silently dropping writes would corrupt the registry.
//!
//! Telemetry: every shard call emits a `shard_rpc` trace event and
//! feeds per-shard latency/error counters in `/metrics`; every merge
//! emits `cluster_merge`. `skyline report` renders both.

pub mod manifest;
pub mod shard_map;

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skyline_core::cancel::{CancelToken, Cancelled};
use skyline_core::metrics::Metrics;
use skyline_core::shard_merge::{merge_shard_skylines, EliteRef, MergeEntry};
use skyline_core::subspace::Subspace;
use skyline_data::{Distribution, SyntheticSpec};
use skyline_obs::json::{ObjectWriter, Value};
use skyline_obs::trace::{self, StageTimer, TraceContext};
use skyline_obs::{Event, JsonlRecorder, NoopRecorder, Recorder};
use skyline_serve::client::{
    request_with_retry_timed, request_with_timeout, ClientResponse, RequestTiming, RetryPolicy,
};
use skyline_serve::http::{self, HttpError, Request, Response};
use skyline_serve::metrics::ServerMetrics;
use skyline_serve::pool::ThreadPool;

use manifest::Manifest;
use shard_map::{shard_of, DatasetState};

/// Coordinator configuration. Built with [`ClusterConfig::new`] from
/// the shard address list; everything else has serving defaults.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Bind address, `"host:port"`; port 0 picks an ephemeral port.
    pub bind: String,
    /// Shard node addresses, in shard-id order. The order *is* the
    /// sharding function's codomain: restarting the cluster with the
    /// shards permuted mis-routes every row.
    pub shards: Vec<SocketAddr>,
    /// Worker threads for request handling.
    pub threads: usize,
    /// Per-connection socket read/write timeout.
    pub request_timeout: Duration,
    /// Request body cap, bytes.
    pub max_body: usize,
    /// JSON-lines trace sink (`shard_rpc`, `cluster_merge`, `request`
    /// events).
    pub trace: Option<PathBuf>,
    /// WAL-style JSONL manifest path; `None` keeps the registry in
    /// memory only.
    pub manifest: Option<PathBuf>,
    /// Base retry policy for shard calls. Per-request deadline budgets
    /// override [`RetryPolicy::budget`].
    pub retry: RetryPolicy,
    /// Slow-query threshold, milliseconds: a `/skyline` request whose
    /// wall-clock reaches it gets its stitched stage breakdown written
    /// as a JSONL `stage_breakdown` record. `0` disables the slow log.
    pub slow_ms: u64,
    /// Dedicated slow-query log path. `None` routes slow records to the
    /// `trace` sink instead.
    pub slow_log: Option<PathBuf>,
    /// Reuse an unchanged shard's previous parsed `/skyline` answer
    /// instead of re-issuing the RPC. Sound because the per-dataset
    /// [`shard_map::DatasetState::shard_versions`] counter moves exactly
    /// when a mutation touches the shard. Off by default: reuse also
    /// masks a *dead* shard whose answer is still current, which is the
    /// wrong default for health-sensitive deployments that watch
    /// `"partial"` to detect outages.
    pub shard_reuse: bool,
    /// Read replicas per shard, in shard-id order (`skyline serve
    /// --follow` followers of that shard). When a shard has replicas,
    /// `/skyline` scatter legs go to them round-robin; writes always
    /// stay on the primaries. Empty = read from primaries only.
    pub replicas: Vec<Vec<SocketAddr>>,
    /// Bounded staleness for replica reads: the largest self-reported
    /// replica lag (versions behind the primary, from the
    /// `X-Skyline-Replica-Lag` header) a read leg accepts before
    /// falling back to the primary. 0 = only fully caught-up replicas.
    pub replica_staleness: u64,
    /// Run the failure detector: probe every shard primary's `/healthz`
    /// on a jittered cadence and, on [`ClusterConfig::suspect_misses`]
    /// consecutive misses, promote that shard's most-caught-up replica
    /// under a fresh fencing epoch. Off by default — failover without
    /// replicas to promote would only add probe traffic.
    pub failover: bool,
    /// Failure-detector probe cadence, milliseconds (also the probe's
    /// connect/read timeout).
    pub probe_ms: u64,
    /// Consecutive missed probes before a primary is declared dead and
    /// a promotion is attempted.
    pub suspect_misses: u32,
}

impl ClusterConfig {
    /// Defaults for a cluster over `shards`.
    pub fn new(shards: Vec<SocketAddr>) -> ClusterConfig {
        ClusterConfig {
            bind: "127.0.0.1:0".to_string(),
            shards,
            threads: 4,
            request_timeout: Duration::from_secs(30),
            max_body: http::DEFAULT_MAX_BODY,
            trace: None,
            manifest: None,
            // Shards shed with 503 + Retry-After under overload and a
            // restarting shard refuses connections briefly, so a couple
            // of quick retries ride out both.
            retry: RetryPolicy {
                attempts: 3,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
                budget: None,
            },
            slow_ms: 0,
            slow_log: None,
            shard_reuse: false,
            replicas: Vec::new(),
            replica_staleness: 0,
            failover: false,
            probe_ms: 500,
            suspect_misses: 3,
        }
    }
}

/// Per-shard RPC counters surfaced in `/metrics`.
#[derive(Debug, Default)]
struct ShardStats {
    /// Logical calls (one per scatter leg, however many attempts).
    requests: AtomicU64,
    /// Calls that ended in a transport error or a >= 400 status.
    errors: AtomicU64,
    /// Attempts across all calls (attempts > requests ⇒ retries fired).
    attempts: AtomicU64,
    /// Wall-clock across all calls, µs (includes backoff between
    /// retries).
    total_us: AtomicU64,
}

/// Mutable routing state: which node is each shard's primary right
/// now, which are its replicas, and the shard's fencing epoch. Guarded
/// by one `RwLock` — request paths take brief read snapshots, only the
/// failure detector writes (on promotion and stale-node reintegration).
#[derive(Debug, Clone)]
struct Topology {
    /// Primary address per shard — the write target.
    primaries: Vec<SocketAddr>,
    /// Read replicas per shard (empty inner vec = primary reads only).
    replicas: Vec<Vec<SocketAddr>>,
    /// Fencing epoch per shard. 0 until the first failover; every
    /// promotion raises it by one, and writes stamp it so a deposed
    /// primary that comes back refuses them with `409 Fenced`.
    epochs: Vec<u64>,
    /// Deposed primaries (and replicas that missed their demotion
    /// notice), waiting to be demoted into the replica pool when they
    /// resurface. Probed each detector round.
    stale: Vec<Vec<SocketAddr>>,
}

/// State shared by every coordinator worker.
struct Shared {
    addr: SocketAddr,
    /// Number of shards — fixed for the cluster's lifetime even as the
    /// topology's addresses move around.
    shard_count: usize,
    topology: std::sync::RwLock<Topology>,
    shard_stats: Vec<ShardStats>,
    datasets: Mutex<HashMap<String, DatasetState>>,
    manifest: Option<Mutex<Manifest>>,
    replayed: u64,
    metrics: ServerMetrics,
    recorder: Option<Mutex<JsonlRecorder<File>>>,
    shutdown: AtomicBool,
    started: Instant,
    threads: usize,
    retry: RetryPolicy,
    /// Slow-query threshold in milliseconds; `0` = disabled.
    slow_ms: u64,
    /// Dedicated slow-query sink (falls back to `recorder`).
    slow_log: Option<Mutex<JsonlRecorder<File>>>,
    /// Serve unchanged shards from `reuse` instead of re-querying them.
    shard_reuse: bool,
    /// Per (dataset, query-signature): each shard's last parsed answer
    /// tagged with the shard's mutation version at the time. Only
    /// consulted when `shard_reuse` is on; entries whose version no
    /// longer matches are simply skipped (and overwritten by the next
    /// live answer).
    reuse: Mutex<HashMap<(String, String), Vec<ReusableAnswer>>>,
    /// Largest acceptable self-reported replica lag, versions.
    replica_staleness: u64,
    /// Round-robin cursor over each shard's replica list (one shared
    /// counter is fine: it only spreads load, it carries no meaning).
    replica_rr: AtomicUsize,
    /// Scatter read legs that were routed to a replica first.
    replica_requests: AtomicU64,
    /// Replica-first legs that fell back to the primary (unreachable,
    /// error status, or staleness beyond the bound).
    replica_fallbacks: AtomicU64,
    /// Run the failure detector / promotion loop.
    failover: bool,
    /// Detector probe cadence and per-probe timeout, milliseconds.
    probe_ms: u64,
    /// Consecutive missed probes before promotion fires.
    suspect_misses: u32,
    /// Successful automatic promotions since boot.
    promotions_total: AtomicU64,
}

/// One shard's cached answer: `None` until the shard has answered this
/// query shape, otherwise the answer tagged with the shard's mutation
/// version at the time it was produced.
type ReusableAnswer = Option<(u64, Arc<ShardSkyline>)>;

impl Shared {
    /// Read-locked topology snapshot accessors. Each takes the lock
    /// briefly; callers hold copies, never the guard, so the failure
    /// detector's write lock is never starved.
    fn primary_of(&self, shard: usize) -> SocketAddr {
        self.topology
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .primaries[shard]
    }

    fn epoch_of(&self, shard: usize) -> u64 {
        self.topology
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .epochs[shard]
    }

    fn replicas_of(&self, shard: usize) -> Vec<SocketAddr> {
        self.topology
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .replicas[shard]
            .clone()
    }

    fn emit(&self, event: Event) {
        if let Some(rec) = &self.recorder {
            let mut rec = rec.lock().unwrap_or_else(|e| e.into_inner());
            rec.event(event);
            // Request-level events are rare enough to flush eagerly, so
            // a live trace file can be tailed without a shutdown.
            rec.flush();
        }
    }

    /// Write a slow-query record to the dedicated slow log, or to the
    /// trace sink when none is configured.
    fn emit_slow(&self, event: Event) {
        if let Some(log) = &self.slow_log {
            let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
            log.event(event);
            log.flush();
        } else {
            self.emit(event);
        }
    }
}

/// The validated trace id a request carries in `X-Skyline-Trace`, or
/// `""` when absent or malformed (never propagate junk into traces).
fn inherited_trace(req: &Request) -> String {
    req.header(trace::TRACE_HEADER)
        .filter(|t| trace::is_valid_id(t))
        .unwrap_or("")
        .to_string()
}

/// A running coordinator. Dropping the handle shuts it down.
pub struct ClusterHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    /// Failure detector; `None` unless `--failover` is on.
    prober: Option<JoinHandle<()>>,
}

impl ClusterHandle {
    /// The address the coordinator is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Block until the coordinator stops (via `POST /shutdown` or
    /// [`ClusterHandle::shutdown`] from another thread).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.prober.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting connections, drain in-flight requests, and join
    /// every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.shared.addr);
        self.wait();
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The coordinator: binds, spawns the accept loop, returns a handle.
pub struct Cluster;

impl Cluster {
    /// Bind `config.bind` and start coordinating `config.shards`.
    pub fn start(config: ClusterConfig) -> io::Result<ClusterHandle> {
        if config.shards.is_empty() {
            return Err(io::Error::other("cluster needs at least one shard"));
        }
        if !config.replicas.is_empty() && config.replicas.len() != config.shards.len() {
            return Err(io::Error::other(format!(
                "--replicas lists {} shards, the cluster has {}",
                config.replicas.len(),
                config.shards.len()
            )));
        }
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let recorder = match &config.trace {
            Some(path) => Some(Mutex::new(JsonlRecorder::create(path)?)),
            None => None,
        };
        let slow_log = match &config.slow_log {
            Some(path) => Some(Mutex::new(JsonlRecorder::create(path)?)),
            None => None,
        };
        let shard_count = config.shards.len();
        let (manifest, datasets, replayed, promote_epochs, promote_primaries) =
            match &config.manifest {
                Some(path) => {
                    let (m, replay) = Manifest::open(path, shard_count)?;
                    (
                        Some(Mutex::new(m)),
                        replay.datasets,
                        replay.records,
                        replay.epochs,
                        replay.primaries,
                    )
                }
                None => (
                    None,
                    HashMap::new(),
                    0,
                    vec![0; shard_count],
                    vec![None; shard_count],
                ),
            };
        // Boot topology: the configured order, then replayed promote
        // records applied on top — a restarted coordinator routes to
        // the promoted primaries, not the addresses it was booted with.
        let mut primaries = config.shards;
        let mut replicas = if config.replicas.is_empty() {
            vec![Vec::new(); shard_count]
        } else {
            config.replicas
        };
        let mut stale: Vec<Vec<SocketAddr>> = vec![Vec::new(); shard_count];
        for shard in 0..shard_count {
            if let Some(promoted) = promote_primaries[shard] {
                if promoted != primaries[shard] {
                    let deposed = primaries[shard];
                    replicas[shard].retain(|a| *a != promoted);
                    stale[shard].push(deposed);
                    primaries[shard] = promoted;
                }
            }
        }
        let shared = Arc::new(Shared {
            addr,
            shard_count,
            shard_stats: (0..shard_count).map(|_| ShardStats::default()).collect(),
            topology: std::sync::RwLock::new(Topology {
                primaries,
                replicas,
                epochs: promote_epochs,
                stale,
            }),
            datasets: Mutex::new(datasets),
            manifest,
            replayed,
            metrics: ServerMetrics::new(),
            recorder,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            threads: config.threads.max(1),
            retry: config.retry,
            slow_ms: config.slow_ms,
            slow_log,
            shard_reuse: config.shard_reuse,
            reuse: Mutex::new(HashMap::new()),
            replica_staleness: config.replica_staleness,
            replica_rr: AtomicUsize::new(0),
            replica_requests: AtomicU64::new(0),
            replica_fallbacks: AtomicU64::new(0),
            failover: config.failover,
            probe_ms: config.probe_ms.max(10),
            suspect_misses: config.suspect_misses.max(1),
            promotions_total: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let timeout = config.request_timeout;
        let max_body = config.max_body;
        let threads = config.threads.max(1);
        let accept = std::thread::Builder::new()
            .name("cluster-accept".to_string())
            .spawn(move || {
                // The pool lives in the accept thread: dropping it on
                // loop exit drains queued connections and joins workers,
                // so shutdown never truncates a response.
                let pool = ThreadPool::new(threads, "cluster-worker");
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_shared = Arc::clone(&accept_shared);
                    if pool
                        .execute(move || handle_connection(stream, conn_shared, timeout, max_body))
                        .is_err()
                    {
                        break;
                    }
                }
            })?;
        let prober = if shared.failover {
            let probe_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("cluster-prober".to_string())
                    .spawn(move || run_prober(probe_shared))?,
            )
        } else {
            None
        };
        Ok(ClusterHandle {
            shared,
            accept: Some(accept),
            prober,
        })
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>, timeout: Duration, max_body: usize) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        match Request::read_from(&mut reader, max_body) {
            Ok(Some(req)) => {
                let start = Instant::now();
                // Same panic isolation as the shard server: a handler
                // bug costs one 500, not the connection.
                let (response, endpoint) =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        route(&shared, &req)
                    })) {
                        Ok(pair) => pair,
                        Err(_) => {
                            shared.metrics.inc_panics();
                            shared.emit(Event::HandlerPanic {
                                endpoint: req.path.clone(),
                            });
                            (
                                Response::error(500, "internal error: handler panicked"),
                                "(panic)",
                            )
                        }
                    };
                let elapsed_us = start.elapsed().as_micros() as u64;
                shared
                    .metrics
                    .record(&req.method, endpoint, response.status, elapsed_us);
                shared.emit(Event::Request {
                    method: req.method.clone(),
                    endpoint: endpoint.to_string(),
                    status: response.status as u64,
                    elapsed_us,
                    trace: inherited_trace(&req),
                });
                let close = req.wants_close() || shared.shutdown.load(Ordering::Acquire);
                if response.write_to(&mut writer).is_err() || close {
                    return;
                }
            }
            Ok(None) => return,
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                let status = match e {
                    HttpError::TooLarge { .. } => 413,
                    _ => 400,
                };
                shared.metrics.record("?", "(malformed)", status, 0);
                let _ = Response::error(status, &e.to_string()).write_to(&mut writer);
                return;
            }
        }
    }
}

/// Dispatch one request; returns the response plus the normalised
/// endpoint label for metrics and trace events.
fn route(shared: &Shared, req: &Request) -> (Response, &'static str) {
    if let Some(name) = req
        .path
        .strip_prefix("/datasets/")
        .and_then(|rest| rest.strip_suffix("/points"))
    {
        let endpoint = "/datasets/{name}/points";
        let response = match req.method.as_str() {
            "POST" => handle_insert(shared, name, req),
            "DELETE" => handle_remove(shared, name, req),
            _ => Response::error(405, "points supports POST and DELETE"),
        };
        return (response, endpoint);
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (handle_healthz(shared), "/healthz"),
        ("GET", "/metrics") => (handle_metrics(shared, req), "/metrics"),
        ("GET", "/skyline") => (handle_skyline(shared, req), "/skyline"),
        ("GET", "/datasets") => (handle_list(shared), "/datasets"),
        ("POST", "/datasets") => (handle_create(shared, req), "/datasets"),
        ("POST", "/shutdown") => (handle_shutdown(shared), "/shutdown"),
        (_, "/healthz" | "/metrics" | "/skyline" | "/datasets" | "/shutdown") => (
            Response::error(405, "method not allowed on this endpoint"),
            "(bad-method)",
        ),
        _ => (
            Response::error(404, &format!("no such endpoint {}", req.path)),
            "(unknown)",
        ),
    }
}

/// Percent-encode one URL component (dataset names, algorithm names).
fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// One shard call through the retrying client, with per-shard counters
/// and a `shard_rpc` trace event. `budget` caps attempts + backoff
/// (derived from the request deadline); `endpoint` is the normalised
/// label for telemetry, `path` the actual request target. With a trace
/// context the call carries `X-Skyline-Trace` (the inherited trace id)
/// and `X-Skyline-Span` (a fresh per-leg span id), so the shard's own
/// events join the same trace. The returned [`RequestTiming`] splits
/// the successful attempt into connect/send/wait.
#[allow(clippy::too_many_arguments)]
fn shard_rpc(
    shared: &Shared,
    shard: usize,
    method: &str,
    endpoint: &str,
    path: &str,
    body: &[u8],
    budget: Option<Duration>,
    ctx: Option<&TraceContext>,
) -> io::Result<(ClientResponse, RequestTiming)> {
    shard_rpc_at(
        shared,
        shard,
        shared.primary_of(shard),
        method,
        endpoint,
        path,
        body,
        budget,
        ctx,
    )
}

/// [`shard_rpc`] against an explicit address — the same counters and
/// trace events (attributed to the shard index), but aimed at a read
/// replica instead of the primary.
#[allow(clippy::too_many_arguments)]
fn shard_rpc_at(
    shared: &Shared,
    shard: usize,
    addr: SocketAddr,
    method: &str,
    endpoint: &str,
    path: &str,
    body: &[u8],
    budget: Option<Duration>,
    ctx: Option<&TraceContext>,
) -> io::Result<(ClientResponse, RequestTiming)> {
    let start = Instant::now();
    let policy = RetryPolicy {
        budget,
        ..shared.retry
    };
    let mut headers: Vec<(String, String)> = match ctx {
        Some(ctx) => vec![
            (trace::TRACE_HEADER.to_string(), ctx.trace_id.clone()),
            (trace::SPAN_HEADER.to_string(), trace::mint_id()),
        ],
        None => Vec::new(),
    };
    // Writes carry the shard's fencing epoch plus the current primary,
    // so a deposed primary that resurfaces refuses them (409) and
    // demotes itself toward the successor. Epoch 0 means no failover
    // has ever happened — don't stamp, nodes then skip the fence check.
    if method != "GET" {
        let epoch = shared.epoch_of(shard);
        if epoch > 0 {
            headers.push((skyline_serve::EPOCH_HEADER.to_string(), epoch.to_string()));
            headers.push((
                skyline_serve::PRIMARY_HEADER.to_string(),
                shared.primary_of(shard).to_string(),
            ));
        }
    }
    let (result, attempts) = request_with_retry_timed(addr, method, path, body, &headers, &policy);
    let elapsed_us = start.elapsed().as_micros() as u64;
    let status = match &result {
        Ok((resp, _)) => resp.status as u64,
        Err(_) => 0, // transport failure: the shard never answered
    };
    let stats = &shared.shard_stats[shard];
    stats.requests.fetch_add(1, Ordering::Relaxed);
    stats.attempts.fetch_add(attempts as u64, Ordering::Relaxed);
    stats.total_us.fetch_add(elapsed_us, Ordering::Relaxed);
    if status == 0 || status >= 400 {
        stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    shared.emit(Event::ShardRpc {
        shard: shard as u64,
        endpoint: endpoint.to_string(),
        status,
        attempts: attempts as u64,
        elapsed_us,
        trace: ctx.map(|c| c.trace_id.clone()).unwrap_or_default(),
    });
    result
}

/// Whether a replica's answer is usable under the staleness bound: it
/// must self-report its lag (the header is what distinguishes a
/// follower from a mis-addressed primary) and the lag must be within
/// `bound` versions.
fn replica_is_fresh(resp: &ClientResponse, bound: u64) -> bool {
    resp.header(skyline_serve::replica::LAG_HEADER)
        .and_then(|raw| raw.parse::<u64>().ok())
        .is_some_and(|lag| lag <= bound)
}

/// Route one `/skyline` read leg: prefer the shard's replicas
/// (round-robin) and accept a replica answer only when it is fresh
/// enough; anything else — unreachable replica, error status, missing
/// lag header, staleness beyond the bound — falls back to the primary.
/// Writes never come through here.
fn shard_read_rpc(
    shared: &Shared,
    shard: usize,
    path: &str,
    budget: Option<Duration>,
    ctx: Option<&TraceContext>,
) -> io::Result<(ClientResponse, RequestTiming)> {
    let followers = shared.replicas_of(shard);
    if !followers.is_empty() {
        let pick = shared.replica_rr.fetch_add(1, Ordering::Relaxed) % followers.len();
        shared.replica_requests.fetch_add(1, Ordering::Relaxed);
        match shard_rpc_at(
            shared,
            shard,
            followers[pick],
            "GET",
            "/skyline",
            path,
            &[],
            budget,
            ctx,
        ) {
            Ok((resp, timing))
                if resp.status == 200 && replica_is_fresh(&resp, shared.replica_staleness) =>
            {
                return Ok((resp, timing));
            }
            _ => {
                shared.replica_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    shard_rpc(shared, shard, "GET", "/skyline", path, &[], budget, ctx)
}

/// Run `f(shard)` for every shard concurrently and gather the results
/// in shard order.
fn scatter<T: Send>(shard_count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    std::thread::scope(|scope| {
        let f = &f;
        let tasks: Vec<_> = (0..shard_count)
            .map(|s| scope.spawn(move || f(s)))
            .collect();
        tasks
            .into_iter()
            .map(|t| t.join().expect("scatter leg panicked"))
            .collect()
    })
}

/// Sleep `total` in short slices so shutdown is honoured promptly.
fn sleep_checking_shutdown(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(20).min(total));
    }
}

/// One `/healthz` probe. Returns the parsed body on a 200, `None` on
/// transport failure or any other status — for the detector those are
/// the same thing: a miss.
fn probe_healthz(addr: SocketAddr, timeout: Duration) -> Option<Value> {
    let resp = request_with_timeout(addr, "GET", "/healthz", b"", timeout).ok()?;
    if resp.status != 200 {
        return None;
    }
    let text = std::str::from_utf8(&resp.body).ok()?;
    Value::parse(text).ok()
}

/// The failure detector: probe every shard primary's `/healthz` on a
/// jittered cadence; `suspect_misses` consecutive misses confirm the
/// primary dead and trigger [`try_failover`]. Deposed primaries (and
/// replicas that missed their demotion notice) sit in the topology's
/// `stale` lists and are probed too — once they answer again they are
/// demoted under the current epoch and rejoin the replica pool.
fn run_prober(shared: Arc<Shared>) {
    let mut misses: Vec<u32> = vec![0; shared.shard_count];
    // Tiny deterministic LCG for probe jitter — keeps probes from N
    // coordinators (or N shards) from landing in lockstep. Quality is
    // irrelevant; it only de-synchronises timers.
    let mut jitter_state: u64 = 0x243f_6a88_85a3_08d3 ^ (shared.addr.port() as u64);
    while !shared.shutdown.load(Ordering::Acquire) {
        jitter_state = jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = jitter_state % (shared.probe_ms / 4 + 1);
        sleep_checking_shutdown(&shared, Duration::from_millis(shared.probe_ms + jitter));
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let timeout = Duration::from_millis(shared.probe_ms.max(50));
        for (shard, miss) in misses.iter_mut().enumerate() {
            let primary = shared.primary_of(shard);
            if probe_healthz(primary, timeout).is_some() {
                *miss = 0;
                continue;
            }
            *miss = miss.saturating_add(1);
            shared.emit(Event::FailoverSuspect {
                shard: shard as u64,
                addr: primary.to_string(),
                misses: *miss as u64,
            });
            if *miss >= shared.suspect_misses && try_failover(&shared, shard, timeout) {
                *miss = 0;
            }
        }
        reintegrate_stale(&shared, timeout);
    }
}

/// Promote `shard`'s most-caught-up replica under a fresh fencing
/// epoch. Returns `true` when the topology was updated (so the caller
/// resets its miss counter and starts probing the new primary).
fn try_failover(shared: &Shared, shard: usize, timeout: Duration) -> bool {
    let (candidates, epoch, old_primary) = {
        let topo = shared.topology.read().unwrap_or_else(|e| e.into_inner());
        (
            topo.replicas[shard].clone(),
            topo.epochs[shard],
            topo.primaries[shard],
        )
    };
    // Elect the most-caught-up live replica: losing a dead primary is
    // unavoidable, losing replicated writes by picking a laggard is not.
    let mut winner: Option<(u64, SocketAddr)> = None;
    for addr in &candidates {
        let Some(health) = probe_healthz(*addr, timeout) else {
            continue;
        };
        let applied = health
            .get("applied_version")
            .and_then(Value::as_f64)
            .unwrap_or(0.0) as u64;
        if winner.map_or(true, |(best, _)| applied > best) {
            winner = Some((applied, *addr));
        }
    }
    let Some((_, new_primary)) = winner else {
        // No live replica — nothing to promote, keep probing.
        return false;
    };
    let new_epoch = epoch + 1;
    let body = format!("{{\"epoch\":{new_epoch}}}");
    match request_with_timeout(new_primary, "POST", "/promote", body.as_bytes(), timeout) {
        Ok(resp) if resp.status == 200 => {}
        _ => return false,
    }
    // Promotion is durable on the node; make the routing change durable
    // here before serving on it, so a coordinator restart replays it.
    if let Some(m) = &shared.manifest {
        let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
        let _ = m.append_promote(shard, new_epoch, &new_primary);
    }
    let siblings: Vec<SocketAddr> = {
        let mut topo = shared.topology.write().unwrap_or_else(|e| e.into_inner());
        topo.primaries[shard] = new_primary;
        topo.replicas[shard].retain(|a| *a != new_primary);
        topo.epochs[shard] = new_epoch;
        topo.stale[shard].push(old_primary);
        topo.replicas[shard].clone()
    };
    shared.promotions_total.fetch_add(1, Ordering::Relaxed);
    shared.emit(Event::Failover {
        shard: shard as u64,
        epoch: new_epoch,
        old_primary: old_primary.to_string(),
        new_primary: new_primary.to_string(),
    });
    // Point the surviving replicas at the new primary. One that cannot
    // be reached right now goes stale and is retargeted when it
    // resurfaces (it would also self-demote on the first fenced feed
    // poll that reaches the new primary).
    for sibling in siblings {
        if !demote_node(sibling, new_epoch, new_primary, timeout) {
            let mut topo = shared.topology.write().unwrap_or_else(|e| e.into_inner());
            topo.replicas[shard].retain(|a| *a != sibling);
            topo.stale[shard].push(sibling);
        }
    }
    true
}

/// `POST /demote` to `addr`, pointing it at `primary` under `epoch`.
fn demote_node(addr: SocketAddr, epoch: u64, primary: SocketAddr, timeout: Duration) -> bool {
    let body = format!("{{\"epoch\":{epoch},\"primary\":\"{primary}\"}}");
    matches!(
        request_with_timeout(addr, "POST", "/demote", body.as_bytes(), timeout),
        Ok(resp) if resp.status == 200
    )
}

/// Probe every stale node (deposed primaries, unreachable siblings);
/// any that answers is demoted into following the current primary and
/// moved back into the replica pool.
fn reintegrate_stale(shared: &Shared, timeout: Duration) {
    for shard in 0..shared.shard_count {
        let (stale, epoch, primary) = {
            let topo = shared.topology.read().unwrap_or_else(|e| e.into_inner());
            (
                topo.stale[shard].clone(),
                topo.epochs[shard],
                topo.primaries[shard],
            )
        };
        for addr in stale {
            if probe_healthz(addr, timeout).is_none() {
                continue;
            }
            if demote_node(addr, epoch, primary, timeout) {
                let mut topo = shared.topology.write().unwrap_or_else(|e| e.into_inner());
                topo.stale[shard].retain(|a| *a != addr);
                if !topo.replicas[shard].contains(&addr) {
                    topo.replicas[shard].push(addr);
                }
            }
        }
    }
}

fn handle_healthz(shared: &Shared) -> Response {
    let datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
    let mut w = ObjectWriter::new();
    w.str_field("status", "ok")
        .u64_field("shards", shared.shard_count as u64)
        .u64_field("datasets", datasets.len() as u64)
        .u64_field("uptime_us", shared.started.elapsed().as_micros() as u64);
    Response::json(200, w.finish())
}

fn handle_shutdown(shared: &Shared) -> Response {
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(shared.addr);
    let mut w = ObjectWriter::new();
    w.str_field("status", "shutting down");
    Response::json(200, w.finish())
}

fn dataset_info_json(name: &str, state: &DatasetState, shard_count: usize) -> String {
    let mut w = ObjectWriter::new();
    w.str_field("name", name)
        .u64_field("dims", state.dims as u64)
        .u64_field("points", state.live as u64)
        .u64_field("version", state.version)
        .u64_field("shards", shard_count as u64);
    w.finish()
}

fn handle_list(shared: &Shared) -> Response {
    let datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
    let mut names: Vec<&String> = datasets.keys().collect();
    names.sort();
    let objs: Vec<String> = names
        .iter()
        .map(|n| dataset_info_json(n, &datasets[*n], shared.shard_count))
        .collect();
    let mut w = ObjectWriter::new();
    w.raw_field("datasets", &format!("[{}]", objs.join(",")));
    Response::json(200, w.finish())
}

fn handle_metrics(shared: &Shared, req: &Request) -> Response {
    match req.query_param("format") {
        None | Some("") | Some("json") => {}
        Some("prometheus") => {
            let mut extras: Vec<(String, f64)> = Vec::new();
            for counter in ["requests", "errors", "attempts", "total_us"] {
                for (s, stats) in shared.shard_stats.iter().enumerate() {
                    let value = match counter {
                        "requests" => stats.requests.load(Ordering::Relaxed),
                        "errors" => stats.errors.load(Ordering::Relaxed),
                        "attempts" => stats.attempts.load(Ordering::Relaxed),
                        _ => stats.total_us.load(Ordering::Relaxed),
                    };
                    extras.push((
                        format!("skyline_shard_rpc_{counter}{{shard=\"{s}\"}}"),
                        value as f64,
                    ));
                }
            }
            extras.push((
                "skyline_replica_read_requests_total".to_string(),
                shared.replica_requests.load(Ordering::Relaxed) as f64,
            ));
            extras.push((
                "skyline_replica_read_fallbacks_total".to_string(),
                shared.replica_fallbacks.load(Ordering::Relaxed) as f64,
            ));
            extras.push((
                "skyline_promotions_total".to_string(),
                shared.promotions_total.load(Ordering::Relaxed) as f64,
            ));
            {
                let topo = shared.topology.read().unwrap_or_else(|e| e.into_inner());
                for (s, epoch) in topo.epochs.iter().enumerate() {
                    extras.push((
                        format!("skyline_shard_epoch{{shard=\"{s}\"}}"),
                        *epoch as f64,
                    ));
                }
            }
            let datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
            extras.push(("skyline_datasets".to_string(), datasets.len() as f64));
            drop(datasets);
            return Response::text(200, shared.metrics.render_prometheus(&extras));
        }
        Some(other) => {
            return Response::error(
                400,
                &format!("bad \"format\" value {other:?} (json or prometheus)"),
            )
        }
    }
    let topo = shared
        .topology
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let shard_objs: Vec<String> = topo
        .primaries
        .iter()
        .zip(&shared.shard_stats)
        .enumerate()
        .map(|(s, (addr, stats))| {
            let mut w = ObjectWriter::new();
            w.str_field("addr", &addr.to_string())
                .u64_field("epoch", topo.epochs[s])
                .u64_field("replicas", topo.replicas[s].len() as u64)
                .u64_field("stale", topo.stale[s].len() as u64)
                .u64_field("requests", stats.requests.load(Ordering::Relaxed))
                .u64_field("errors", stats.errors.load(Ordering::Relaxed))
                .u64_field("attempts", stats.attempts.load(Ordering::Relaxed))
                .u64_field("total_us", stats.total_us.load(Ordering::Relaxed));
            w.finish()
        })
        .collect();
    let datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
    let mut names: Vec<&String> = datasets.keys().collect();
    names.sort();
    let dataset_objs: Vec<String> = names
        .iter()
        .map(|n| dataset_info_json(n, &datasets[*n], shared.shard_count))
        .collect();
    drop(datasets);
    let manifest_bytes = shared
        .manifest
        .as_ref()
        .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()).bytes())
        .unwrap_or(0);
    let mut w = ObjectWriter::new();
    w.u64_field("uptime_us", shared.started.elapsed().as_micros() as u64)
        .u64_field("threads", shared.threads as u64)
        .u64_field("requests", shared.metrics.total_requests())
        .u64_field(
            "deadline_exceeded_total",
            shared.metrics.deadline_exceeded_total(),
        )
        .u64_field("panics_total", shared.metrics.panics_total())
        .u64_field("manifest_bytes", manifest_bytes)
        .u64_field("recovery_replayed_records", shared.replayed)
        .u64_field(
            "replica_read_requests",
            shared.replica_requests.load(Ordering::Relaxed),
        )
        .u64_field(
            "replica_read_fallbacks",
            shared.replica_fallbacks.load(Ordering::Relaxed),
        )
        .u64_field(
            "promotions_total",
            shared.promotions_total.load(Ordering::Relaxed),
        )
        .raw_field("endpoints", &shared.metrics.render_json())
        .raw_field("stages", &shared.metrics.render_stages_json())
        .raw_field("shards", &format!("[{}]", shard_objs.join(",")))
        .raw_field("datasets", &format!("[{}]", dataset_objs.join(",")));
    Response::json(200, w.finish())
}

fn parse_rows(v: &Value) -> Result<Vec<Vec<f64>>, String> {
    let arr = v.as_arr().ok_or("\"rows\" must be an array of arrays")?;
    arr.iter()
        .enumerate()
        .map(|(i, row)| {
            let row = row
                .as_arr()
                .ok_or_else(|| format!("row {i} is not an array"))?;
            row.iter()
                .enumerate()
                .map(|(j, val)| {
                    val.as_f64()
                        .ok_or_else(|| format!("row {i}, value {j} is not a number"))
                })
                .collect()
        })
        .collect()
}

fn parse_body(req: &Request) -> Result<Value, Response> {
    let text = req
        .body_str()
        .map_err(|e| Response::error(400, &e.to_string()))?;
    Value::parse(text).map_err(|e| Response::error(400, &format!("bad JSON body: {e}")))
}

/// Serialise rows as `[[f64, ...], ...]` — `{}` formatting is shortest
/// round-trip, so shards reconstruct the exact coordinates.
fn rows_json(rows: &[&[f64]]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    out.push(']');
    out
}

/// Partition `rows` (paired with their global ids, arrival order) by
/// the shard hash.
fn partition_rows(
    rows: &[Vec<f64>],
    first_global: u64,
    shard_count: usize,
) -> Vec<(Vec<u64>, Vec<&[f64]>)> {
    let mut groups: Vec<(Vec<u64>, Vec<&[f64]>)> = vec![(Vec::new(), Vec::new()); shard_count];
    for (i, row) in rows.iter().enumerate() {
        let global = first_global + i as u64;
        let shard = shard_of(global, shard_count);
        groups[shard].0.push(global);
        groups[shard].1.push(row.as_slice());
    }
    groups
}

/// Parse a shard's insert response into local handles.
fn parse_insert_handles(resp: &ClientResponse) -> Result<Vec<u32>, String> {
    let v = Value::parse(&resp.body_str()).map_err(|e| format!("bad insert response: {e}"))?;
    v.get("ids")
        .and_then(Value::as_arr)
        .ok_or("insert response lacks \"ids\"")?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|h| h as u32)
                .ok_or_else(|| "insert response id is not numeric".to_string())
        })
        .collect()
}

/// Fan out one logical insert: POST each shard its slice of rows,
/// recording successes into `state` (and the manifest). Returns an
/// error response naming the failed shards, if any — successes are
/// *kept*: the registry must reflect what the shards now hold.
fn fan_out_insert(
    shared: &Shared,
    name: &str,
    state: &mut DatasetState,
    groups: &[(Vec<u64>, Vec<&[f64]>)],
    version: u64,
) -> Result<(), Response> {
    let path = format!("/datasets/{}/points", encode_component(name));
    let results = scatter(groups.len(), |s| {
        let (globals, rows) = &groups[s];
        if globals.is_empty() {
            return None;
        }
        let body = format!("{{\"rows\":{}}}", rows_json(rows));
        Some(
            shard_rpc(
                shared,
                s,
                "POST",
                "/datasets/{name}/points",
                &path,
                body.as_bytes(),
                None,
                None,
            )
            .map(|(resp, _)| resp),
        )
    });
    let mut failures: Vec<String> = Vec::new();
    for (s, outcome) in results.into_iter().enumerate() {
        let Some(outcome) = outcome else { continue };
        let handles = match outcome {
            Ok(resp) if resp.status == 200 => match parse_insert_handles(&resp) {
                Ok(h) if h.len() == groups[s].0.len() => h,
                Ok(_) => {
                    failures.push(format!("shard {s} acknowledged the wrong row count"));
                    continue;
                }
                Err(e) => {
                    failures.push(format!("shard {s}: {e}"));
                    continue;
                }
            },
            Ok(resp) => {
                failures.push(format!("shard {s} answered {}", resp.status));
                continue;
            }
            Err(e) => {
                failures.push(format!("shard {s} unreachable: {e}"));
                continue;
            }
        };
        state.record_insert(s, &groups[s].0, &handles);
        if let Some(m) = &shared.manifest {
            let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = m.append_insert(name, version, s, &groups[s].0, &handles) {
                failures.push(format!("manifest write failed: {e}"));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(Response::error(
            502,
            &format!(
                "insert into {name:?} partially failed ({}); successful shards were kept",
                failures.join("; ")
            ),
        ))
    }
}

/// `POST /datasets` — same body as a shard (`{"name", "rows"}` or
/// `{"name", "synthetic"}`); the coordinator assigns global ids,
/// partitions the rows by [`shard_of`], and fans the creation out.
fn handle_create(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(name) = body.get("name").and_then(Value::as_str) else {
        return Response::error(400, "missing string field \"name\"");
    };
    let (rows, dims) = if let Some(synth) = body.get("synthetic") {
        let tag = synth
            .get("distribution")
            .and_then(Value::as_str)
            .unwrap_or("UI");
        let Some(distribution) = Distribution::from_tag(tag) else {
            return Response::error(400, &format!("unknown distribution {tag:?} (UI, CO, AC)"));
        };
        let Some(n) = synth.get("n").and_then(Value::as_u64) else {
            return Response::error(400, "synthetic spec needs numeric \"n\"");
        };
        let Some(dims) = synth.get("dims").and_then(Value::as_u64) else {
            return Response::error(400, "synthetic spec needs numeric \"dims\"");
        };
        let seed = synth.get("seed").and_then(Value::as_u64).unwrap_or(42);
        let spec = SyntheticSpec {
            distribution,
            cardinality: n as usize,
            dims: dims as usize,
            seed,
        };
        let data = spec.generate();
        let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
        (rows, data.dims())
    } else if let Some(rows_value) = body.get("rows") {
        let rows = match parse_rows(rows_value) {
            Ok(rows) => rows,
            Err(msg) => return Response::error(400, &msg),
        };
        let dims = match (rows.first(), body.get("dims").and_then(Value::as_u64)) {
            (Some(first), _) => first.len(),
            (None, Some(dims)) => dims as usize,
            (None, None) => {
                return Response::error(400, "empty \"rows\" needs explicit \"dims\"");
            }
        };
        (rows, dims)
    } else {
        return Response::error(400, "body needs either \"rows\" or \"synthetic\"");
    };
    if dims == 0 || dims > 64 {
        return Response::error(400, "dims must be between 1 and 64");
    }
    if rows.iter().any(|r| r.len() != dims) {
        return Response::error(400, "every row must have the same dimensionality");
    }

    // The registry lock is held across the fan-out: creation is an
    // admin operation, and serialising mutations keeps the manifest a
    // simple linear history.
    let mut datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
    if datasets.contains_key(name) {
        return Response::error(409, &format!("dataset {name:?} already exists"));
    }
    let shard_count = shared.shard_count;

    // Every shard gets an (initially empty) dataset so later inserts
    // and queries always find it; rows follow as an insert, whose
    // response carries the shard-local handles the registry needs.
    let create_body = format!("{{\"name\":{},\"dims\":{dims},\"rows\":[]}}", quoted(name));
    let created = scatter(shard_count, |s| {
        shard_rpc(
            shared,
            s,
            "POST",
            "/datasets",
            "/datasets",
            create_body.as_bytes(),
            None,
            None,
        )
        .map(|(resp, _)| resp)
    });
    for (s, outcome) in created.iter().enumerate() {
        match outcome {
            Ok(resp) if resp.status == 201 => {}
            Ok(resp) => {
                return Response::error(
                    502,
                    &format!(
                        "shard {s} refused creation with {}: {}",
                        resp.status,
                        resp.body_str()
                    ),
                )
            }
            Err(e) => {
                return Response::error(502, &format!("shard {s} unreachable during creation: {e}"))
            }
        }
    }

    let mut state = DatasetState::new(dims, shard_count);
    if let Some(m) = &shared.manifest {
        let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = m.append_create(name, dims, shard_count) {
            return Response::error(500, &format!("manifest write failed: {e}"));
        }
    }
    let groups = partition_rows(&rows, 0, shard_count);
    let create_version = state.version;
    let outcome = fan_out_insert(shared, name, &mut state, &groups, create_version);
    let points = state.live;
    let version = state.version;
    datasets.insert(name.to_string(), state);
    if let Err(resp) = outcome {
        return resp;
    }
    let mut w = ObjectWriter::new();
    w.str_field("name", name)
        .u64_field("dims", dims as u64)
        .u64_field("points", points as u64)
        .u64_field("version", version)
        .u64_field("shards", shard_count as u64);
    Response::json(201, w.finish())
}

/// JSON string literal for `s` (names come back out of `ObjectWriter`
/// fields elsewhere; bodies built by hand need the same escaping).
fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    skyline_obs::json::escape_into(s, &mut out);
    out.push('"');
    out
}

/// `POST /datasets/{name}/points` — body `{"rows": [[...], ...]}`;
/// rows get fresh global ids and are routed to their owning shards.
fn handle_insert(shared: &Shared, name: &str, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(rows_value) = body.get("rows") else {
        return Response::error(400, "body needs \"rows\"");
    };
    let rows = match parse_rows(rows_value) {
        Ok(rows) => rows,
        Err(msg) => return Response::error(400, &msg),
    };
    let mut datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = datasets.get_mut(name) else {
        return Response::error(404, &format!("no dataset {name:?}"));
    };
    if rows.iter().any(|r| r.len() != state.dims) {
        return Response::error(400, &format!("rows must have {} values each", state.dims));
    }
    let first_global = state.next_global;
    // Ids are burned even if a shard later fails: holes are fine,
    // reuse is not.
    state.next_global += rows.len() as u64;
    let version = state.version + 1;
    let groups = partition_rows(&rows, first_global, shared.shard_count);
    let outcome = fan_out_insert(shared, name, state, &groups, version);
    state.version = version;
    if let Err(resp) = outcome {
        return resp;
    }
    let globals: Vec<u64> = (first_global..first_global + rows.len() as u64).collect();
    let mut w = ObjectWriter::new();
    w.u64_field("inserted", rows.len() as u64)
        .u64_array_field("ids", &globals)
        .u64_field("version", version);
    Response::json(200, w.finish())
}

/// `DELETE /datasets/{name}/points` — body `{"ids": [...]}` with
/// *global* ids; the registry maps them to shard-local handles.
fn handle_remove(shared: &Shared, name: &str, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(ids_value) = body.get("ids").and_then(Value::as_arr) else {
        return Response::error(400, "body needs an \"ids\" array");
    };
    let mut globals = Vec::with_capacity(ids_value.len());
    for (i, v) in ids_value.iter().enumerate() {
        match v.as_u64() {
            Some(id) => globals.push(id),
            None => return Response::error(400, &format!("ids[{i}] is not a point id")),
        }
    }
    let mut datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = datasets.get_mut(name) else {
        return Response::error(404, &format!("no dataset {name:?}"));
    };
    // Resolve before mutating: only ids the owning shard acknowledges
    // deleting leave the registry.
    let shard_count = shared.shard_count;
    let mut per_shard: Vec<(Vec<u64>, Vec<u32>)> = vec![(Vec::new(), Vec::new()); shard_count];
    for g in &globals {
        if let Some(&(shard, handle)) = state.locations.get(g) {
            per_shard[shard as usize].0.push(*g);
            per_shard[shard as usize].1.push(handle);
        }
    }
    let path = format!("/datasets/{}/points", encode_component(name));
    let results = scatter(shard_count, |s| {
        let (_, handles) = &per_shard[s];
        if handles.is_empty() {
            return None;
        }
        let ids: Vec<u64> = handles.iter().map(|&h| h as u64).collect();
        let mut w = ObjectWriter::new();
        w.u64_array_field("ids", &ids);
        Some(
            shard_rpc(
                shared,
                s,
                "DELETE",
                "/datasets/{name}/points",
                &path,
                w.finish().as_bytes(),
                None,
                None,
            )
            .map(|(resp, _)| resp),
        )
    });
    let mut removed_globals: Vec<u64> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for (s, outcome) in results.into_iter().enumerate() {
        match outcome {
            None => {}
            Some(Ok(resp)) if resp.status == 200 => {
                removed_globals.extend_from_slice(&per_shard[s].0);
            }
            Some(Ok(resp)) => failures.push(format!("shard {s} answered {}", resp.status)),
            Some(Err(e)) => failures.push(format!("shard {s} unreachable: {e}")),
        }
    }
    let removed = removed_globals.len();
    if removed > 0 {
        state.record_remove(&removed_globals);
        state.version += 1;
        if let Some(m) = &shared.manifest {
            let mut m = m.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = m.append_remove(name, state.version, &removed_globals) {
                failures.push(format!("manifest write failed: {e}"));
            }
        }
    }
    if !failures.is_empty() {
        return Response::error(
            502,
            &format!(
                "remove from {name:?} partially failed ({}); {removed} ids were removed",
                failures.join("; ")
            ),
        );
    }
    let mut w = ObjectWriter::new();
    w.u64_field("removed", removed as u64)
        .u64_field("version", state.version);
    Response::json(200, w.finish())
}

/// One shard's parsed `/skyline` answer (with masks, elites, rows).
struct ShardSkyline {
    /// Shard-local handles of the local skyline points.
    handles: Vec<u32>,
    /// Premasks parallel to `handles`.
    masks: Vec<u64>,
    /// Elite positions into `handles`.
    elites: Vec<usize>,
    /// Coordinates parallel to `handles`, already in query space.
    rows: Vec<Vec<f64>>,
    /// Resolved algorithm name, echoed back to the client.
    algorithm: String,
}

fn parse_shard_skyline(body: &str, dims: usize) -> Result<ShardSkyline, String> {
    let v = Value::parse(body).map_err(|e| format!("bad shard response: {e}"))?;
    let ids_u64: Vec<u64> = v
        .get("ids")
        .and_then(Value::as_arr)
        .ok_or("shard response lacks \"ids\"")?
        .iter()
        .map(|x| x.as_u64().ok_or("non-numeric id"))
        .collect::<Result<_, _>>()?;
    let handles: Vec<u32> = ids_u64.iter().map(|&h| h as u32).collect();
    let masks: Vec<u64> = v
        .get("masks")
        .and_then(Value::as_arr)
        .ok_or("shard response lacks \"masks\" (shard too old for include_masks?)")?
        .iter()
        .map(|x| x.as_u64().ok_or("non-numeric mask"))
        .collect::<Result<_, _>>()?;
    let elites: Vec<usize> = v
        .get("elites")
        .and_then(Value::as_arr)
        .ok_or("shard response lacks \"elites\"")?
        .iter()
        .map(|x| x.as_u64().map(|e| e as usize).ok_or("non-numeric elite"))
        .collect::<Result<_, _>>()?;
    let rows_value = v
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("shard response lacks \"rows\"")?;
    let mut rows = Vec::with_capacity(rows_value.len());
    for row in rows_value {
        let row = row.as_arr().ok_or("shard row is not an array")?;
        let coords: Vec<f64> = row
            .iter()
            .map(|x| x.as_f64().ok_or("non-numeric coordinate"))
            .collect::<Result<_, _>>()?;
        if coords.len() != dims {
            return Err(format!(
                "shard row has {} coordinates, expected {dims}",
                coords.len()
            ));
        }
        rows.push(coords);
    }
    if masks.len() != handles.len() || rows.len() != handles.len() {
        return Err("shard arrays disagree on length".to_string());
    }
    if elites.iter().any(|&e| e >= handles.len()) {
        return Err("shard elite position out of range".to_string());
    }
    let algorithm = v
        .get("algorithm")
        .and_then(Value::as_str)
        .unwrap_or("SDI-Subset")
        .to_string();
    Ok(ShardSkyline {
        handles,
        masks,
        elites,
        rows,
        algorithm,
    })
}

/// `GET /skyline?dataset=&algo=&dims=&threads=&deadline_ms=` —
/// scatter-gather over the shards plus the elite-referenced cross-shard
/// merge. Responds `"partial": true` with a `missing_shards` list when
/// shards stayed unreachable after retries.
fn handle_skyline(shared: &Shared, req: &Request) -> Response {
    let overall = Instant::now();
    let mut timer = StageTimer::start();
    // The coordinator roots the trace: inherit the caller's trace id
    // when one arrived, mint one otherwise, and give this request its
    // own span either way. Scatter legs get per-leg child spans.
    let ctx = match req
        .header(trace::TRACE_HEADER)
        .filter(|t| trace::is_valid_id(t))
    {
        Some(t) => TraceContext::child_of(t).expect("validated id"),
        None => TraceContext::mint(),
    };
    let wants_timings = req.query_param("timings") == Some("1");
    let Some(name) = req.query_param("dataset") else {
        return Response::error(400, "missing query parameter \"dataset\"");
    };
    let deadline_ms: Option<u64> = match req.query_param("deadline_ms") {
        None | Some("") => None,
        Some(raw) => match raw.parse() {
            Ok(ms) if ms > 0 => Some(ms),
            _ => {
                return Response::error(
                    400,
                    &format!("bad \"deadline_ms\" value {raw:?} (positive integer)"),
                )
            }
        },
    };
    let budget = deadline_ms.map(Duration::from_millis);
    let threads: u64 = match req.query_param("threads") {
        None | Some("") => 0,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => return Response::error(400, &format!("bad \"threads\" value {raw:?}")),
        },
    };
    match req.query_param("k") {
        None | Some("") | Some("1") => {}
        Some(_) => {
            return Response::error(
                400,
                "the cluster coordinator serves k=1 only: k-skyband membership cannot be \
                 decided from per-shard skylines",
            )
        }
    }
    for flag in ["include_masks", "include_rows"] {
        if req
            .query_param(flag)
            .is_some_and(|v| !v.is_empty() && v != "0")
        {
            return Response::error(
                400,
                &format!("{flag:?} is a shard-level option, not available on the coordinator"),
            );
        }
    }
    let algo = req.query_param("algo").filter(|a| !a.is_empty());
    timer.mark("accept");

    // Snapshot the registry: dims, version, per-shard mutation versions
    // and the per-shard handle→global maps (Arc clones — the query must
    // not block behind later mutations, nor see half of one).
    let (total_dims, version, handle_maps, shard_versions) = {
        let datasets = shared.datasets.lock().unwrap_or_else(|e| e.into_inner());
        let Some(state) = datasets.get(name) else {
            return Response::error(404, &format!("no dataset {name:?}"));
        };
        (
            state.dims,
            state.version,
            state.handle_to_global.clone(),
            state.shard_versions.clone(),
        )
    };

    let full = Subspace::full(total_dims);
    let mask = match req.query_param("dims") {
        None | Some("") => full,
        Some(raw) => {
            let mut picked = Vec::new();
            for part in raw.split(',').filter(|p| !p.is_empty()) {
                match part.trim().parse::<usize>() {
                    Ok(d) if d < total_dims => picked.push(d),
                    _ => {
                        return Response::error(
                            400,
                            &format!("bad dimension {part:?} (dataset has {total_dims} dims)"),
                        )
                    }
                }
            }
            if picked.is_empty() {
                return Response::error(400, "\"dims\" must name at least one dimension");
            }
            Subspace::from_dims(picked)
        }
    };
    let query_dims = if mask == full {
        total_dims
    } else {
        mask.size()
    };

    let algo_label = algo.unwrap_or("SDI-Subset").to_string();
    let deadline_response = |shared: &Shared| {
        shared.metrics.inc_deadline_exceeded();
        shared.emit(Event::DeadlineExceeded {
            dataset: name.to_string(),
            algorithm: algo_label.clone(),
            deadline_ms: deadline_ms.unwrap_or(0),
        });
        Response::error(
            504,
            &format!(
                "deadline of {} ms exceeded computing the cluster skyline of {name:?}",
                deadline_ms.unwrap_or(0)
            ),
        )
    };

    // Scatter. Every shard gets the remaining budget as its own
    // deadline *and* as the retry budget: a slow shard cannot spend
    // time the merge no longer has.
    let mut path = format!(
        "/skyline?dataset={}&include_masks=1&include_rows=1",
        encode_component(name)
    );
    if let Some(a) = algo {
        path.push_str(&format!("&algo={}", encode_component(a)));
    }
    if threads > 0 {
        path.push_str(&format!("&threads={threads}"));
    }
    if let Some(raw) = req.query_param("dims").filter(|d| !d.is_empty()) {
        path.push_str(&format!("&dims={}", encode_component(raw)));
    }
    // Everything the shards see except the (reuse-irrelevant) deadline:
    // the reuse cache key, so a cached answer is only ever replayed for
    // the byte-identical shard query.
    let reuse_sig = path.clone();
    let remaining = budget.map(|b| b.saturating_sub(overall.elapsed()));
    if let Some(rem) = remaining {
        if rem.is_zero() {
            return deadline_response(shared);
        }
        path.push_str(&format!("&deadline_ms={}", rem.as_millis().max(1)));
    }
    let shard_count = shared.shard_count;

    // With `--shard-reuse` on, a shard whose mutation version is
    // unchanged since its last parsed answer for this exact query is
    // served from that answer and its scatter leg never happens.
    let mut reused: Vec<Option<Arc<ShardSkyline>>> = vec![None; shard_count];
    if shared.shard_reuse {
        let cache = shared.reuse.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = cache.get(&(name.to_string(), reuse_sig.clone())) {
            for (s, slot) in entry.iter().enumerate().take(shard_count) {
                if let Some((v, sky)) = slot {
                    if *v == shard_versions[s] {
                        reused[s] = Some(Arc::clone(sky));
                    }
                }
            }
        }
    }
    timer.mark("route");
    let legs = scatter(shard_count, |s| {
        if reused[s].is_some() {
            return None;
        }
        let leg_start = Instant::now();
        let result = shard_read_rpc(shared, s, &path, remaining, Some(&ctx));
        Some((result, leg_start.elapsed().as_micros() as u64))
    });

    // Split the scatter wall-clock into connect / send / shard_wait
    // (the legs overlap, so each named part is the slowest leg's), note
    // the straggler, and stitch each shard's own stage times in as
    // `shard{i}.*` detail entries.
    let mut max_connect = 0u64;
    let mut max_send = 0u64;
    let mut straggler = String::new();
    let mut straggler_us = 0u64;
    for (s, leg) in legs.iter().enumerate() {
        let Some((outcome, leg_us)) = leg else {
            continue; // reused shard: no RPC, no stage times
        };
        if *leg_us >= straggler_us {
            straggler_us = *leg_us;
            straggler = format!("shard{s}");
        }
        timer.detail(&format!("shard{s}.rpc"), *leg_us);
        if let Ok((resp, timing)) = outcome {
            max_connect = max_connect.max(timing.connect_us);
            max_send = max_send.max(timing.send_us);
            if let Some(h) = resp.header(trace::STAGE_TIMES_HEADER) {
                for (stage, us) in trace::decode_stage_times(h) {
                    timer.detail(&format!("shard{s}.{stage}"), us);
                }
            }
        }
    }
    timer.mark_partitioned(
        &[("connect", max_connect), ("send", max_send)],
        "shard_wait",
    );

    let mut parsed: Vec<Option<Arc<ShardSkyline>>> = Vec::with_capacity(shard_count);
    let mut missing: Vec<u64> = Vec::new();
    let mut reused_shards: Vec<u64> = Vec::new();
    for (s, leg) in legs.into_iter().enumerate() {
        let Some((outcome, _)) = leg else {
            reused_shards.push(s as u64);
            parsed.push(reused[s].take());
            continue;
        };
        match outcome {
            Ok((resp, _)) if resp.status == 200 => {
                match parse_shard_skyline(&resp.body_str(), query_dims) {
                    Ok(sky) => parsed.push(Some(Arc::new(sky))),
                    Err(_) => {
                        missing.push(s as u64);
                        parsed.push(None);
                    }
                }
            }
            Ok((resp, _)) if resp.status == 504 => return deadline_response(shared),
            _ => {
                missing.push(s as u64);
                parsed.push(None);
            }
        }
    }
    if missing.len() == shard_count {
        return Response::error(502, "no shard answered the skyline query");
    }
    let partial = !missing.is_empty();

    // Remember every answer we now hold (fresh or replayed) under the
    // shard version it reflects, so the *next* identical query can skip
    // the RPC to any shard that has not moved since.
    if shared.shard_reuse {
        let mut cache = shared.reuse.lock().unwrap_or_else(|e| e.into_inner());
        let key = (name.to_string(), reuse_sig);
        // Crude but bounded: past 64 distinct (dataset, query) shapes,
        // start over rather than grow without limit.
        if cache.len() >= 64 && !cache.contains_key(&key) {
            cache.clear();
        }
        let entry = cache.entry(key).or_insert_with(|| vec![None; shard_count]);
        if entry.len() != shard_count {
            *entry = vec![None; shard_count];
        }
        for (s, sky) in parsed.iter().enumerate() {
            if let Some(sky) = sky {
                entry[s] = Some((shard_versions[s], Arc::clone(sky)));
            }
        }
    }

    // Translate shard handles to global ids and assemble the merge
    // inputs. Rows live in one arena so elite references and the
    // key→row lookup borrow from the same place.
    let mut rows_store: Vec<Vec<f64>> = Vec::new();
    let mut row_index: HashMap<u64, usize> = HashMap::new();
    let mut entries: Vec<MergeEntry> = Vec::new();
    let mut elite_slots: Vec<(u32, usize)> = Vec::new();
    for (s, sky) in parsed.iter().enumerate() {
        let Some(sky) = sky else { continue };
        let map = &handle_maps[s];
        let base = rows_store.len();
        for (i, &h) in sky.handles.iter().enumerate() {
            let Some(&global) = map.get(&h) else {
                return Response::error(
                    500,
                    &format!("shard {s} returned handle {h} the registry does not know"),
                );
            };
            row_index.insert(global, rows_store.len());
            entries.push(MergeEntry {
                key: global,
                shard: s as u32,
                premask: Subspace::from_bits(sky.masks[i]),
            });
            rows_store.push(sky.rows[i].clone());
        }
        for &e in &sky.elites {
            elite_slots.push((s as u32, base + e));
        }
    }
    let elites: Vec<EliteRef<'_>> = elite_slots
        .iter()
        .map(|&(s, i)| EliteRef {
            shard: s,
            row: rows_store[i].as_slice(),
        })
        .collect();
    timer.mark("gather");

    let remaining = budget.map(|b| b.saturating_sub(overall.elapsed()));
    if remaining.is_some_and(|r| r.is_zero()) {
        return deadline_response(shared);
    }
    let cancel = match remaining {
        Some(rem) => CancelToken::with_deadline(rem),
        None => CancelToken::none(),
    };
    let mut metrics = Metrics::new();
    let merge_start = Instant::now();
    let row_of = |key: u64| rows_store[row_index[&key]].as_slice();
    let merged: Result<Vec<u64>, Cancelled> = match &shared.recorder {
        Some(rec) => {
            let mut rec = rec.lock().unwrap_or_else(|e| e.into_inner());
            merge_shard_skylines(
                query_dims,
                shard_count,
                &entries,
                &elites,
                row_of,
                &mut metrics,
                &mut *rec,
                &cancel,
            )
        }
        None => merge_shard_skylines(
            query_dims,
            shard_count,
            &entries,
            &elites,
            row_of,
            &mut metrics,
            &mut NoopRecorder,
            &cancel,
        ),
    };
    let ids = match merged {
        Ok(ids) => ids,
        Err(Cancelled) => return deadline_response(shared),
    };
    shared.emit(Event::ClusterMerge {
        shards: shard_count as u64,
        missing: missing.len() as u64,
        candidates: entries.len() as u64,
        skyline_size: ids.len() as u64,
        dominance_tests: metrics.dominance_tests,
        elapsed_us: merge_start.elapsed().as_micros() as u64,
    });
    timer.mark("merge");

    let algorithm = parsed
        .iter()
        .flatten()
        .next()
        .map(|sky| sky.algorithm.clone())
        .unwrap_or(algo_label);
    let mut w = ObjectWriter::new();
    w.str_field("dataset", name)
        .str_field("algorithm", &algorithm)
        .u64_field("version", version)
        .u64_field("mask_bits", mask.bits())
        .u64_field("k", 1)
        .bool_field("cached", false)
        .u64_field("count", ids.len() as u64)
        .u64_field("elapsed_us", overall.elapsed().as_micros() as u64)
        .u64_array_field("ids", &ids)
        .u64_field("shards", shard_count as u64)
        .bool_field("partial", partial)
        .u64_array_field("missing_shards", &missing)
        .u64_array_field("reused_shards", &reused_shards);
    if wants_timings {
        let mut t = ObjectWriter::new();
        for (stage, us) in timer.stages() {
            t.u64_field(stage, *us);
        }
        w.raw_field("timings", &t.finish());
    }
    finish_cluster_skyline(
        shared,
        timer,
        &ctx,
        straggler,
        Response::json(200, w.finish()),
    )
}

/// Seal a coordinator `/skyline` response: mark the `respond` stage,
/// record the per-stage histograms, attach the stage-times and trace
/// headers, and emit the stitched `stage_breakdown` — to the trace sink
/// always, and to the slow-query log past `--slow-ms`.
fn finish_cluster_skyline(
    shared: &Shared,
    mut timer: StageTimer,
    ctx: &TraceContext,
    straggler: String,
    resp: Response,
) -> Response {
    timer.mark("respond");
    shared.metrics.record_stages(timer.stages());
    let entries = timer.all_entries();
    let resp = resp
        .with_header(
            trace::STAGE_TIMES_HEADER,
            &trace::encode_stage_times(&entries),
        )
        .with_header(trace::TRACE_HEADER, &ctx.trace_id);
    let total_us = timer.stages().iter().map(|(_, us)| us).sum();
    let breakdown = Event::StageBreakdown {
        trace: ctx.trace_id.clone(),
        endpoint: "/skyline".to_string(),
        total_us,
        stages: entries,
        straggler,
    };
    if shared.slow_ms > 0 && total_us >= shared.slow_ms.saturating_mul(1000) {
        shared.emit_slow(breakdown.clone());
        if shared.slow_log.is_some() {
            shared.emit(breakdown);
        }
    } else {
        shared.emit(breakdown);
    }
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_encoding_round_trips_through_the_server_decoder() {
        let raw = "hotels 2024/EU?x=1&y=2";
        let encoded = encode_component(raw);
        assert!(!encoded.contains(' ') && !encoded.contains('&') && !encoded.contains('?'));
        assert_eq!(http::percent_decode(&encoded), raw);
    }

    #[test]
    fn rows_json_is_exact_for_awkward_floats() {
        let rows: Vec<&[f64]> = vec![&[0.1, 2.0 / 3.0], &[f64::MIN_POSITIVE, 1e300]];
        let json = rows_json(&rows);
        let v = Value::parse(&json).unwrap();
        let arr = v.as_arr().unwrap();
        for (i, row) in rows.iter().enumerate() {
            let parsed: Vec<f64> = arr[i]
                .as_arr()
                .unwrap()
                .iter()
                .map(|x| x.as_f64().unwrap())
                .collect();
            assert_eq!(&parsed, row, "row {i} must survive the wire bit-exactly");
        }
    }

    #[test]
    fn quoted_escapes_for_json_bodies() {
        assert_eq!(quoted("plain"), "\"plain\"");
        assert_eq!(quoted("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn shard_skyline_parser_rejects_inconsistent_payloads() {
        let good = r#"{"algorithm":"SDI-Subset","ids":[0,2],"masks":[1,3],"elites":[0],"rows":[[0.5,0.25],[0.125,1]]}"#;
        let sky = parse_shard_skyline(good, 2).unwrap();
        assert_eq!(sky.handles, vec![0, 2]);
        assert_eq!(sky.masks, vec![1, 3]);
        assert_eq!(sky.elites, vec![0]);
        assert_eq!(sky.rows[1], vec![0.125, 1.0]);

        let wrong_dims = parse_shard_skyline(good, 3);
        assert!(wrong_dims.is_err());
        let missing_masks = r#"{"ids":[0],"elites":[],"rows":[[1]]}"#;
        assert!(parse_shard_skyline(missing_masks, 1).is_err());
        let elite_oob = r#"{"ids":[0],"masks":[0],"elites":[1],"rows":[[1]]}"#;
        assert!(parse_shard_skyline(elite_oob, 1).is_err());
    }
}

//! Server-side metrics, reusing the obs histogram for latencies.
//!
//! One [`Histogram`] per endpoint (power-of-two microsecond buckets, the
//! same shape the trace summary uses) plus request/error counters. The
//! `/metrics` endpoint renders this together with cache and registry
//! state as one JSON object.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use skyline_obs::histogram::Histogram;
use skyline_obs::json::ObjectWriter;

#[derive(Default)]
struct EndpointMetrics {
    requests: u64,
    errors: u64,
    latency_us: Histogram,
}

/// Aggregated request counters, grouped by `"{method} {endpoint}"`,
/// plus robustness counters (shed, deadline, panic) for `/metrics`.
#[derive(Default)]
pub struct ServerMetrics {
    endpoints: Mutex<BTreeMap<String, EndpointMetrics>>,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
}

impl ServerMetrics {
    /// Empty metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Record one finished request.
    pub fn record(&self, method: &str, endpoint: &str, status: u16, elapsed_us: u64) {
        let mut map = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        let m = map.entry(format!("{method} {endpoint}")).or_default();
        m.requests += 1;
        if status >= 400 {
            m.errors += 1;
        }
        m.latency_us.record(elapsed_us);
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        let map = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        map.values().map(|m| m.requests).sum()
    }

    /// Count one request shed by the overload gate (503).
    pub fn inc_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed under overload since boot.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Count one query that blew its deadline (504).
    pub fn inc_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries cancelled at their deadline since boot.
    pub fn deadline_exceeded_total(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Count one handler panic turned into a 500.
    pub fn inc_panics(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught and isolated since boot.
    pub fn panics_total(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Render per-endpoint stats as a JSON object (endpoint → stats).
    pub fn render_json(&self) -> String {
        let map = self.endpoints.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = ObjectWriter::new();
        for (key, m) in map.iter() {
            let mut ep = ObjectWriter::new();
            ep.u64_field("requests", m.requests)
                .u64_field("errors", m.errors)
                .u64_field("latency_us_sum", m.latency_us.sum())
                .u64_field("latency_us_max", m.latency_us.max());
            if m.latency_us.count() > 0 {
                ep.f64_field("latency_us_mean", m.latency_us.mean());
            }
            out.raw_field(key, &ep.finish());
        }
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_obs::json::Value;

    #[test]
    fn records_and_renders_per_endpoint() {
        let m = ServerMetrics::new();
        m.record("GET", "/skyline", 200, 120);
        m.record("GET", "/skyline", 200, 80);
        m.record("GET", "/skyline", 404, 5);
        m.record("GET", "/healthz", 200, 1);
        assert_eq!(m.total_requests(), 4);

        let v = Value::parse(&m.render_json()).expect("valid json");
        let sky = v.get("GET /skyline").expect("endpoint present");
        assert_eq!(sky.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(sky.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(sky.get("latency_us_sum").unwrap().as_u64(), Some(205));
        assert_eq!(sky.get("latency_us_max").unwrap().as_u64(), Some(120));
        let health = v.get("GET /healthz").expect("endpoint present");
        assert_eq!(health.get("errors").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn robustness_counters_accumulate() {
        let m = ServerMetrics::new();
        assert_eq!(m.shed_total(), 0);
        m.inc_shed();
        m.inc_shed();
        m.inc_deadline_exceeded();
        m.inc_panics();
        assert_eq!(m.shed_total(), 2);
        assert_eq!(m.deadline_exceeded_total(), 1);
        assert_eq!(m.panics_total(), 1);
    }
}

//! Server-side metrics, reusing the obs histogram for latencies.
//!
//! One [`Histogram`] per endpoint (power-of-two microsecond buckets, the
//! same shape the trace summary uses) plus request/error counters. The
//! `/metrics` endpoint renders this together with cache and registry
//! state as one JSON object.

use std::collections::BTreeMap;
use std::sync::Mutex;

use skyline_obs::histogram::Histogram;
use skyline_obs::json::ObjectWriter;

#[derive(Default)]
struct EndpointMetrics {
    requests: u64,
    errors: u64,
    latency_us: Histogram,
}

/// Aggregated request counters, grouped by `"{method} {endpoint}"`.
#[derive(Default)]
pub struct ServerMetrics {
    endpoints: Mutex<BTreeMap<String, EndpointMetrics>>,
}

impl ServerMetrics {
    /// Empty metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Record one finished request.
    pub fn record(&self, method: &str, endpoint: &str, status: u16, elapsed_us: u64) {
        let mut map = self.endpoints.lock().expect("metrics lock");
        let m = map.entry(format!("{method} {endpoint}")).or_default();
        m.requests += 1;
        if status >= 400 {
            m.errors += 1;
        }
        m.latency_us.record(elapsed_us);
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        let map = self.endpoints.lock().expect("metrics lock");
        map.values().map(|m| m.requests).sum()
    }

    /// Render per-endpoint stats as a JSON object (endpoint → stats).
    pub fn render_json(&self) -> String {
        let map = self.endpoints.lock().expect("metrics lock");
        let mut out = ObjectWriter::new();
        for (key, m) in map.iter() {
            let mut ep = ObjectWriter::new();
            ep.u64_field("requests", m.requests)
                .u64_field("errors", m.errors)
                .u64_field("latency_us_sum", m.latency_us.sum())
                .u64_field("latency_us_max", m.latency_us.max());
            if m.latency_us.count() > 0 {
                ep.f64_field("latency_us_mean", m.latency_us.mean());
            }
            out.raw_field(key, &ep.finish());
        }
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_obs::json::Value;

    #[test]
    fn records_and_renders_per_endpoint() {
        let m = ServerMetrics::new();
        m.record("GET", "/skyline", 200, 120);
        m.record("GET", "/skyline", 200, 80);
        m.record("GET", "/skyline", 404, 5);
        m.record("GET", "/healthz", 200, 1);
        assert_eq!(m.total_requests(), 4);

        let v = Value::parse(&m.render_json()).expect("valid json");
        let sky = v.get("GET /skyline").expect("endpoint present");
        assert_eq!(sky.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(sky.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(sky.get("latency_us_sum").unwrap().as_u64(), Some(205));
        assert_eq!(sky.get("latency_us_max").unwrap().as_u64(), Some(120));
        let health = v.get("GET /healthz").expect("endpoint present");
        assert_eq!(health.get("errors").unwrap().as_u64(), Some(0));
    }
}

//! Server-side metrics, reusing the obs histogram for latencies.
//!
//! One histogram per endpoint (power-of-two microsecond buckets, the
//! same shape the trace summary uses) plus request/error counters, and
//! one histogram per request *stage* (parse, compute, shard_wait, …)
//! fed by the stage timers. The `/metrics` endpoint renders this
//! together with cache and registry state as one JSON object, or as the
//! Prometheus text exposition under `?format=prometheus`.
//!
//! The hot path is lock-free: every counter is an atomic and the
//! latency histograms are [`AtomicHistogram`]s, so concurrent request
//! threads never serialize on a metrics mutex. The only lock is a
//! [`RwLock`] around the endpoint/stage maps, taken for reading on the
//! fast path; a write lock is needed only the first time a new
//! endpoint or stage name appears.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use skyline_obs::histogram::{AtomicHistogram, Histogram, BUCKETS};
use skyline_obs::json::ObjectWriter;

#[derive(Default)]
struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_us: AtomicHistogram,
}

/// Aggregated request counters, grouped by `"{method} {endpoint}"`,
/// plus per-stage latency histograms and robustness counters (shed,
/// deadline, panic) for `/metrics`.
#[derive(Default)]
pub struct ServerMetrics {
    endpoints: RwLock<BTreeMap<String, Arc<EndpointMetrics>>>,
    stages: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
}

/// Look up `key` in a name-keyed map under the read lock, inserting
/// under the write lock only on first sight of the name.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, key: &str) -> Arc<T> {
    if let Some(v) = map
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(key)
        .cloned()
    {
        return v;
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    w.entry(key.to_string()).or_default().clone()
}

impl ServerMetrics {
    /// Empty metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Record one finished request. Lock-free after the first request
    /// to each endpoint.
    pub fn record(&self, method: &str, endpoint: &str, status: u16, elapsed_us: u64) {
        let key = format!("{method} {endpoint}");
        let m = intern(&self.endpoints, &key);
        m.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency_us.record(elapsed_us);
    }

    /// Record one stage duration (e.g. `compute`, `shard_wait`).
    /// Lock-free after the first sample of each stage name.
    pub fn record_stage(&self, stage: &str, elapsed_us: u64) {
        intern(&self.stages, stage).record(elapsed_us);
    }

    /// Record a whole stage list (a finished [`skyline_obs::StageTimer`]).
    pub fn record_stages(&self, stages: &[(String, u64)]) {
        for (name, us) in stages {
            self.record_stage(name, *us);
        }
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        let map = self.endpoints.read().unwrap_or_else(|e| e.into_inner());
        map.values()
            .map(|m| m.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Count one request shed by the overload gate (503).
    pub fn inc_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed under overload since boot.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Count one query that blew its deadline (504).
    pub fn inc_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries cancelled at their deadline since boot.
    pub fn deadline_exceeded_total(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Count one handler panic turned into a 500.
    pub fn inc_panics(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught and isolated since boot.
    pub fn panics_total(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Consistent snapshot of the per-endpoint stats.
    fn endpoint_snapshots(&self) -> Vec<(String, u64, u64, Histogram)> {
        let map = self.endpoints.read().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(k, m)| {
                (
                    k.clone(),
                    m.requests.load(Ordering::Relaxed),
                    m.errors.load(Ordering::Relaxed),
                    m.latency_us.snapshot(),
                )
            })
            .collect()
    }

    /// Snapshot of the per-stage latency histograms.
    pub fn stage_snapshots(&self) -> Vec<(String, Histogram)> {
        let map = self.stages.read().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
    }

    /// Render per-endpoint stats as a JSON object (endpoint → stats).
    pub fn render_json(&self) -> String {
        let mut out = ObjectWriter::new();
        for (key, requests, errors, latency) in self.endpoint_snapshots() {
            let mut ep = ObjectWriter::new();
            ep.u64_field("requests", requests)
                .u64_field("errors", errors)
                .u64_field("latency_us_sum", latency.sum())
                .u64_field("latency_us_max", latency.max());
            if latency.count() > 0 {
                ep.f64_field("latency_us_mean", latency.mean())
                    .u64_field("latency_us_p50", latency.p50())
                    .u64_field("latency_us_p99", latency.p99());
            }
            out.raw_field(&key, &ep.finish());
        }
        out.finish()
    }

    /// Render the per-stage histograms as a JSON object (stage → stats).
    pub fn render_stages_json(&self) -> String {
        let mut out = ObjectWriter::new();
        for (stage, h) in self.stage_snapshots() {
            let mut s = ObjectWriter::new();
            s.u64_field("count", h.count())
                .u64_field("sum_us", h.sum())
                .u64_field("p50_us", h.p50())
                .u64_field("p99_us", h.p99())
                .u64_field("max_us", h.max());
            out.raw_field(&stage, &s.finish());
        }
        out.finish()
    }

    /// Render everything as the Prometheus text exposition format
    /// (`/metrics?format=prometheus`). `extras` are appended as gauges
    /// — the caller threads in state the metrics struct doesn't own
    /// (cache hit rate, registry size, shard counters).
    pub fn render_prometheus(&self, extras: &[(String, f64)]) -> String {
        let mut out = String::new();
        let endpoints = self.endpoint_snapshots();

        let _ = writeln!(out, "# TYPE skyline_requests_total counter");
        for (key, requests, _, _) in &endpoints {
            let _ = writeln!(
                out,
                "skyline_requests_total{{endpoint=\"{}\"}} {requests}",
                escape_label(key)
            );
        }
        let _ = writeln!(out, "# TYPE skyline_request_errors_total counter");
        for (key, _, errors, _) in &endpoints {
            let _ = writeln!(
                out,
                "skyline_request_errors_total{{endpoint=\"{}\"}} {errors}",
                escape_label(key)
            );
        }
        let _ = writeln!(out, "# TYPE skyline_request_latency_us histogram");
        for (key, _, _, latency) in &endpoints {
            prom_histogram(
                &mut out,
                "skyline_request_latency_us",
                "endpoint",
                key,
                latency,
            );
        }
        let stages = self.stage_snapshots();
        if !stages.is_empty() {
            let _ = writeln!(out, "# TYPE skyline_stage_us histogram");
            for (stage, h) in &stages {
                prom_histogram(&mut out, "skyline_stage_us", "stage", stage, h);
            }
        }
        for (name, value) in [
            ("skyline_shed_total", self.shed_total()),
            (
                "skyline_deadline_exceeded_total",
                self.deadline_exceeded_total(),
            ),
            ("skyline_panics_total", self.panics_total()),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        // Extras may carry inline labels (`name{shard="0"}`); the TYPE
        // line names the bare family, once per consecutive run.
        let mut last_family = "";
        for (name, value) in extras {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} gauge");
                last_family = family;
            }
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One histogram in exposition form: cumulative `le` buckets (the upper
/// bound of log2 bucket `i` is `2^i - 1`), then `_sum` and `_count`.
fn prom_histogram(out: &mut String, name: &str, label: &str, value: &str, h: &Histogram) {
    let value = escape_label(value);
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        cumulative += c;
        let le = if i == BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            ((1u64 << i) - 1).to_string()
        };
        let _ = writeln!(
            out,
            "{name}_bucket{{{label}=\"{value}\",le=\"{le}\"}} {cumulative}"
        );
    }
    let _ = writeln!(out, "{name}_sum{{{label}=\"{value}\"}} {}", h.sum());
    let _ = writeln!(out, "{name}_count{{{label}=\"{value}\"}} {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_obs::json::Value;

    #[test]
    fn records_and_renders_per_endpoint() {
        let m = ServerMetrics::new();
        m.record("GET", "/skyline", 200, 120);
        m.record("GET", "/skyline", 200, 80);
        m.record("GET", "/skyline", 404, 5);
        m.record("GET", "/healthz", 200, 1);
        assert_eq!(m.total_requests(), 4);

        let v = Value::parse(&m.render_json()).expect("valid json");
        let sky = v.get("GET /skyline").expect("endpoint present");
        assert_eq!(sky.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(sky.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(sky.get("latency_us_sum").unwrap().as_u64(), Some(205));
        assert_eq!(sky.get("latency_us_max").unwrap().as_u64(), Some(120));
        assert!(sky.get("latency_us_p50").unwrap().as_u64().is_some());
        assert!(sky.get("latency_us_p99").unwrap().as_u64().is_some());
        let health = v.get("GET /healthz").expect("endpoint present");
        assert_eq!(health.get("errors").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn robustness_counters_accumulate() {
        let m = ServerMetrics::new();
        assert_eq!(m.shed_total(), 0);
        m.inc_shed();
        m.inc_shed();
        m.inc_deadline_exceeded();
        m.inc_panics();
        assert_eq!(m.shed_total(), 2);
        assert_eq!(m.deadline_exceeded_total(), 1);
        assert_eq!(m.panics_total(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = ServerMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..500u64 {
                        m.record("GET", "/skyline", 200, i);
                        m.record_stage("compute", i);
                    }
                });
            }
        });
        assert_eq!(m.total_requests(), 4000);
        let stages = m.stage_snapshots();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].1.count(), 4000);
    }

    #[test]
    fn stage_histograms_render_as_json() {
        let m = ServerMetrics::new();
        m.record_stages(&[
            ("parse".to_string(), 4),
            ("compute".to_string(), 900),
            ("respond".to_string(), 12),
        ]);
        m.record_stage("compute", 1100);
        let v = Value::parse(&m.render_stages_json()).expect("valid json");
        let compute = v.get("compute").expect("stage present");
        assert_eq!(compute.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(compute.get("sum_us").unwrap().as_u64(), Some(2000));
        assert!(compute.get("p99_us").unwrap().as_u64().unwrap() >= 1100);
        assert_eq!(
            v.get("parse").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = ServerMetrics::new();
        m.record("GET", "/skyline", 200, 100);
        m.record("GET", "/skyline", 500, 3000);
        m.record_stage("merge", 250);
        m.inc_shed();
        let text = m.render_prometheus(&[("skyline_cache_hit_rate".to_string(), 0.75)]);
        for needle in [
            "# TYPE skyline_requests_total counter",
            "skyline_requests_total{endpoint=\"GET /skyline\"} 2",
            "skyline_request_errors_total{endpoint=\"GET /skyline\"} 1",
            "# TYPE skyline_request_latency_us histogram",
            "skyline_request_latency_us_bucket{endpoint=\"GET /skyline\",le=\"+Inf\"} 2",
            "skyline_request_latency_us_count{endpoint=\"GET /skyline\"} 2",
            "skyline_request_latency_us_sum{endpoint=\"GET /skyline\"} 3100",
            "# TYPE skyline_stage_us histogram",
            "skyline_stage_us_bucket{stage=\"merge\",le=\"255\"} 1",
            "# TYPE skyline_shed_total counter",
            "skyline_shed_total 1",
            "# TYPE skyline_cache_hit_rate gauge",
            "skyline_cache_hit_rate 0.75",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Buckets are cumulative: every later bucket count >= earlier.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("skyline_request_latency_us_bucket"))
        {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "non-cumulative bucket line: {line}");
            last = n;
        }
    }
}

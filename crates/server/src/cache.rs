//! The skyline result cache.
//!
//! Results are keyed by everything that determines the answer bytes:
//! dataset name **and content version**, canonical algorithm name,
//! subspace mask, k-skyband depth, and worker count. Because the version
//! is part of the key, a stale entry can never be served.
//!
//! On a streaming mutation the serving layer calls
//! [`ResultCache::patch_dataset`] with the mutation's
//! [`SkylineDelta`]: full-space plain-skyline entries sitting exactly at
//! the mutation's base version are **patched forward** — their id list
//! is updated by the delta's sorted merge and the entry is re-keyed to
//! the new version — so the next warm query hits without a recompute.
//! Entries the delta cannot describe (projected subspaces, k-skybands,
//! other versions) are dropped, exactly as the older
//! [`ResultCache::invalidate_dataset`] path would.
//!
//! Eviction is least-recently-used over a bounded map. The capacity is
//! small (hundreds), so the eviction scan is a cheap linear pass rather
//! than an intrusive list.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use skyline_core::delta::SkylineDelta;
use skyline_core::point::PointId;

/// Everything that determines a cached skyline result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset name.
    pub dataset: String,
    /// Dataset content version the result was computed at.
    pub version: u64,
    /// Canonical algorithm display name (registry spelling).
    pub algorithm: String,
    /// Subspace mask bits; the full space is stored as its full mask.
    pub mask_bits: u64,
    /// k-skyband depth; `1` is the plain skyline.
    pub k: u64,
    /// Worker count for parallel engines; `0` for sequential.
    pub threads: u64,
}

/// A cached skyline (public stream handles, ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Skyline point handles.
    pub ids: Vec<PointId>,
    /// Wall-clock of the original computation, microseconds.
    pub elapsed_us: u64,
}

/// Counters exposed through `/metrics`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped by dataset invalidation.
    pub invalidations: u64,
    /// Entries patched forward by a mutation delta instead of dropped.
    pub patched: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// What [`ResultCache::patch_dataset`] did to a dataset's entries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PatchOutcome {
    /// Entries patched forward to the new version.
    pub patched: usize,
    /// Entries dropped because the delta could not describe them.
    pub invalidated: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, (u64, Arc<CachedResult>)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    patched: u64,
}

/// Bounded, thread-safe LRU cache of skyline results.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results. Capacity `0` disables
    /// caching entirely: every lookup misses and inserts are dropped —
    /// the benchmark harness uses this to measure the pure recompute
    /// path now that mutations patch entries forward instead of
    /// invalidating them.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look `key` up, bumping its recency and the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((last_used, result)) => {
                *last_used = tick;
                let result = Arc::clone(result);
                inner.hits += 1;
                Some(result)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a result, evicting the least-recently-used entry when full.
    pub fn insert(&self, key: CacheKey, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.evictions += 1;
            }
        }
        inner.map.insert(key, (tick, Arc::new(result)));
    }

    /// Drop every entry belonging to `dataset` (any version). Returns the
    /// number of entries removed.
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        let mut inner = self.inner.lock().expect("cache lock");
        let before = inner.map.len();
        inner.map.retain(|k, _| k.dataset != dataset);
        let removed = before - inner.map.len();
        inner.invalidations += removed as u64;
        removed
    }

    /// Carry `dataset`'s entries across a mutation described by `delta`
    /// (base version → `delta.version`).
    ///
    /// Entries the delta fully describes — plain skyline (`k == 1`) over
    /// the full space (`mask_bits == full_mask`) computed exactly at the
    /// base version — are patched in place: the delta's sorted merge
    /// updates the id list and the entry is re-keyed to `delta.version`,
    /// preserving recency. Everything else of this dataset (projected
    /// subspaces, skybands, stale versions) is dropped. A patch that does
    /// not fit its entry (ids contradict the delta's base) drops the
    /// entry too — served bytes are never guessed.
    pub fn patch_dataset(
        &self,
        dataset: &str,
        full_mask: u64,
        base_version: u64,
        delta: &SkylineDelta,
    ) -> PatchOutcome {
        let mut inner = self.inner.lock().expect("cache lock");
        let keys: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|k| k.dataset == dataset)
            .cloned()
            .collect();
        let mut outcome = PatchOutcome::default();
        for key in keys {
            let patchable = key.version == base_version && key.k == 1 && key.mask_bits == full_mask;
            let (used, result) = inner.map.remove(&key).expect("key just listed");
            if patchable {
                let mut patched = (*result).clone();
                if delta.apply(&mut patched.ids) {
                    let new_key = CacheKey {
                        version: delta.version,
                        ..key
                    };
                    inner.map.insert(new_key, (used, Arc::new(patched)));
                    outcome.patched += 1;
                    continue;
                }
            }
            outcome.invalidated += 1;
        }
        inner.patched += outcome.patched as u64;
        inner.invalidations += outcome.invalidated as u64;
        outcome
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            patched: inner.patched,
            entries: inner.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dataset: &str, version: u64, mask: u64) -> CacheKey {
        CacheKey {
            dataset: dataset.to_string(),
            version,
            algorithm: "SDI-Subset".to_string(),
            mask_bits: mask,
            k: 1,
            threads: 0,
        }
    }

    fn result(ids: &[PointId]) -> CachedResult {
        CachedResult {
            ids: ids.to_vec(),
            elapsed_us: 5,
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = ResultCache::new(8);
        assert!(cache.get(&key("a", 1, 3)).is_none());
        cache.insert(key("a", 1, 3), result(&[1, 2]));
        let got = cache.get(&key("a", 1, 3)).expect("hit");
        assert_eq!(got.ids, vec![1, 2]);
        // A different version is a different key.
        assert!(cache.get(&key("a", 2, 3)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(2);
        cache.insert(key("a", 1, 1), result(&[1]));
        cache.insert(key("a", 1, 2), result(&[2]));
        // Touch mask 1 so mask 2 is now the coldest.
        assert!(cache.get(&key("a", 1, 1)).is_some());
        cache.insert(key("a", 1, 4), result(&[3]));
        assert!(
            cache.get(&key("a", 1, 1)).is_some(),
            "recently used survives"
        );
        assert!(cache.get(&key("a", 1, 2)).is_none(), "coldest evicted");
        assert!(cache.get(&key("a", 1, 4)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResultCache::new(2);
        cache.insert(key("a", 1, 1), result(&[1]));
        cache.insert(key("a", 1, 2), result(&[2]));
        cache.insert(key("a", 1, 1), result(&[9]));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&key("a", 1, 1)).unwrap().ids, vec![9]);
        assert!(cache.get(&key("a", 1, 2)).is_some());
    }

    #[test]
    fn patch_carries_full_space_entries_and_drops_the_rest() {
        let cache = ResultCache::new(8);
        // Full space is mask 3 in this fixture.
        cache.insert(key("a", 5, 3), result(&[1, 2, 4]));
        cache.insert(key("a", 5, 1), result(&[1])); // projected: drop
        cache.insert(key("a", 4, 3), result(&[1, 2])); // stale: drop
        cache.insert(key("b", 5, 3), result(&[7])); // other dataset: keep
        let delta = SkylineDelta::from_events(vec![3], vec![2], 6);
        let out = cache.patch_dataset("a", 3, 5, &delta);
        assert_eq!((out.patched, out.invalidated), (1, 2));
        assert_eq!(cache.get(&key("a", 6, 3)).unwrap().ids, vec![1, 3, 4]);
        assert!(cache.get(&key("a", 5, 1)).is_none());
        assert!(cache.get(&key("a", 4, 3)).is_none());
        assert!(cache.get(&key("b", 5, 3)).is_some());
        let s = cache.stats();
        assert_eq!((s.patched, s.invalidations), (1, 2));
    }

    #[test]
    fn patch_that_does_not_fit_drops_the_entry() {
        let cache = ResultCache::new(8);
        cache.insert(key("a", 5, 3), result(&[1, 2]));
        // Delta says 9 left the skyline, but the entry never had 9.
        let delta = SkylineDelta::from_events(vec![], vec![9], 6);
        let out = cache.patch_dataset("a", 3, 5, &delta);
        assert_eq!((out.patched, out.invalidated), (0, 1));
        assert!(cache.get(&key("a", 6, 3)).is_none());
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(key("a", 1, 3), result(&[1]));
        assert!(cache.get(&key("a", 1, 3)).is_none());
        let s = cache.stats();
        assert_eq!((s.entries, s.misses), (0, 1));
    }

    #[test]
    fn invalidation_is_per_dataset() {
        let cache = ResultCache::new(8);
        cache.insert(key("a", 1, 1), result(&[1]));
        cache.insert(key("a", 2, 1), result(&[1]));
        cache.insert(key("b", 1, 1), result(&[2]));
        assert_eq!(cache.invalidate_dataset("a"), 2);
        assert!(cache.get(&key("b", 1, 1)).is_some());
        let s = cache.stats();
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.entries, 1);
    }
}

//! Per-dataset durability: an append-only JSONL write-ahead log plus
//! periodically compacted snapshots.
//!
//! Layout under the data directory, one pair of files per dataset:
//!
//! - `<name>.wal` — one JSON record per line, in apply order:
//!   `{"op":"create","v":0,"dims":D}`, `{"op":"insert","v":V,"row":[…]}`,
//!   `{"op":"remove","v":V,"id":H}`. `v` is the dataset content version
//!   *after* the operation, so replay is idempotent: records at or below
//!   the restored version are skipped.
//! - `<name>.snap` — one JSON object holding the full slot table of the
//!   [`StreamingSkyline`] (tombstones as `null`, so handle positions are
//!   preserved) and the version it materialises. Written to a temp file
//!   and renamed, so a crash never leaves a torn snapshot.
//!
//! Recovery replays the snapshot (if any) and then the log. A torn tail
//! — a half-written final record after a crash — is detected as the
//! first unparseable line and truncated away: the dataset recovers to
//! the last complete (acked) record.
//!
//! The log is compacted once it grows past a byte threshold: the current
//! state is snapshotted and the log truncated to empty.

use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::time::{Duration, Instant};

use skyline_core::changelog::{ChangeOp, ChangeRecord};
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;
use skyline_obs::json::Value;

use crate::faults;

/// When WAL appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acked write survives power loss.
    Always,
    /// `fsync` at most once per interval: bounded data loss, much
    /// cheaper under write bursts.
    Interval(Duration),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> FsyncPolicy {
        FsyncPolicy::Interval(FsyncPolicy::DEFAULT_INTERVAL)
    }
}

impl FsyncPolicy {
    /// The default flush period of the `interval` policy.
    pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(100);
}

impl FromStr for FsyncPolicy {
    type Err = String;

    /// Parse `always`, `never`, `interval`, or `interval=<ms>`.
    fn from_str(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Self::DEFAULT_INTERVAL)),
            other => match other.strip_prefix("interval=") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad fsync interval {ms:?} (milliseconds)")),
                None => Err(format!(
                    "bad fsync policy {s:?} (always, interval, interval=<ms>, never)"
                )),
            },
        }
    }
}

/// Durability settings for a [`Registry`](crate::registry::Registry).
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Directory holding the per-dataset WAL and snapshot files.
    pub dir: PathBuf,
    /// When appends are fsynced.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + truncate) once the WAL grows past this size.
    pub compact_bytes: u64,
}

impl StorageConfig {
    /// Storage in `dir` with the default policy (`interval`) and a 1 MiB
    /// compaction threshold.
    pub fn new(dir: impl Into<PathBuf>) -> StorageConfig {
        StorageConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval(FsyncPolicy::DEFAULT_INTERVAL),
            compact_bytes: 1 << 20,
        }
    }
}

/// What recovery found for one dataset.
pub struct Recovered {
    /// The reconstructed stream (snapshot + replayed log records).
    pub stream: StreamingSkyline,
    /// The reopened log, positioned for appends.
    pub wal: DatasetWal,
    /// Log records applied on top of the snapshot.
    pub replayed: u64,
    /// Every replayed record as a [`ChangeRecord`] — the operation plus
    /// the skyline delta it produced, in replay order: the same
    /// versioned enter/leave stream the live process emitted when it
    /// first applied these mutations. Records absorbed by the snapshot
    /// contribute nothing (their effect is already in the snapshot's
    /// state, not a delta) — which is exactly the change log's
    /// retention horizon after a restart. The chaos harness compares
    /// this stream against the uncrashed run's to pin replay fidelity.
    pub records: Vec<ChangeRecord>,
    /// Highest fencing epoch recorded in the log. Compaction truncates
    /// epoch records along with everything else, so the node-level
    /// epoch file (see [`read_node_epoch`]) stays authoritative; this
    /// only widens the recovered maximum.
    pub epoch: u64,
}

/// The append side of one dataset's log.
pub struct DatasetWal {
    wal_path: PathBuf,
    snap_path: PathBuf,
    writer: BufWriter<File>,
    wal_bytes: u64,
    policy: FsyncPolicy,
    last_sync: Instant,
    compact_bytes: u64,
}

fn wal_file(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.wal"))
}

fn snap_file(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.snap"))
}

/// Format an `f64` so it round-trips through the JSON parser. Rust's
/// shortest-representation `Display` is exact for finite values;
/// infinities are written as overflowing literals (`parse` saturates
/// them back to the infinity).
fn fmt_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v > 0.0 {
        out.push_str("1e999");
    } else if v < 0.0 {
        out.push_str("-1e999");
    } else {
        out.push_str("null"); // NaN: rejected upstream, corrupt if seen
    }
}

pub(crate) fn row_json(row: &[f64]) -> String {
    let mut out = String::with_capacity(row.len() * 8 + 2);
    out.push('[');
    for (i, &v) in row.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        fmt_f64(v, &mut out);
    }
    out.push(']');
    out
}

/// The `create` record opening every fresh log. `v` is 0: the record
/// describes the empty dataset.
pub fn create_record(dims: usize) -> String {
    format!("{{\"op\":\"create\",\"v\":0,\"dims\":{dims}}}")
}

/// An `insert` record; `v` is the content version after the insert.
pub fn insert_record(row: &[f64], v: u64) -> String {
    format!("{{\"op\":\"insert\",\"v\":{v},\"row\":{}}}", row_json(row))
}

/// A `remove` record; `v` is the content version after the removal.
pub fn remove_record(id: PointId, v: u64) -> String {
    format!("{{\"op\":\"remove\",\"v\":{v},\"id\":{id}}}")
}

/// An `epoch` record marking that the node began serving this dataset
/// under a new fencing epoch. Does not advance the content version.
pub fn epoch_record(epoch: u64) -> String {
    format!("{{\"op\":\"epoch\",\"epoch\":{epoch}}}")
}

fn node_epoch_file(dir: &Path) -> PathBuf {
    dir.join("node.epoch")
}

/// The fencing epoch persisted for this data directory; 0 when the node
/// has never been promoted or demoted.
pub fn read_node_epoch(dir: &Path) -> u64 {
    fs::read_to_string(node_epoch_file(dir))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Persist the node's fencing epoch (temp file + atomic rename, synced)
/// so a restart resumes under the same epoch.
pub fn write_node_epoch(dir: &Path, epoch: u64) -> io::Result<()> {
    let path = node_epoch_file(dir);
    let tmp = path.with_extension("epoch.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(format!("{epoch}\n").as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)
}

impl DatasetWal {
    /// Start a fresh log for a new dataset, truncating any stale files
    /// left by a dropped dataset of the same name.
    pub fn create(config: &StorageConfig, name: &str) -> io::Result<DatasetWal> {
        let wal_path = wal_file(&config.dir, name);
        let snap_path = snap_file(&config.dir, name);
        if snap_path.exists() {
            fs::remove_file(&snap_path)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&wal_path)?;
        Ok(DatasetWal {
            wal_path,
            snap_path,
            writer: BufWriter::new(file),
            wal_bytes: 0,
            policy: config.fsync,
            last_sync: Instant::now(),
            compact_bytes: config.compact_bytes,
        })
    }

    /// Current size of the log file, bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Append a batch of records as one write, then apply the fsync
    /// policy. All-or-nothing from the caller's perspective: on error
    /// nothing should be treated as acked (a torn tail is truncated at
    /// recovery).
    pub fn append_batch(&mut self, records: &[String]) -> io::Result<()> {
        faults::check_io("wal_append")?;
        let mut buf = String::with_capacity(records.iter().map(|r| r.len() + 1).sum());
        for r in records {
            buf.push_str(r);
            buf.push('\n');
        }
        self.writer.write_all(buf.as_bytes())?;
        self.wal_bytes += buf.len() as u64;
        self.sync()
    }

    /// Flush, and fsync as the policy demands.
    fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        match self.policy {
            FsyncPolicy::Always => self.writer.get_ref().sync_data()?,
            FsyncPolicy::Interval(period) => {
                if self.last_sync.elapsed() >= period {
                    self.writer.get_ref().sync_data()?;
                    self.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Compact if the log has outgrown the threshold: snapshot `stream`
    /// and truncate the log. Returns whether a compaction ran.
    pub fn maybe_compact(&mut self, stream: &StreamingSkyline) -> io::Result<bool> {
        if self.wal_bytes < self.compact_bytes {
            return Ok(false);
        }
        self.write_snapshot(stream)?;
        Ok(true)
    }

    /// Write a snapshot of `stream` (temp file + atomic rename) and
    /// truncate the log: everything at or below the snapshot version now
    /// lives in the snapshot.
    pub fn write_snapshot(&mut self, stream: &StreamingSkyline) -> io::Result<()> {
        faults::check_io("snapshot")?;
        let doc = snapshot_doc(stream);
        let tmp = self.snap_path.with_extension("snap.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(doc.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.snap_path)?;
        // The log is now redundant up to the snapshot version.
        self.writer.flush()?;
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.wal_path)?;
        self.writer = BufWriter::new(file);
        self.wal_bytes = 0;
        self.last_sync = Instant::now();
        Ok(())
    }
}

/// The snapshot document for `stream`: the full slot table (tombstones
/// as `null`, preserving handle positions) plus the version it
/// materialises. The same wire format serves the on-disk `.snap` file
/// and the `GET /datasets/{name}/snapshot` replica-resync endpoint.
pub fn snapshot_doc(stream: &StreamingSkyline) -> String {
    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\"dims\":{},\"version\":{},\"slots\":[",
        stream.dims(),
        stream.version()
    );
    for (i, slot) in stream.slot_rows().iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        match slot {
            Some(row) => doc.push_str(&row_json(row)),
            None => doc.push_str("null"),
        }
    }
    doc.push_str("]}\n");
    doc
}

/// Dataset names that have a WAL or snapshot under `dir`, sorted.
pub fn list_datasets(dir: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let (Some(stem), Some(ext)) = (
            path.file_stem().and_then(|s| s.to_str()),
            path.extension().and_then(|s| s.to_str()),
        ) else {
            continue;
        };
        if matches!(ext, "wal" | "snap") {
            names.push(stem.to_string());
        }
    }
    names.sort_unstable();
    names.dedup();
    Ok(names)
}

///// Parsed snapshot parts: `(dims, version, slots)` — slot `i` is
/// `None` when stream handle `i` has been removed.
pub type SnapshotParts = (usize, u64, Vec<Option<Vec<f64>>>);

/// Parse a snapshot document (the `.snap` file format, also served by
/// `GET /datasets/{name}/snapshot`). `None` on any structural problem.
pub fn parse_snapshot(text: &str) -> Option<SnapshotParts> {
    let v = Value::parse(text.trim()).ok()?;
    let dims = v.get("dims")?.as_u64()? as usize;
    let version = v.get("version")?.as_u64()?;
    let mut slots = Vec::new();
    for slot in v.get("slots")?.as_arr()? {
        match slot {
            Value::Null => slots.push(None),
            Value::Arr(vals) => {
                let row: Option<Vec<f64>> = vals.iter().map(Value::as_f64).collect();
                slots.push(Some(row?));
            }
            _ => return None,
        }
    }
    Some((dims, version, slots))
}

/// One parsed log record.
enum WalRecord {
    Create { dims: usize },
    Insert { v: u64, row: Vec<f64> },
    Remove { v: u64, id: PointId },
    Epoch { epoch: u64 },
}

fn parse_record(line: &str) -> Option<WalRecord> {
    let v = Value::parse(line).ok()?;
    match v.get("op")?.as_str()? {
        "create" => Some(WalRecord::Create {
            dims: v.get("dims")?.as_u64()? as usize,
        }),
        "insert" => {
            let row: Option<Vec<f64>> = v.get("row")?.as_arr()?.iter().map(Value::as_f64).collect();
            Some(WalRecord::Insert {
                v: v.get("v")?.as_u64()?,
                row: row?,
            })
        }
        "remove" => Some(WalRecord::Remove {
            v: v.get("v")?.as_u64()?,
            id: v.get("id")?.as_u64()? as PointId,
        }),
        "epoch" => Some(WalRecord::Epoch {
            epoch: v.get("epoch")?.as_u64()?,
        }),
        _ => None,
    }
}

/// Recover one dataset from its snapshot and log. Returns `None` when
/// neither file yields a dataset (e.g. an empty or fully corrupt log
/// with no snapshot). A torn or corrupt log tail is truncated on disk so
/// subsequent appends extend a clean log.
pub fn recover(config: &StorageConfig, name: &str) -> io::Result<Option<Recovered>> {
    let wal_path = wal_file(&config.dir, name);
    let snap_path = snap_file(&config.dir, name);

    let mut stream: Option<StreamingSkyline> = None;
    if snap_path.exists() {
        if let Some((dims, version, slots)) = parse_snapshot(&fs::read_to_string(&snap_path)?) {
            stream = StreamingSkyline::restore(dims, &slots, version).ok();
        }
    }

    let bytes = if wal_path.exists() {
        fs::read(&wal_path)?
    } else {
        Vec::new()
    };
    let mut replayed = 0u64;
    let mut records = Vec::new();
    let mut epoch = 0u64;
    let mut offset = 0usize; // start of the current line
    let mut good_end = 0usize; // one past the last fully applied line
    let mut metrics = Metrics::new();
    while offset < bytes.len() {
        let line_end = match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(i) => offset + i,
            None => break, // torn final record: no terminator
        };
        let parsed = std::str::from_utf8(&bytes[offset..line_end])
            .ok()
            .and_then(parse_record);
        let Some(record) = parsed else { break };
        let applied = match record {
            WalRecord::Create { dims } => match stream {
                // A snapshot supersedes the create record.
                Some(_) => true,
                None => match StreamingSkyline::new(dims) {
                    Ok(s) => {
                        stream = Some(s);
                        true
                    }
                    Err(_) => false,
                },
            },
            WalRecord::Insert { v, row } => match stream.as_mut() {
                Some(s) if v > s.version() => match s.insert_delta(&row, &mut metrics) {
                    Ok((_, delta)) => {
                        replayed += 1;
                        records.push(ChangeRecord {
                            op: ChangeOp::Insert { row },
                            delta,
                        });
                        true
                    }
                    Err(_) => false,
                },
                Some(_) => true, // already in the snapshot
                None => false,
            },
            WalRecord::Remove { v, id } => match stream.as_mut() {
                Some(s) if v > s.version() => {
                    // A no-op remove means the log disagrees with the
                    // state; treat the rest as corrupt.
                    match s.remove_delta(id, &mut metrics) {
                        Some(delta) => {
                            replayed += 1;
                            records.push(ChangeRecord {
                                op: ChangeOp::Remove { id },
                                delta,
                            });
                            true
                        }
                        None => false,
                    }
                }
                Some(_) => true,
                None => false,
            },
            WalRecord::Epoch { epoch: e } => {
                epoch = epoch.max(e);
                true
            }
        };
        if !applied {
            break;
        }
        offset = line_end + 1;
        good_end = offset;
    }

    let Some(stream) = stream else {
        return Ok(None);
    };

    // Truncate a torn or corrupt tail so the reopened log is clean.
    if good_end < bytes.len() {
        OpenOptions::new()
            .write(true)
            .open(&wal_path)?
            .set_len(good_end as u64)?;
    }

    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&wal_path)?;
    let wal = DatasetWal {
        wal_path,
        snap_path,
        writer: BufWriter::new(file),
        wal_bytes: good_end as u64,
        policy: config.fsync,
        last_sync: Instant::now(),
        compact_bytes: config.compact_bytes,
    };
    Ok(Some(Recovered {
        stream,
        wal,
        replayed,
        records,
        epoch,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "skyline-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build(config: &StorageConfig, name: &str) -> StreamingSkyline {
        let mut stream = StreamingSkyline::new(2).unwrap();
        let mut wal = DatasetWal::create(config, name).unwrap();
        wal.append_batch(&[create_record(2)]).unwrap();
        let mut metrics = Metrics::new();
        let mut records = Vec::new();
        for row in [[1.0, 5.0], [5.0, 1.0], [6.0, 6.0], [0.25, 9.5]] {
            records.push(insert_record(&row, stream.version() + 1));
            stream.insert(&row, &mut metrics).unwrap();
        }
        wal.append_batch(&records).unwrap();
        assert!(stream.remove(2, &mut metrics));
        wal.append_batch(&[remove_record(2, stream.version())])
            .unwrap();
        stream
    }

    fn assert_streams_match(a: &StreamingSkyline, b: &StreamingSkyline) {
        assert_eq!(a.version(), b.version());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.skyline(), b.skyline());
        assert_eq!(a.snapshot_rows(), b.snapshot_rows());
    }

    #[test]
    fn log_replay_round_trips() {
        let config = StorageConfig {
            fsync: FsyncPolicy::Always,
            ..StorageConfig::new(temp_dir("replay"))
        };
        let original = build(&config, "d");
        let recovered = recover(&config, "d").unwrap().expect("dataset exists");
        assert_streams_match(&original, &recovered.stream);
        assert_eq!(recovered.replayed, 5, "4 inserts + 1 remove");
        fs::remove_dir_all(&config.dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_record() {
        let config = StorageConfig::new(temp_dir("torn"));
        let original = build(&config, "d");
        let path = wal_file(&config.dir, "d");
        // Simulate a crash mid-append: a record without its terminator.
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"op\":\"insert\",\"v\":99,\"row\":[1.0,")
            .unwrap();
        drop(f);

        let recovered = recover(&config, "d").unwrap().expect("dataset exists");
        assert_streams_match(&original, &recovered.stream);
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail truncated away"
        );
        // And again with garbage mid-file followed by a valid record:
        // everything from the first bad line on is dropped.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json\n").unwrap();
        f.write_all(insert_record(&[0.0, 0.0], original.version() + 1).as_bytes())
            .unwrap();
        f.write_all(b"\n").unwrap();
        drop(f);
        let recovered = recover(&config, "d").unwrap().expect("dataset exists");
        assert_streams_match(&original, &recovered.stream);
        fs::remove_dir_all(&config.dir).unwrap();
    }

    #[test]
    fn compaction_snapshots_and_truncates() {
        let mut config = StorageConfig::new(temp_dir("compact"));
        config.compact_bytes = 64; // force compaction quickly
        let mut stream = StreamingSkyline::new(2).unwrap();
        let mut wal = DatasetWal::create(&config, "c").unwrap();
        wal.append_batch(&[create_record(2)]).unwrap();
        let mut metrics = Metrics::new();
        let mut compactions = 0;
        for i in 0..20 {
            let row = [i as f64, 20.0 - i as f64];
            let rec = insert_record(&row, stream.version() + 1);
            stream.insert(&row, &mut metrics).unwrap();
            wal.append_batch(&[rec]).unwrap();
            if wal.maybe_compact(&stream).unwrap() {
                compactions += 1;
            }
        }
        assert!(compactions >= 1, "threshold forced at least one snapshot");
        assert!(snap_file(&config.dir, "c").exists());
        assert!(wal.wal_bytes() < 64);

        let recovered = recover(&config, "c").unwrap().expect("dataset exists");
        assert_streams_match(&stream, &recovered.stream);
        // Handles keep lining up after recovery: the next insert gets the
        // same id in both streams.
        let id_a = stream.insert(&[9.0, 9.0], &mut metrics).unwrap();
        let mut rec_stream = recovered.stream;
        let id_b = rec_stream.insert(&[9.0, 9.0], &mut metrics).unwrap();
        assert_eq!(id_a, id_b);
        fs::remove_dir_all(&config.dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse(), Ok(FsyncPolicy::Always));
        assert_eq!("never".parse(), Ok(FsyncPolicy::Never));
        assert_eq!(
            "interval".parse(),
            Ok(FsyncPolicy::Interval(FsyncPolicy::DEFAULT_INTERVAL))
        );
        assert_eq!(
            "interval=250".parse(),
            Ok(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert!("interval=abc".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn list_datasets_finds_wal_and_snap_stems() {
        let dir = temp_dir("list");
        fs::write(dir.join("a.wal"), b"").unwrap();
        fs::write(dir.join("b.snap"), b"").unwrap();
        fs::write(dir.join("a.snap"), b"").unwrap();
        fs::write(dir.join("noise.txt"), b"").unwrap();
        assert_eq!(list_datasets(&dir).unwrap(), vec!["a", "b"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_records_replay_without_bumping_the_version() {
        let config = StorageConfig {
            fsync: FsyncPolicy::Always,
            ..StorageConfig::new(temp_dir("epoch"))
        };
        let original = build(&config, "d");
        let mut f = OpenOptions::new()
            .append(true)
            .open(wal_file(&config.dir, "d"))
            .unwrap();
        f.write_all(format!("{}\n{}\n", epoch_record(2), epoch_record(5)).as_bytes())
            .unwrap();
        drop(f);
        let recovered = recover(&config, "d").unwrap().expect("dataset exists");
        assert_streams_match(&original, &recovered.stream);
        assert_eq!(recovered.epoch, 5, "max epoch in the log wins");

        assert_eq!(read_node_epoch(&config.dir), 0, "no file yet");
        write_node_epoch(&config.dir, 7).unwrap();
        assert_eq!(read_node_epoch(&config.dir), 7);
        write_node_epoch(&config.dir, 9).unwrap();
        assert_eq!(read_node_epoch(&config.dir), 9);
        fs::remove_dir_all(&config.dir).unwrap();
    }

    #[test]
    fn rows_with_infinities_round_trip() {
        let rec = insert_record(&[f64::INFINITY, -1.5, f64::NEG_INFINITY], 1);
        let Some(WalRecord::Insert { v, row }) = parse_record(&rec) else {
            panic!("parse {rec}");
        };
        assert_eq!(v, 1);
        assert_eq!(row, vec![f64::INFINITY, -1.5, f64::NEG_INFINITY]);
    }
}

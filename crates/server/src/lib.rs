//! # skyline-serve
//!
//! A zero-dependency concurrent skyline query service: a hand-rolled
//! HTTP/1.1 server over `std::net` (no async runtime, no HTTP crate — the
//! workspace builds with zero network access) exposing the algorithm
//! suite over a **dataset registry** with a version-keyed **result
//! cache**.
//!
//! Architecture, bottom-up:
//!
//! - [`http`] — request/response framing with hard limits;
//! - [`pool`] — a fixed-size worker pool over `mpsc`; dropping the sender
//!   is the graceful-shutdown signal;
//! - [`registry`] — named datasets, each a [`StreamingSkyline`] plus an
//!   immutable snapshot rebuilt on mutation, behind an `RwLock` so
//!   readers only pay an `Arc` clone;
//! - [`cache`] — an LRU over results keyed by (dataset, **content
//!   version**, algorithm, subspace mask, k, threads); the version in the
//!   key makes staleness impossible, explicit invalidation on mutation
//!   keeps memory honest;
//! - [`wal`] — per-dataset write-ahead log plus compacted snapshots;
//!   with a `data_dir` the registry recovers every dataset to its exact
//!   pre-crash content version on boot;
//! - [`metrics`] — per-endpoint latency histograms plus robustness
//!   counters (shed, deadline, panic) for `/metrics`;
//! - [`faults`] — fault-injection probes for the chaos harness (no-ops
//!   unless built with the `chaos` feature);
//! - [`client`] — a minimal blocking client (with optional retry) for
//!   tests and benchmarks.
//!
//! Robustness: `/skyline` honours a cooperative `deadline_ms` (504 on
//! expiry), an admission gate sheds excess load with 503 +
//! `Retry-After` (global `max_inflight`, per-dataset caps, and a
//! connection-queue limit), and handler panics are isolated into 500s
//! while the worker pool respawns panicked workers.
//!
//! Endpoints: `GET /healthz`, `GET /metrics`, `GET /datasets`,
//! `POST /datasets`, `POST|DELETE /datasets/{name}/points`,
//! `GET /skyline?dataset=&algo=&dims=&k=&threads=&deadline_ms=` (plus
//! opt-in `include_masks=1` / `include_rows=1` for the cluster
//! coordinator's scatter-gather merge),
//! `GET /datasets/{name}/changes?since=&subscribe=&ops=` (the
//! per-version change feed; see [`replica`] for the follower that
//! consumes it), `GET /datasets/{name}/snapshot`, `POST /promote` and
//! `POST /demote` (the epoch-fenced role flips driving automatic
//! failover; see [`replica`]), `POST /shutdown`.
//!
//! [`StreamingSkyline`]: skyline_core::streaming::StreamingSkyline

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod faults;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod replica;
pub mod wal;

use std::fs::File;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skyline_algos::skyband::k_skyband_ids;
use skyline_algos::{algorithm_by_name, parallel_algorithm, SkylineAlgorithm};
use skyline_core::cancel::CancelToken;
use skyline_core::dataset::Dataset;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::subspace::Subspace;
use skyline_data::synthetic::{Distribution, SyntheticSpec};
use skyline_obs::json::{ObjectWriter, Value};
use skyline_obs::trace::{self, StageTimer};
use skyline_obs::{Event, JsonlRecorder, Recorder};

use cache::{CacheKey, CachedResult, ResultCache};
use http::{HttpError, Request, Response};
use metrics::ServerMetrics;
use pool::ThreadPool;
use registry::{Registry, RegistryError};
use replica::Role;

/// Request header carrying the fencing epoch the sender believes is
/// current. A mismatch against the receiving node's own epoch is
/// refused with `409 Fenced`; see [`replica`] for the full protocol.
pub const EPOCH_HEADER: &str = "X-Skyline-Epoch";

/// Request header naming the primary the sender routes writes to.
/// Alongside a higher [`EPOCH_HEADER`] it tells a stale primary who
/// succeeded it, so the fenced node can demote itself in place.
pub const PRIMARY_HEADER: &str = "X-Skyline-Primary";

/// Request header carrying a read-your-writes session token's version:
/// the read must observe the dataset at this version or newer. A
/// replica that cannot catch up in time bounces the client to its
/// primary with 307; a primary that has never seen the version answers
/// 409.
pub const MIN_VERSION_HEADER: &str = "X-Skyline-Min-Version";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub bind: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Result cache capacity (entries).
    pub cache_capacity: usize,
    /// Per-request socket timeout (read and write).
    pub request_timeout: Duration,
    /// Request body cap, bytes.
    pub max_body: usize,
    /// JSONL trace sink for `request` / `cache_hit` events.
    pub trace: Option<PathBuf>,
    /// Durability directory (WAL + snapshots). `None` = memory-only.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy; only meaningful with `data_dir`.
    pub fsync: wal::FsyncPolicy,
    /// Concurrently executing `/skyline` queries before the admission
    /// gate sheds with 503. `0` = unlimited.
    pub max_inflight: usize,
    /// Connection backlog (queued, not yet picked up by a worker) before
    /// the accept loop sheds with 503. `0` = unlimited.
    pub queue_limit: usize,
    /// Concurrent `/skyline` queries per dataset before shedding with
    /// 503. `0` = unlimited.
    pub max_queries_per_dataset: usize,
    /// Slow-query threshold, milliseconds: a `/skyline` request whose
    /// wall-clock reaches it gets its full stage breakdown written as a
    /// JSONL `stage_breakdown` record. `0` disables the slow-query log.
    pub slow_ms: u64,
    /// Dedicated slow-query log path. `None` routes slow records to the
    /// `trace` sink instead.
    pub slow_log: Option<PathBuf>,
    /// Change-feed retention per dataset, records. Cursors older than
    /// the retained window answer 410 Gone and must resync.
    pub feed_retain: usize,
    /// WAL size that triggers snapshot compaction, bytes; only
    /// meaningful with `data_dir`.
    pub compact_bytes: u64,
    /// Primary to follow. Turns this server into a read-only replica
    /// that tails the primary's change feeds; conflicts with
    /// `data_dir` (followers are memory-only; durability lives on the
    /// primary).
    pub follow: Option<SocketAddr>,
    /// Long-poll hold the follower asks the primary for, milliseconds.
    pub follow_wait_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            threads: 4,
            cache_capacity: 256,
            request_timeout: Duration::from_secs(30),
            max_body: http::DEFAULT_MAX_BODY,
            trace: None,
            data_dir: None,
            fsync: wal::FsyncPolicy::default(),
            max_inflight: 0,
            queue_limit: 1024,
            max_queries_per_dataset: 0,
            slow_ms: 0,
            slow_log: None,
            feed_retain: registry::DEFAULT_FEED_RETAIN,
            compact_bytes: 1 << 20,
            follow: None,
            follow_wait_ms: 1000,
        }
    }
}

/// State shared by every worker.
struct Shared {
    addr: SocketAddr,
    registry: Registry,
    cache: ResultCache,
    metrics: ServerMetrics,
    recorder: Option<Mutex<JsonlRecorder<File>>>,
    shutdown: AtomicBool,
    started: Instant,
    threads: usize,
    /// `/skyline` queries currently executing (admission gate).
    inflight: AtomicUsize,
    max_inflight: usize,
    /// Per-dataset concurrent `/skyline` query counts.
    dataset_inflight: Mutex<std::collections::HashMap<String, usize>>,
    max_queries_per_dataset: usize,
    /// Slow-query threshold in milliseconds; `0` = disabled.
    slow_ms: u64,
    /// Dedicated slow-query sink (falls back to `recorder`).
    slow_log: Option<Mutex<JsonlRecorder<File>>>,
    /// The node's failover state: role, fencing epoch, and replication
    /// progress. Present on every server — a primary can be demoted
    /// into a follower and a follower promoted, both in place.
    failover: replica::ReplicaState,
}

impl Shared {
    fn emit(&self, event: Event) {
        if let Some(rec) = &self.recorder {
            let mut rec = rec.lock().unwrap_or_else(|e| e.into_inner());
            rec.event(event);
            // Request-level events are rare enough to flush eagerly, so
            // a live trace file can be tailed without a shutdown.
            rec.flush();
        }
    }

    /// Write a slow-query record to the dedicated slow log, or to the
    /// trace sink when none is configured.
    fn emit_slow(&self, event: Event) {
        if let Some(log) = &self.slow_log {
            let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
            log.event(event);
            log.flush();
        } else {
            self.emit(event);
        }
    }
}

/// The validated trace id a request carries in `X-Skyline-Trace`, or
/// `""` when absent or malformed (never propagate junk into traces).
fn inherited_trace(req: &Request) -> String {
    req.header(trace::TRACE_HEADER)
        .filter(|t| trace::is_valid_id(t))
        .unwrap_or("")
        .to_string()
}

/// RAII permit from the global admission gate: decrements the inflight
/// count on drop, panic or not.
struct InflightPermit<'a> {
    shared: &'a Shared,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// `Ok(None)` = no cap configured, `Ok(Some)` = admitted, `Err(())` =
/// the gate is full and the request must be shed.
fn acquire_inflight(shared: &Shared) -> Result<Option<InflightPermit<'_>>, ()> {
    if shared.max_inflight == 0 {
        return Ok(None); // unlimited: no permit needed
    }
    let mut current = shared.inflight.load(Ordering::Acquire);
    loop {
        if current >= shared.max_inflight {
            return Err(());
        }
        match shared.inflight.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Ok(Some(InflightPermit { shared })),
            Err(now) => current = now,
        }
    }
}

/// RAII permit from a dataset's concurrency cap.
struct DatasetPermit<'a> {
    shared: &'a Shared,
    name: String,
}

impl Drop for DatasetPermit<'_> {
    fn drop(&mut self) {
        let mut map = self
            .shared
            .dataset_inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(n) = map.get_mut(&self.name) {
            *n -= 1;
            if *n == 0 {
                map.remove(&self.name);
            }
        }
    }
}

/// Same contract as [`acquire_inflight`], but per dataset.
fn acquire_dataset_slot<'a>(
    shared: &'a Shared,
    name: &str,
) -> Result<Option<DatasetPermit<'a>>, ()> {
    if shared.max_queries_per_dataset == 0 {
        return Ok(None); // unlimited
    }
    let mut map = shared
        .dataset_inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let n = map.entry(name.to_string()).or_insert(0);
    if *n >= shared.max_queries_per_dataset {
        return Err(());
    }
    *n += 1;
    Ok(Some(DatasetPermit {
        shared,
        name: name.to_string(),
    }))
}

/// A 503 with `Retry-After`, counted and traced as shed load.
fn shed_response(shared: &Shared, endpoint: &str, why: &str) -> Response {
    shared.metrics.inc_shed();
    shared.emit(Event::Shed {
        endpoint: endpoint.to_string(),
    });
    Response::error(503, why).with_header("Retry-After", "1")
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    /// Replication supervisor thread: tails the primary's feeds while
    /// the node is a follower, idles while it is a primary.
    tail: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current cache counters (for tests and post-run reports).
    pub fn cache_stats(&self) -> cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Block until the server stops (via `POST /shutdown` or
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.tail.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting connections, drain in-flight requests, and join
    /// every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Nudge the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.shared.addr);
        self.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The server: binds, spawns the accept loop, returns a handle.
pub struct Server;

impl Server {
    /// Bind `config.bind` and start serving on a background thread.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let recorder = match &config.trace {
            Some(path) => Some(Mutex::new(JsonlRecorder::create(path)?)),
            None => None,
        };
        let slow_log = match &config.slow_log {
            Some(path) => Some(Mutex::new(JsonlRecorder::create(path)?)),
            None => None,
        };
        if config.follow.is_some() && config.data_dir.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "--follow conflicts with --data-dir: followers are memory-only \
                 (durability lives on the primary)",
            ));
        }
        let registry = match &config.data_dir {
            Some(dir) => {
                let mut storage = wal::StorageConfig::new(dir.clone());
                storage.fsync = config.fsync;
                storage.compact_bytes = config.compact_bytes;
                Registry::open_with(storage, config.feed_retain)?
            }
            None => Registry::with_feed_retain(config.feed_retain),
        };
        // The fencing epoch survives restarts on a durable node; a
        // memory-only node (and every follower) boots at 0 and adopts
        // the cluster's epoch from its first fenced request.
        let boot_epoch = registry.recovered_epoch();
        let role = match config.follow {
            Some(primary) => Role::Follower { primary },
            None => Role::Primary,
        };
        let shared = Arc::new(Shared {
            addr,
            registry,
            cache: ResultCache::new(config.cache_capacity),
            metrics: ServerMetrics::new(),
            recorder,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            threads: config.threads.max(1),
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight,
            dataset_inflight: Mutex::new(std::collections::HashMap::new()),
            max_queries_per_dataset: config.max_queries_per_dataset,
            slow_ms: config.slow_ms,
            slow_log,
            failover: replica::ReplicaState::new(role, config.follow_wait_ms, boot_epoch),
        });
        for (dataset, replayed, version) in shared.registry.recovery_log() {
            shared.emit(Event::Recovery {
                dataset: dataset.clone(),
                replayed: *replayed,
                version: *version,
            });
        }
        let accept_shared = Arc::clone(&shared);
        let timeout = config.request_timeout;
        let max_body = config.max_body;
        let threads = config.threads;
        let queue_limit = config.queue_limit;
        let accept = std::thread::Builder::new()
            .name("skyline-accept".to_string())
            .spawn(move || {
                // The pool lives in the accept thread: when the loop
                // breaks, dropping it drains queued connections and joins
                // the workers, so shutdown never truncates a response.
                let pool = ThreadPool::new(threads, "skyline-worker");
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if queue_limit > 0 && pool.queue_depth() >= queue_limit {
                        shed_connection(stream, &accept_shared);
                        continue;
                    }
                    let conn_shared = Arc::clone(&accept_shared);
                    if pool
                        .execute(move || handle_connection(stream, conn_shared, timeout, max_body))
                        .is_err()
                    {
                        break;
                    }
                }
            })?;
        // The supervisor runs on every server, not just boot-time
        // followers: it idles while the node is a primary and starts
        // tailing the moment a demotion flips the role.
        let tail_shared = Arc::clone(&shared);
        let tail = Some(
            std::thread::Builder::new()
                .name("skyline-follower".to_string())
                .spawn(move || replica::run_follower(tail_shared))?,
        );
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            tail,
        })
    }
}

/// Shed a connection straight from the accept loop: the worker queue is
/// over its limit, so write one 503 inline without occupying a worker.
fn shed_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    shared.metrics.record("?", "(shed)", 503, 0);
    let response = shed_response(
        shared,
        "(accept)",
        "server overloaded: connection queue is full",
    );
    let _ = response.write_to(&mut stream);
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>, timeout: Duration, max_body: usize) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true); // latency over throughput: no Nagle stalls
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        match Request::read_from(&mut reader, max_body) {
            Ok(Some(req)) => {
                let start = Instant::now();
                // Panic isolation: a handler bug takes down one request,
                // not the worker (and with it the keep-alive connection
                // queue). The sentinel in [`pool`] would respawn the
                // worker anyway, but catching here turns the failure into
                // a well-formed 500 instead of a dropped connection.
                let (response, endpoint) =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        route(&shared, &req)
                    })) {
                        Ok(pair) => pair,
                        Err(_) => {
                            shared.metrics.inc_panics();
                            shared.emit(Event::HandlerPanic {
                                endpoint: req.path.clone(),
                            });
                            (
                                Response::error(500, "internal error: handler panicked"),
                                "(panic)",
                            )
                        }
                    };
                let elapsed_us = start.elapsed().as_micros() as u64;
                shared
                    .metrics
                    .record(&req.method, endpoint, response.status, elapsed_us);
                shared.emit(Event::Request {
                    method: req.method.clone(),
                    endpoint: endpoint.to_string(),
                    status: response.status as u64,
                    elapsed_us,
                    trace: inherited_trace(&req),
                });
                let close = req.wants_close() || shared.shutdown.load(Ordering::Acquire);
                if response.write_to(&mut writer).is_err() || close {
                    return;
                }
            }
            Ok(None) => return,              // idle keep-alive connection closed
            Err(HttpError::Io(_)) => return, // timeout or reset: peer is gone
            Err(e) => {
                let status = match e {
                    HttpError::TooLarge { .. } => 413,
                    _ => 400,
                };
                shared.metrics.record("?", "(malformed)", status, 0);
                let _ = Response::error(status, &e.to_string()).write_to(&mut writer);
                return;
            }
        }
    }
}

/// Dispatch one request. Returns the response plus the normalised
/// endpoint label used for metrics and trace events.
fn route(shared: &Shared, req: &Request) -> (Response, &'static str) {
    faults::check_panic("handler");
    if let Some(name) = req
        .path
        .strip_prefix("/datasets/")
        .and_then(|rest| rest.strip_suffix("/points"))
    {
        let endpoint = "/datasets/{name}/points";
        // Fencing beats redirection: a write stamped with the wrong
        // epoch is refused outright, a correctly-stamped write on a
        // follower bounces to the primary.
        if let Some(fenced) = fence_check(shared, req, endpoint) {
            return (fenced, endpoint);
        }
        if let Some(redirect) = replica_redirect(shared, &req.path) {
            return (redirect, endpoint);
        }
        let response = match req.method.as_str() {
            "POST" => handle_insert(shared, name, req),
            "DELETE" => handle_remove(shared, name, req),
            _ => Response::error(405, "points supports POST and DELETE"),
        };
        return (response, endpoint);
    }
    if let Some(name) = req
        .path
        .strip_prefix("/datasets/")
        .and_then(|rest| rest.strip_suffix("/changes"))
    {
        let endpoint = "/datasets/{name}/changes";
        // Followers stamp feed reads with their epoch, which is how a
        // resurrected stale primary learns of its own succession.
        if let Some(fenced) = fence_check(shared, req, endpoint) {
            return (fenced, endpoint);
        }
        let response = match req.method.as_str() {
            "GET" => handle_changes(shared, name, req),
            _ => Response::error(405, "changes supports GET"),
        };
        return (response, endpoint);
    }
    if let Some(name) = req
        .path
        .strip_prefix("/datasets/")
        .and_then(|rest| rest.strip_suffix("/snapshot"))
    {
        let endpoint = "/datasets/{name}/snapshot";
        let response = match req.method.as_str() {
            "GET" => handle_snapshot(shared, name),
            _ => Response::error(405, "snapshot supports GET"),
        };
        return (response, endpoint);
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (handle_healthz(shared), "/healthz"),
        ("GET", "/metrics") => (handle_metrics(shared, req), "/metrics"),
        ("GET", "/skyline") => (handle_skyline(shared, req), "/skyline"),
        ("GET", "/datasets") => (handle_list(shared), "/datasets"),
        ("POST", "/datasets") => match fence_check(shared, req, "/datasets") {
            Some(fenced) => (fenced, "/datasets"),
            None => match replica_redirect(shared, &req.path) {
                Some(redirect) => (redirect, "/datasets"),
                None => (handle_create(shared, req), "/datasets"),
            },
        },
        ("POST", "/promote") => (handle_promote(shared, req), "/promote"),
        ("POST", "/demote") => (handle_demote(shared, req), "/demote"),
        ("POST", "/shutdown") => (handle_shutdown(shared), "/shutdown"),
        (
            _,
            "/healthz" | "/metrics" | "/skyline" | "/datasets" | "/shutdown" | "/promote"
            | "/demote",
        ) => (
            Response::error(405, "method not allowed on this endpoint"),
            "(bad-method)",
        ),
        _ => (
            Response::error(404, &format!("no such endpoint {}", req.path)),
            "(unknown)",
        ),
    }
}

fn registry_response(err: RegistryError) -> Response {
    let status = match err {
        RegistryError::Unknown(_) => 404,
        RegistryError::Exists(_) => 409,
        RegistryError::BadName(_) | RegistryError::BadData(_) => 400,
        RegistryError::Io(_) => 500,
    };
    Response::error(status, &err.to_string())
}

/// `GET /healthz` — one JSON shape on both roles: liveness plus the
/// node's `role`, fencing `epoch`, and latest applied versions. The
/// cluster's failure detector reads this to pick the most-caught-up
/// replica at promotion time, so `applied_version` (the per-dataset
/// versions summed) must reflect everything the node has applied.
fn handle_healthz(shared: &Shared) -> Response {
    let infos = shared.registry.list();
    let applied: u64 = infos.iter().map(|i| i.version).sum();
    let mut versions = ObjectWriter::new();
    for info in &infos {
        versions.u64_field(&info.name, info.version);
    }
    let mut w = ObjectWriter::new();
    w.str_field("status", "ok");
    match shared.failover.role() {
        Role::Primary => {
            w.str_field("role", "primary");
        }
        Role::Follower { primary } => {
            w.str_field("role", "replica")
                .str_field("primary", &primary.to_string());
        }
    }
    w.u64_field("epoch", shared.failover.epoch())
        .u64_field("datasets", infos.len() as u64)
        .u64_field("applied_version", applied)
        .raw_field("versions", &versions.finish())
        .u64_field("uptime_us", shared.started.elapsed().as_micros() as u64);
    Response::json(200, w.finish())
}

/// Enforce the fencing epoch on a request that stamped one
/// ([`EPOCH_HEADER`]). `None` = no epoch claimed or it matches ours
/// (handle normally); `Some` = the caller must return this refusal.
///
/// A *higher* request epoch means a succession happened that this node
/// missed — the canonical case is a resurrected old primary receiving
/// traffic stamped by the new regime. When the request also names the
/// new primary ([`PRIMARY_HEADER`]), the node demotes itself into a
/// follower of it on the spot; the refused request is retried by its
/// sender, and by then this node redirects like any other replica.
fn fence_check(shared: &Shared, req: &Request, endpoint: &str) -> Option<Response> {
    let raw = req.header(EPOCH_HEADER)?;
    let Ok(request_epoch) = raw.parse::<u64>() else {
        return Some(Response::error(
            400,
            &format!("bad {EPOCH_HEADER} value {raw:?}"),
        ));
    };
    let node_epoch = shared.failover.epoch();
    if request_epoch == node_epoch {
        return None;
    }
    shared.failover.fenced_total.fetch_add(1, Ordering::Relaxed);
    shared.emit(Event::FencedRequest {
        endpoint: endpoint.to_string(),
        request_epoch,
        node_epoch,
    });
    let mut successor: Option<SocketAddr> = None;
    if request_epoch > node_epoch {
        if let Some(primary) = req
            .header(PRIMARY_HEADER)
            .and_then(|p| p.parse::<SocketAddr>().ok())
            .filter(|p| *p != shared.addr)
        {
            if shared.failover.demote(request_epoch, primary).is_ok() {
                // Followers are memory-only so this is a no-op there; a
                // durable node that fails the write re-learns the epoch
                // from the next fenced request.
                let _ = shared.registry.persist_epoch(request_epoch);
                shared.emit(Event::Demotion {
                    epoch: request_epoch,
                    primary: primary.to_string(),
                });
                successor = Some(primary);
            }
        }
    }
    let mut w = ObjectWriter::new();
    w.str_field("error", "fenced: request epoch does not match this node")
        .u64_field("epoch", shared.failover.epoch())
        .u64_field("request_epoch", request_epoch);
    if let Some(primary) = successor {
        w.str_field("primary", &primary.to_string());
    }
    Some(Response::json(409, w.finish()))
}

/// `POST /promote` — body `{"epoch": E}`: flip this node to primary
/// under fencing epoch `E`. `E` must be strictly above the node's own
/// epoch (a retry of an accepted promotion is an idempotent 200);
/// anything else is refused with 409 and the node's epoch. On success
/// the epoch is made durable before the response acks, tailer threads
/// wind down via the generation bump, and the node starts accepting
/// writes at its inherited version.
fn handle_promote(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(epoch) = body.get("epoch").and_then(Value::as_u64) else {
        return Response::error(400, "body needs numeric \"epoch\"");
    };
    match shared.failover.promote(epoch) {
        Err(current) => {
            let mut w = ObjectWriter::new();
            w.str_field("error", "promotion fenced: epoch must rise")
                .u64_field("epoch", current)
                .u64_field("request_epoch", epoch);
            Response::json(409, w.finish())
        }
        Ok(()) => {
            if let Err(e) = shared.registry.persist_epoch(epoch) {
                return Response::error(500, &format!("promoted but epoch not durable: {e}"));
            }
            let infos = shared.registry.list();
            let applied: u64 = infos.iter().map(|i| i.version).sum();
            shared.emit(Event::Promotion {
                epoch,
                datasets: infos.len() as u64,
                version: applied,
            });
            let mut w = ObjectWriter::new();
            w.str_field("role", "primary")
                .u64_field("epoch", epoch)
                .u64_field("applied_version", applied);
            Response::json(200, w.finish())
        }
    }
}

/// `POST /demote` — body `{"epoch": E, "primary": "host:port"}`: step
/// down into a follower of `primary` under epoch `E` (at or above the
/// node's own; equal allows a retarget). The node's datasets resync
/// from the new primary on the follower path.
fn handle_demote(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(epoch) = body.get("epoch").and_then(Value::as_u64) else {
        return Response::error(400, "body needs numeric \"epoch\"");
    };
    let Some(primary) = body
        .get("primary")
        .and_then(Value::as_str)
        .and_then(|s| s.parse::<SocketAddr>().ok())
    else {
        return Response::error(400, "body needs \"primary\" as host:port");
    };
    if primary == shared.addr {
        return Response::error(400, "refusing to demote into following myself");
    }
    match shared.failover.demote(epoch, primary) {
        Err(current) => {
            let mut w = ObjectWriter::new();
            w.str_field("error", "demotion fenced: epoch must not regress")
                .u64_field("epoch", current)
                .u64_field("request_epoch", epoch);
            Response::json(409, w.finish())
        }
        Ok(()) => {
            let _ = shared.registry.persist_epoch(epoch);
            shared.emit(Event::Demotion {
                epoch,
                primary: primary.to_string(),
            });
            let mut w = ObjectWriter::new();
            w.str_field("role", "replica")
                .u64_field("epoch", epoch)
                .str_field("primary", &primary.to_string());
            Response::json(200, w.finish())
        }
    }
}

fn handle_shutdown(shared: &Shared) -> Response {
    shared.shutdown.store(true, Ordering::Release);
    // Nudge accept() from here too, in case no further connection comes.
    let _ = TcpStream::connect(shared.addr);
    let mut w = ObjectWriter::new();
    w.str_field("status", "shutting down");
    Response::json(200, w.finish())
}

fn dataset_info_json(info: &registry::DatasetInfo) -> String {
    let mut w = ObjectWriter::new();
    w.str_field("name", &info.name)
        .u64_field("dims", info.dims as u64)
        .u64_field("points", info.points as u64)
        .u64_field("skyline", info.skyline_len as u64)
        .u64_field("version", info.version);
    w.finish()
}

fn handle_list(shared: &Shared) -> Response {
    let objs: Vec<String> = shared
        .registry
        .list()
        .iter()
        .map(dataset_info_json)
        .collect();
    let mut w = ObjectWriter::new();
    w.raw_field("datasets", &format!("[{}]", objs.join(",")));
    Response::json(200, w.finish())
}

/// On a follower, writes answer 307 with a `Location` pointing the
/// client at the primary; `None` on a primary (handle normally).
fn replica_redirect(shared: &Shared, path: &str) -> Option<Response> {
    let primary = shared.failover.follow_target()?;
    let mut w = ObjectWriter::new();
    w.str_field("error", "read-only replica: writes go to the primary")
        .str_field("primary", &primary.to_string());
    Some(
        Response::json(307, w.finish()).with_header("Location", &format!("http://{primary}{path}")),
    )
}

/// On a follower, stamp a read response with how many versions the
/// queried dataset trails the primary by (see [`replica::LAG_HEADER`]).
fn with_replica_lag(shared: &Shared, dataset: &str, resp: Response) -> Response {
    match shared.failover.role() {
        Role::Follower { .. } => resp.with_header(
            replica::LAG_HEADER,
            &shared.failover.lag_of(dataset).to_string(),
        ),
        Role::Primary => resp,
    }
}

/// One change record on the feed wire: always the delta
/// (`version`/`entered`/`left`), plus the raw operation (`row` for an
/// insert, `remove` for a removal) when the consumer asked for
/// `ops=1` — that is what lets a follower rebuild the full point set
/// with identical handle assignment.
fn change_record_json(record: &skyline_core::changelog::ChangeRecord, with_ops: bool) -> String {
    use skyline_core::changelog::ChangeOp;
    let entered: Vec<u64> = record.delta.entered.iter().map(|&i| i as u64).collect();
    let left: Vec<u64> = record.delta.left.iter().map(|&i| i as u64).collect();
    let mut w = ObjectWriter::new();
    w.u64_field("version", record.version())
        .u64_array_field("entered", &entered)
        .u64_array_field("left", &left);
    if with_ops {
        match &record.op {
            ChangeOp::Insert { row } => {
                w.raw_field("row", &wal::row_json(row));
            }
            ChangeOp::Remove { id } => {
                w.u64_field("remove", *id as u64);
            }
        }
    }
    w.finish()
}

/// Feed long-poll ceiling, ms — below the 30 s request timeout so a
/// subscriber's held request always answers before the socket dies.
const MAX_WAIT_MS: u64 = 25_000;

/// `GET /datasets/{name}/changes?since=&limit=&ops=&subscribe=&wait_ms=`
/// — the change feed. Returns records strictly after `since` plus a
/// `next` cursor; `subscribe=1` long-polls until a change lands or the
/// hold expires into an explicit heartbeat (empty batch, unchanged
/// cursor); a cursor behind the retention horizon answers 410 Gone
/// with `oldest_version` so the consumer knows to resync.
fn handle_changes(shared: &Shared, name: &str, req: &Request) -> Response {
    let entry = match shared.registry.get(name) {
        Ok(e) => e,
        Err(e) => return registry_response(e),
    };
    let since: u64 = match req.query_param("since") {
        None | Some("") => 0,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => return Response::error(400, &format!("bad \"since\" value {raw:?}")),
        },
    };
    let limit: usize = match req.query_param("limit") {
        None | Some("") => 512,
        Some(raw) => match raw.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Response::error(400, &format!("bad \"limit\" value {raw:?} (>= 1)")),
        },
    };
    let with_ops = match req.query_param("ops") {
        None | Some("") | Some("0") => false,
        Some("1") => true,
        Some(raw) => return Response::error(400, &format!("bad \"ops\" value {raw:?} (0 or 1)")),
    };
    let subscribe = match req.query_param("subscribe") {
        None | Some("") | Some("0") => false,
        Some("1") => true,
        Some(raw) => {
            return Response::error(400, &format!("bad \"subscribe\" value {raw:?} (0 or 1)"))
        }
    };
    let wait_ms: u64 = match req.query_param("wait_ms") {
        None | Some("") => {
            if subscribe {
                10_000
            } else {
                0
            }
        }
        Some(raw) => match raw.parse() {
            Ok(ms) => ms,
            Err(_) => return Response::error(400, &format!("bad \"wait_ms\" value {raw:?}")),
        },
    };
    // Long-poll: park on the dataset's feed condvar until a version
    // beyond the cursor exists. Waits are sliced so shutdown never
    // blocks behind a subscriber's full hold.
    let deadline = Instant::now() + Duration::from_millis(wait_ms.min(MAX_WAIT_MS));
    loop {
        let now = Instant::now();
        if now >= deadline || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let slice = (deadline - now).min(Duration::from_millis(250));
        if entry.wait_for_version(since, slice) > since {
            break;
        }
    }
    match entry.changes_since(since, limit) {
        Err(gone) => {
            shared.emit(Event::FeedPoll {
                dataset: name.to_string(),
                since,
                returned: 0,
                next: since,
                latest: entry.info().version,
                heartbeat: false,
            });
            let mut w = ObjectWriter::new();
            w.str_field(
                "error",
                &format!(
                    "cursor {since} predates the retained change feed; \
                     resync from /datasets/{name}/snapshot"
                ),
            )
            .u64_field("oldest_version", gone.oldest);
            Response::json(410, w.finish())
        }
        Ok(batch) => {
            let heartbeat = batch.records.is_empty();
            shared.emit(Event::FeedPoll {
                dataset: name.to_string(),
                since,
                returned: batch.records.len() as u64,
                next: batch.next,
                latest: batch.latest,
                heartbeat,
            });
            let records: Vec<String> = batch
                .records
                .iter()
                .map(|r| change_record_json(r, with_ops))
                .collect();
            let mut w = ObjectWriter::new();
            w.str_field("dataset", name)
                .u64_field("since", since)
                .u64_field("next", batch.next)
                .u64_field("latest", batch.latest)
                .u64_field("oldest", batch.oldest)
                .bool_field("heartbeat", heartbeat)
                .raw_field("records", &format!("[{}]", records.join(",")));
            Response::json(200, w.finish())
        }
    }
}

/// `GET /datasets/{name}/snapshot` — the dataset's full state in the
/// `.snap` wire format; what a follower resyncs from.
fn handle_snapshot(shared: &Shared, name: &str) -> Response {
    match shared.registry.get(name) {
        Ok(entry) => Response::json(200, entry.snapshot_doc()),
        Err(e) => registry_response(e),
    }
}

/// The `/metrics` cache hit-rate: hits over lookups, 0.0 before any.
fn cache_hit_rate(stats: &cache::CacheStats) -> f64 {
    let lookups = stats.hits + stats.misses;
    if lookups == 0 {
        0.0
    } else {
        stats.hits as f64 / lookups as f64
    }
}

fn handle_metrics(shared: &Shared, req: &Request) -> Response {
    let stats = shared.cache.stats();
    match req.query_param("format") {
        None | Some("") | Some("json") => {}
        Some("prometheus") => {
            let extras = vec![
                ("skyline_cache_hits_total".to_string(), stats.hits as f64),
                (
                    "skyline_cache_misses_total".to_string(),
                    stats.misses as f64,
                ),
                (
                    "skyline_cache_evictions_total".to_string(),
                    stats.evictions as f64,
                ),
                (
                    "skyline_cache_invalidations_total".to_string(),
                    stats.invalidations as f64,
                ),
                (
                    "skyline_cache_patched_total".to_string(),
                    stats.patched as f64,
                ),
                ("skyline_cache_entries".to_string(), stats.entries as f64),
                ("skyline_cache_hit_rate".to_string(), cache_hit_rate(&stats)),
                ("skyline_datasets".to_string(), shared.registry.len() as f64),
            ];
            let mut extras = extras;
            let state = &shared.failover;
            extras.push(("skyline_epoch".to_string(), state.epoch() as f64));
            extras.push((
                "skyline_promotions_total".to_string(),
                state.promotions_total.load(Ordering::Relaxed) as f64,
            ));
            extras.push((
                "skyline_demotions_total".to_string(),
                state.demotions_total.load(Ordering::Relaxed) as f64,
            ));
            extras.push((
                "skyline_fenced_requests_total".to_string(),
                state.fenced_total.load(Ordering::Relaxed) as f64,
            ));
            extras.push((
                "skyline_replica_applied_total".to_string(),
                state.applied_total.load(Ordering::Relaxed) as f64,
            ));
            extras.push((
                "skyline_replica_duplicates_total".to_string(),
                state.duplicates_total.load(Ordering::Relaxed) as f64,
            ));
            extras.push((
                "skyline_replica_resyncs_total".to_string(),
                state.resyncs_total.load(Ordering::Relaxed) as f64,
            ));
            // One family at a time: the renderer writes a TYPE line
            // per consecutive run of the same metric family.
            let progress = state.progress_snapshot();
            for (dataset, applied, latest) in &progress {
                extras.push((
                    format!("skyline_replica_lag_versions{{dataset=\"{dataset}\"}}"),
                    latest.saturating_sub(*applied) as f64,
                ));
            }
            for (dataset, applied, _) in &progress {
                extras.push((
                    format!("skyline_replica_applied_version{{dataset=\"{dataset}\"}}"),
                    *applied as f64,
                ));
            }
            return Response::text(200, shared.metrics.render_prometheus(&extras));
        }
        Some(other) => {
            return Response::error(
                400,
                &format!("bad \"format\" value {other:?} (json or prometheus)"),
            )
        }
    }
    let mut cache_obj = ObjectWriter::new();
    cache_obj
        .u64_field("hits", stats.hits)
        .u64_field("misses", stats.misses)
        .u64_field("evictions", stats.evictions)
        .u64_field("invalidations", stats.invalidations)
        .u64_field("patched", stats.patched)
        .u64_field("entries", stats.entries)
        .u64_field("capacity", shared.cache.capacity() as u64)
        .f64_field("hit_rate", cache_hit_rate(&stats));
    let datasets: Vec<String> = shared
        .registry
        .list()
        .iter()
        .map(dataset_info_json)
        .collect();
    let mut w = ObjectWriter::new();
    w.u64_field("uptime_us", shared.started.elapsed().as_micros() as u64)
        .u64_field("threads", shared.threads as u64)
        .u64_field("requests", shared.metrics.total_requests())
        .u64_field("shed_total", shared.metrics.shed_total())
        .u64_field(
            "deadline_exceeded_total",
            shared.metrics.deadline_exceeded_total(),
        )
        .u64_field("panics_total", shared.metrics.panics_total())
        .u64_field("wal_bytes", shared.registry.wal_bytes())
        .u64_field(
            "recovery_replayed_records",
            shared.registry.recovery_replayed(),
        )
        .raw_field("endpoints", &shared.metrics.render_json())
        .raw_field("stages", &shared.metrics.render_stages_json())
        .raw_field("cache", &cache_obj.finish())
        .raw_field("datasets", &format!("[{}]", datasets.join(",")));
    let state = &shared.failover;
    let lag = state.lag.snapshot();
    let progress: Vec<String> = state
        .progress_snapshot()
        .iter()
        .map(|(name, applied, latest)| {
            let mut p = ObjectWriter::new();
            p.str_field("name", name)
                .u64_field("applied", *applied)
                .u64_field("primary_latest", *latest)
                .u64_field("lag", latest.saturating_sub(*applied));
            p.finish()
        })
        .collect();
    let mut r = ObjectWriter::new();
    match state.role() {
        Role::Primary => {
            r.str_field("role", "primary");
        }
        Role::Follower { primary } => {
            r.str_field("role", "replica")
                .str_field("primary", &primary.to_string());
        }
    }
    r.u64_field("epoch", state.epoch())
        .u64_field(
            "promotions_total",
            state.promotions_total.load(Ordering::Relaxed),
        )
        .u64_field(
            "demotions_total",
            state.demotions_total.load(Ordering::Relaxed),
        )
        .u64_field("fenced_total", state.fenced_total.load(Ordering::Relaxed))
        .u64_field("applied_total", state.applied_total.load(Ordering::Relaxed))
        .u64_field(
            "duplicates_total",
            state.duplicates_total.load(Ordering::Relaxed),
        )
        .u64_field("resyncs_total", state.resyncs_total.load(Ordering::Relaxed))
        .u64_field("lag_p50", lag.p50())
        .u64_field("lag_p99", lag.p99())
        .raw_field("datasets", &format!("[{}]", progress.join(",")));
    w.raw_field("replication", &r.finish());
    Response::json(200, w.finish())
}

fn parse_rows(v: &Value) -> Result<Vec<Vec<f64>>, String> {
    let arr = v.as_arr().ok_or("\"rows\" must be an array of arrays")?;
    arr.iter()
        .enumerate()
        .map(|(i, row)| {
            let row = row
                .as_arr()
                .ok_or_else(|| format!("row {i} is not an array"))?;
            row.iter()
                .enumerate()
                .map(|(j, val)| {
                    val.as_f64()
                        .ok_or_else(|| format!("row {i}, value {j} is not a number"))
                })
                .collect()
        })
        .collect()
}

fn parse_body(req: &Request) -> Result<Value, Response> {
    let text = req
        .body_str()
        .map_err(|e| Response::error(400, &e.to_string()))?;
    Value::parse(text).map_err(|e| Response::error(400, &format!("bad JSON body: {e}")))
}

/// `POST /datasets` — body: `{"name": ..., "rows": [[...], ...]}` or
/// `{"name": ..., "synthetic": {"distribution": "AC", "n": 1000,
/// "dims": 6, "seed": 42}}`; an empty dataset needs explicit `"dims"`.
fn handle_create(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(name) = body.get("name").and_then(Value::as_str) else {
        return Response::error(400, "missing string field \"name\"");
    };
    let (rows, dims) = if let Some(synth) = body.get("synthetic") {
        let tag = synth
            .get("distribution")
            .and_then(Value::as_str)
            .unwrap_or("UI");
        let Some(distribution) = Distribution::from_tag(tag) else {
            return Response::error(400, &format!("unknown distribution {tag:?} (UI, CO, AC)"));
        };
        let Some(n) = synth.get("n").and_then(Value::as_u64) else {
            return Response::error(400, "synthetic spec needs numeric \"n\"");
        };
        let Some(dims) = synth.get("dims").and_then(Value::as_u64) else {
            return Response::error(400, "synthetic spec needs numeric \"dims\"");
        };
        let seed = synth.get("seed").and_then(Value::as_u64).unwrap_or(42);
        let spec = SyntheticSpec {
            distribution,
            cardinality: n as usize,
            dims: dims as usize,
            seed,
        };
        let data = spec.generate();
        let rows: Vec<Vec<f64>> = data.iter().map(|(_, row)| row.to_vec()).collect();
        (rows, data.dims())
    } else if let Some(rows_value) = body.get("rows") {
        let rows = match parse_rows(rows_value) {
            Ok(rows) => rows,
            Err(msg) => return Response::error(400, &msg),
        };
        let dims = match (rows.first(), body.get("dims").and_then(Value::as_u64)) {
            (Some(first), _) => first.len(),
            (None, Some(dims)) => dims as usize,
            (None, None) => {
                return Response::error(400, "empty \"rows\" needs explicit \"dims\"");
            }
        };
        (rows, dims)
    } else {
        return Response::error(400, "body needs either \"rows\" or \"synthetic\"");
    };
    match shared.registry.create(name, dims, &rows) {
        Ok(entry) => Response::json(201, dataset_info_json(&entry.info())),
        Err(e) => registry_response(e),
    }
}

/// Carry the result cache across a mutation and trace the delta.
///
/// Patches forward every full-space skyline entry sitting at the
/// mutation's base version, drops the rest, bumps the `cache_patched`
/// counter, and emits one `delta_applied` trace event — the observable
/// spine of the incremental-maintenance path.
fn apply_mutation(
    shared: &Shared,
    name: &str,
    dims: usize,
    mutation: &registry::Mutation,
    trace_id: &str,
) -> cache::PatchOutcome {
    if mutation.version == mutation.base_version {
        // Nothing changed (empty batch / no live removals): every cached
        // entry is still exact and there is no delta to trace.
        return cache::PatchOutcome::default();
    }
    let out = shared.cache.patch_dataset(
        name,
        Subspace::full(dims).bits(),
        mutation.base_version,
        &mutation.delta,
    );
    shared.emit(Event::DeltaApplied {
        dataset: name.to_string(),
        base_version: mutation.base_version,
        version: mutation.version,
        entered: mutation.delta.entered.len() as u64,
        left: mutation.delta.left.len() as u64,
        cache_patched: out.patched as u64,
        cache_invalidated: out.invalidated as u64,
        trace: trace_id.to_string(),
    });
    out
}

/// Shared tail of the mutation responses: version movement, skyline
/// cardinality, the delta's membership changes, and what happened to
/// the cache — plus the fencing epoch the write was accepted under.
/// `(epoch, version)` is the read-your-writes session token: stamp a
/// later read with [`MIN_VERSION_HEADER`]` = version` and it will never
/// observe an older state, on any node.
fn mutation_json_fields(
    w: &mut ObjectWriter,
    mutation: &registry::Mutation,
    out: &cache::PatchOutcome,
    epoch: u64,
) {
    let entered: Vec<u64> = mutation.delta.entered.iter().map(|&i| i as u64).collect();
    let left: Vec<u64> = mutation.delta.left.iter().map(|&i| i as u64).collect();
    w.u64_field("version", mutation.version)
        .u64_field("epoch", epoch)
        .u64_field("skyline", mutation.skyline_len as u64)
        .u64_array_field("entered", &entered)
        .u64_array_field("left", &left)
        .u64_field("cache_patched", out.patched as u64)
        .u64_field("cache_invalidated", out.invalidated as u64);
}

/// `POST /datasets/{name}/points` — body `{"rows": [[...], ...]}`.
fn handle_insert(shared: &Shared, name: &str, req: &Request) -> Response {
    let trace_id = inherited_trace(req);
    let entry = match shared.registry.get(name) {
        Ok(e) => e,
        Err(e) => return registry_response(e),
    };
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(rows_value) = body.get("rows") else {
        return Response::error(400, "body needs \"rows\"");
    };
    let rows = match parse_rows(rows_value) {
        Ok(rows) => rows,
        Err(msg) => return Response::error(400, &msg),
    };
    match entry.insert_rows(&rows) {
        Ok((ids, mutation)) => {
            let out = apply_mutation(shared, name, entry.dims(), &mutation, &trace_id);
            let ids64: Vec<u64> = ids.iter().map(|&i| i as u64).collect();
            let mut w = ObjectWriter::new();
            w.u64_field("inserted", ids.len() as u64)
                .u64_array_field("ids", &ids64);
            mutation_json_fields(&mut w, &mutation, &out, shared.failover.epoch());
            Response::json(200, w.finish())
        }
        Err(e) => registry_response(e),
    }
}

/// `DELETE /datasets/{name}/points` — body `{"ids": [...]}`.
fn handle_remove(shared: &Shared, name: &str, req: &Request) -> Response {
    let trace_id = inherited_trace(req);
    let entry = match shared.registry.get(name) {
        Ok(e) => e,
        Err(e) => return registry_response(e),
    };
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(ids_value) = body.get("ids").and_then(Value::as_arr) else {
        return Response::error(400, "body needs an \"ids\" array");
    };
    let mut ids = Vec::with_capacity(ids_value.len());
    for (i, v) in ids_value.iter().enumerate() {
        match v.as_u64() {
            Some(id) if id <= PointId::MAX as u64 => ids.push(id as PointId),
            _ => return Response::error(400, &format!("ids[{i}] is not a point id")),
        }
    }
    match entry.remove_ids(&ids) {
        Ok((removed, mutation)) => {
            let out = apply_mutation(shared, name, entry.dims(), &mutation, &trace_id);
            let mut w = ObjectWriter::new();
            w.u64_field("removed", removed as u64);
            mutation_json_fields(&mut w, &mutation, &out, shared.failover.epoch());
            Response::json(200, w.finish())
        }
        Err(e) => registry_response(e),
    }
}

/// Optional `/skyline` response payload behind `include_masks=1` /
/// `include_rows=1` — what the cluster coordinator consumes: each
/// point's maximum dominating subspace w.r.t. this shard's own elite
/// reference set, which elites those were (as positions into `ids`),
/// and the raw coordinates for cross-shard dominance tests.
struct SkylineExtras {
    /// Per-point subspace masks (bit `i` = dimension `i`), or `None`
    /// when only rows were requested.
    masks: Option<(Vec<u64>, Vec<u64>)>,
    /// `[[f64, ...], ...]` JSON, or `None` when only masks were
    /// requested. `{}` formatting of `f64` is shortest-round-trip, so
    /// coordinates survive the wire exactly.
    rows_json: Option<String>,
}

fn skyline_json_with(
    key: &CacheKey,
    cached: bool,
    ids: &[PointId],
    elapsed_us: u64,
    extras: Option<&SkylineExtras>,
    timings: Option<&[(String, u64)]>,
) -> String {
    let ids64: Vec<u64> = ids.iter().map(|&i| i as u64).collect();
    let mut w = ObjectWriter::new();
    w.str_field("dataset", &key.dataset)
        .str_field("algorithm", &key.algorithm)
        .u64_field("version", key.version)
        .u64_field("mask_bits", key.mask_bits)
        .u64_field("k", key.k)
        .bool_field("cached", cached)
        .u64_field("count", ids.len() as u64)
        .u64_field("elapsed_us", elapsed_us)
        .u64_array_field("ids", &ids64);
    if let Some(extras) = extras {
        if let Some((masks, elites)) = &extras.masks {
            w.u64_array_field("masks", masks)
                .u64_array_field("elites", elites);
        }
        if let Some(rows) = &extras.rows_json {
            w.raw_field("rows", rows);
        }
    }
    if let Some(stages) = timings {
        let mut t = ObjectWriter::new();
        for (name, us) in stages {
            t.u64_field(name, *us);
        }
        w.raw_field("timings", &t.finish());
    }
    w.finish()
}

/// Seal a `/skyline` response: mark the `respond` stage, record the
/// per-stage histograms, attach the stage-times and trace echo headers,
/// and drop a `StageBreakdown` into the slow-query log when the request
/// ran longer than `--slow-ms`.
fn finish_skyline_response(
    shared: &Shared,
    mut timer: StageTimer,
    trace_id: &str,
    resp: Response,
) -> Response {
    timer.mark("respond");
    shared.metrics.record_stages(timer.stages());
    let entries = timer.all_entries();
    let mut resp = resp.with_header(
        trace::STAGE_TIMES_HEADER,
        &trace::encode_stage_times(&entries),
    );
    if !trace_id.is_empty() {
        resp = resp.with_header(trace::TRACE_HEADER, trace_id);
    }
    let total_us = timer.stages().iter().map(|(_, us)| us).sum();
    let breakdown = Event::StageBreakdown {
        trace: trace_id.to_string(),
        endpoint: "/skyline".to_string(),
        total_us,
        stages: entries,
        straggler: String::new(),
    };
    // Every query's breakdown goes to the trace sink (that is what
    // `skyline report --stages` aggregates); slow ones also land in the
    // dedicated slow-query log.
    if shared.slow_ms > 0 && total_us >= shared.slow_ms.saturating_mul(1000) {
        shared.emit_slow(breakdown.clone());
        if shared.slow_log.is_some() {
            shared.emit(breakdown);
        }
    } else {
        shared.emit(breakdown);
    }
    resp
}

/// Compute the opt-in extras for skyline `row_ids` (row indices into
/// `target`, which is already projected when the query named `dims`).
fn compute_extras(
    target: Option<&Dataset>,
    row_ids: &[PointId],
    include_masks: bool,
    include_rows: bool,
) -> SkylineExtras {
    let masks = include_masks.then(|| match target {
        None => (Vec::new(), Vec::new()),
        Some(data) => {
            let elite_ids = skyline_core::shard_merge::select_reference_elites(data, row_ids);
            let masks = skyline_core::shard_merge::reference_masks(data, row_ids, &elite_ids)
                .into_iter()
                .map(|s| s.bits())
                .collect();
            // Elites as positions into the response arrays, so the
            // caller never has to reverse any id mapping.
            let positions = elite_ids
                .iter()
                .map(|e| {
                    row_ids
                        .iter()
                        .position(|x| x == e)
                        .expect("elite ∈ skyline") as u64
                })
                .collect();
            (masks, positions)
        }
    });
    let rows_json = include_rows.then(|| {
        use std::fmt::Write as _;
        let mut out = String::from("[");
        for (i, &id) in row_ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            if let Some(data) = target {
                for (j, v) in data.point(id).iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
            }
            out.push(']');
        }
        out.push(']');
        out
    });
    SkylineExtras { masks, rows_json }
}

/// How long a read stamped with a session token waits for replication
/// to catch up before bouncing to the primary.
const MIN_VERSION_WAIT: Duration = Duration::from_millis(500);

/// Honour a read-your-writes session token ([`MIN_VERSION_HEADER`]):
/// the read must observe `name` at the token's version or newer.
/// `None` = satisfied (proceed with the read). A follower that cannot
/// catch up within [`MIN_VERSION_WAIT`] bounces the client to its
/// primary with 307; a primary that has never reached the version
/// answers 409 — the token came from a history this node does not have,
/// which after a failover means the client must surface the lost write
/// rather than silently read around it.
fn min_version_gate(
    shared: &Shared,
    entry: &registry::DatasetEntry,
    name: &str,
    req: &Request,
) -> Option<Response> {
    let raw = req.header(MIN_VERSION_HEADER)?;
    let Ok(min_version) = raw.parse::<u64>() else {
        return Some(Response::error(
            400,
            &format!("bad {MIN_VERSION_HEADER} value {raw:?}"),
        ));
    };
    if min_version == 0 {
        return None;
    }
    let deadline = Instant::now() + MIN_VERSION_WAIT;
    loop {
        if entry.wait_for_version(min_version - 1, Duration::from_millis(50)) >= min_version {
            return None;
        }
        if Instant::now() >= deadline || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    match shared.failover.follow_target() {
        Some(primary) => {
            // Rebuild the request target so the client can replay the
            // exact read against the primary.
            let query: Vec<String> = req.query.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let target = if query.is_empty() {
                req.path.clone()
            } else {
                format!("{}?{}", req.path, query.join("&"))
            };
            let mut w = ObjectWriter::new();
            w.str_field(
                "error",
                "replica is behind the session token; read from the primary",
            )
            .u64_field("min_version", min_version)
            .str_field("primary", &primary.to_string());
            Some(
                Response::json(307, w.finish())
                    .with_header("Location", &format!("http://{primary}{target}")),
            )
        }
        None => Some(Response::error(
            409,
            &format!(
                "session token demands version {min_version} of {name:?}, \
                 which this primary has never applied"
            ),
        )),
    }
}

/// `GET /skyline?dataset=&algo=&dims=&k=&threads=&deadline_ms=`.
fn handle_skyline(shared: &Shared, req: &Request) -> Response {
    let mut timer = StageTimer::start();
    let trace_id = inherited_trace(req);
    let wants_timings = req.query_param("timings") == Some("1");
    let Some(name) = req.query_param("dataset") else {
        return Response::error(400, "missing query parameter \"dataset\"");
    };
    // Global admission gate: beyond `max_inflight` concurrent queries,
    // shed immediately rather than queueing work the server cannot keep
    // up with.
    let _inflight = match acquire_inflight(shared) {
        Ok(permit) => permit,
        Err(()) => {
            return shed_response(
                shared,
                "/skyline",
                "server overloaded: too many queries in flight",
            )
        }
    };
    let entry = match shared.registry.get(name) {
        Ok(e) => e,
        Err(e) => return registry_response(e),
    };
    let _dataset_slot = match acquire_dataset_slot(shared, name) {
        Ok(permit) => permit,
        Err(()) => {
            return shed_response(
                shared,
                "/skyline",
                &format!("dataset {name:?} overloaded: too many concurrent queries"),
            )
        }
    };
    if let Some(resp) = min_version_gate(shared, &entry, name, req) {
        return resp;
    }
    let deadline_ms: Option<u64> = match req.query_param("deadline_ms") {
        None | Some("") => None,
        Some(raw) => match raw.parse() {
            Ok(ms) if ms > 0 => Some(ms),
            _ => {
                return Response::error(
                    400,
                    &format!("bad \"deadline_ms\" value {raw:?} (positive integer)"),
                )
            }
        },
    };
    let threads: u64 = match req.query_param("threads") {
        None | Some("") => 0,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => return Response::error(400, &format!("bad \"threads\" value {raw:?}")),
        },
    };
    let k: u64 = match req.query_param("k") {
        None | Some("") => 1,
        Some(raw) => match raw.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Response::error(400, &format!("bad \"k\" value {raw:?} (k >= 1)")),
        },
    };
    let include_masks = match req.query_param("include_masks") {
        None | Some("") | Some("0") => false,
        Some("1") => true,
        Some(raw) => {
            return Response::error(
                400,
                &format!("bad \"include_masks\" value {raw:?} (0 or 1)"),
            )
        }
    };
    let include_rows = match req.query_param("include_rows") {
        None | Some("") | Some("0") => false,
        Some("1") => true,
        Some(raw) => {
            return Response::error(400, &format!("bad \"include_rows\" value {raw:?} (0 or 1)"))
        }
    };
    if include_masks && k > 1 {
        return Response::error(
            400,
            "include_masks=1 requires k=1: dominating-subspace masks are only defined for the skyline",
        );
    }
    let algo_name = match req.query_param("algo") {
        None | Some("") => "SDI-Subset",
        Some(a) => a,
    };
    let wants_parallel = threads > 0 || algo_name.starts_with("P-") || algo_name.starts_with("p-");
    let algo: Box<dyn SkylineAlgorithm> = if wants_parallel {
        match parallel_algorithm(algo_name, None, threads as usize) {
            Some(a) => a,
            None => {
                return Response::error(
                    400,
                    &format!("no parallel engine for algorithm {algo_name:?}"),
                )
            }
        }
    } else {
        match algorithm_by_name(algo_name) {
            Some(a) => a,
            None => return Response::error(400, &format!("unknown algorithm {algo_name:?}")),
        }
    };

    let total_dims = entry.dims();
    let full = Subspace::full(total_dims);
    let mask = match req.query_param("dims") {
        None | Some("") => full,
        Some(raw) => {
            let mut picked = Vec::new();
            for part in raw.split(',').filter(|p| !p.is_empty()) {
                match part.trim().parse::<usize>() {
                    Ok(d) if d < total_dims => picked.push(d),
                    _ => {
                        return Response::error(
                            400,
                            &format!("bad dimension {part:?} (dataset has {total_dims} dims)"),
                        )
                    }
                }
            }
            if picked.is_empty() {
                return Response::error(400, "\"dims\" must name at least one dimension");
            }
            Subspace::from_dims(picked)
        }
    };

    timer.mark("parse");
    let snapshot = entry.snapshot();
    let key = CacheKey {
        dataset: name.to_string(),
        version: snapshot.version,
        algorithm: algo.name().to_string(),
        mask_bits: mask.bits(),
        k,
        threads,
    };
    let start = Instant::now();
    if let Some(hit) = shared.cache.get(&key) {
        shared.emit(Event::CacheHit {
            dataset: name.to_string(),
            algorithm: algo.name().to_string(),
            version: snapshot.version,
            trace: trace_id.clone(),
        });
        // Extras are derived data, not cached: map the cached handles
        // back to row indices (the handle list is ascending) and
        // recompute. The cache key pins the version, so the snapshot
        // still describes exactly the cached result.
        let extras = (include_masks || include_rows).then(|| {
            let projected: Option<Dataset> = match &snapshot.dataset {
                Some(data) if mask != full => Some(data.project_dims(mask)),
                _ => None,
            };
            let target: Option<&Dataset> = projected.as_ref().or(snapshot.dataset.as_ref());
            let row_ids: Vec<PointId> = hit
                .ids
                .iter()
                .map(|h| {
                    snapshot
                        .handles
                        .binary_search(h)
                        .expect("cached handle present at its own version")
                        as PointId
                })
                .collect();
            compute_extras(target, &row_ids, include_masks, include_rows)
        });
        timer.mark("cache");
        let elapsed_us = start.elapsed().as_micros() as u64;
        let body = skyline_json_with(
            &key,
            true,
            &hit.ids,
            elapsed_us,
            extras.as_ref(),
            wants_timings.then(|| timer.stages().to_vec()).as_deref(),
        );
        let resp = with_replica_lag(shared, name, Response::json(200, body));
        return finish_skyline_response(shared, timer, &trace_id, resp);
    }
    timer.mark("cache");

    // The deadline starts at compute time: parsing and cache probing are
    // bounded, the algorithm run is not.
    let token = match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::none(),
    };
    let deadline_response = || {
        shared.metrics.inc_deadline_exceeded();
        shared.emit(Event::DeadlineExceeded {
            dataset: name.to_string(),
            algorithm: algo.name().to_string(),
            deadline_ms: deadline_ms.unwrap_or(0),
        });
        Response::error(
            504,
            &format!(
                "deadline of {} ms exceeded computing skyline of {name:?}",
                deadline_ms.unwrap_or(0)
            ),
        )
    };
    let mut extras: Option<SkylineExtras> = None;
    let ids: Vec<PointId> = match &snapshot.dataset {
        None => {
            if include_masks || include_rows {
                extras = Some(compute_extras(None, &[], include_masks, include_rows));
            }
            Vec::new()
        }
        Some(data) => {
            faults::check_delay("compute");
            let mut metrics = Metrics::new();
            let projected;
            let target: &Dataset = if mask == full {
                data
            } else {
                projected = data.project_dims(mask);
                &projected
            };
            let mut rows = if k > 1 {
                // The skyband path has no in-loop cancellation; honour
                // the deadline with an up-front check.
                if token.check().is_err() {
                    return deadline_response();
                }
                let mut band = k_skyband_ids(target, k as usize, &mut metrics);
                band.sort_unstable();
                band
            } else {
                match algo.compute_cancellable(target, &mut metrics, &token) {
                    Ok(rows) => rows,
                    Err(_) => return deadline_response(),
                }
            };
            timer.mark("compute");
            if include_masks || include_rows {
                extras = Some(compute_extras(
                    Some(target),
                    &rows,
                    include_masks,
                    include_rows,
                ));
            }
            // Row indices → stable stream handles. The handle list is
            // ascending, so ascending row ids stay ascending.
            for id in rows.iter_mut() {
                *id = snapshot.handles[*id as usize];
            }
            rows
        }
    };
    timer.mark("extras");
    let elapsed_us = start.elapsed().as_micros() as u64;
    let body = skyline_json_with(
        &key,
        false,
        &ids,
        elapsed_us,
        extras.as_ref(),
        wants_timings.then(|| timer.stages().to_vec()).as_deref(),
    );
    shared.cache.insert(key, CachedResult { ids, elapsed_us });
    let resp = with_replica_lag(shared, name, Response::json(200, body));
    finish_skyline_response(shared, timer, &trace_id, resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_test_server() -> ServerHandle {
        Server::start(ServerConfig {
            threads: 2,
            cache_capacity: 16,
            ..ServerConfig::default()
        })
        .expect("start server")
    }

    #[test]
    fn healthz_and_unknown_endpoint() {
        let server = start_test_server();
        let addr = server.local_addr();
        let ok = client::get(addr, "/healthz").unwrap();
        assert_eq!(ok.status, 200);
        let v = Value::parse(&ok.body_str()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
        assert_eq!(client::post(addr, "/healthz", "").unwrap().status, 405);
    }

    #[test]
    fn create_query_cache_and_patch() {
        let server = start_test_server();
        let addr = server.local_addr();
        let created = client::post(
            addr,
            "/datasets",
            r#"{"name": "t", "rows": [[1, 5], [5, 1], [6, 6]]}"#,
        )
        .unwrap();
        assert_eq!(created.status, 201, "{}", created.body_str());

        let first = client::get(addr, "/skyline?dataset=t&algo=SFS").unwrap();
        assert_eq!(first.status, 200, "{}", first.body_str());
        let v1 = Value::parse(&first.body_str()).unwrap();
        assert_eq!(v1.get("cached").unwrap(), &Value::Bool(false));
        assert_eq!(v1.get("count").unwrap().as_u64(), Some(2));

        let second = client::get(addr, "/skyline?dataset=t&algo=SFS").unwrap();
        let v2 = Value::parse(&second.body_str()).unwrap();
        assert_eq!(v2.get("cached").unwrap(), &Value::Bool(true));
        assert_eq!(v2.get("ids").unwrap(), v1.get("ids").unwrap());

        // A streaming insert bumps the version; the full-space entry is
        // patched forward by the mutation's delta, not dropped.
        let inserted =
            client::post(addr, "/datasets/t/points", r#"{"rows": [[0.5, 0.5]]}"#).unwrap();
        assert_eq!(inserted.status, 200, "{}", inserted.body_str());
        let vi = Value::parse(&inserted.body_str()).unwrap();
        assert_eq!(vi.get("cache_patched").unwrap().as_u64(), Some(1));
        assert_eq!(vi.get("cache_invalidated").unwrap().as_u64(), Some(0));
        let entered: Vec<u64> = vi
            .get("entered")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        assert_eq!(entered, vec![3], "the dominating insert entered");

        // The warm query at the new version answers from the patched
        // entry — no recompute — and matches a recompute exactly.
        let third = client::get(addr, "/skyline?dataset=t&algo=SFS").unwrap();
        let v3 = Value::parse(&third.body_str()).unwrap();
        assert_eq!(v3.get("cached").unwrap(), &Value::Bool(true));
        assert_eq!(
            v3.get("count").unwrap().as_u64(),
            Some(1),
            "new point dominates"
        );
        assert_eq!(v3.get("ids").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn subspace_skyband_and_bad_requests() {
        let server = start_test_server();
        let addr = server.local_addr();
        client::post(
            addr,
            "/datasets",
            r#"{"name": "s", "rows": [[1, 9, 9], [9, 1, 9], [9, 9, 1], [2, 2, 2]]}"#,
        )
        .unwrap();
        let sub = client::get(addr, "/skyline?dataset=s&algo=SaLSa&dims=0,1").unwrap();
        let v = Value::parse(&sub.body_str()).unwrap();
        assert_eq!(v.get("mask_bits").unwrap().as_u64(), Some(3));
        let band = client::get(addr, "/skyline?dataset=s&k=2").unwrap();
        let vb = Value::parse(&band.body_str()).unwrap();
        assert_eq!(vb.get("count").unwrap().as_u64(), Some(4));

        assert_eq!(client::get(addr, "/skyline").unwrap().status, 400);
        assert_eq!(
            client::get(addr, "/skyline?dataset=missing")
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client::get(addr, "/skyline?dataset=s&algo=bogus")
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            client::get(addr, "/skyline?dataset=s&dims=7")
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            client::get(addr, "/skyline?dataset=s&algo=BNL&threads=2")
                .unwrap()
                .status,
            400,
            "BNL has no parallel engine"
        );
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let mut server = start_test_server();
        let addr = server.local_addr();
        let resp = client::post(addr, "/shutdown", "").unwrap();
        assert_eq!(resp.status, 200);
        server.wait(); // returns because the accept loop exited
        assert!(client::get(addr, "/healthz").is_err(), "listener is closed");
    }

    #[test]
    fn skyline_responses_carry_stage_times_and_echo_the_trace() {
        let server = start_test_server();
        let addr = server.local_addr();
        client::post(
            addr,
            "/datasets",
            r#"{"name": "tr", "rows": [[1, 5], [5, 1], [6, 6]]}"#,
        )
        .unwrap();

        let headers = vec![(trace::TRACE_HEADER.to_string(), "abc123".to_string())];
        let (resp, _timing) =
            client::request_timed(addr, "GET", "/skyline?dataset=tr&timings=1", &[], &headers)
                .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        assert_eq!(resp.header(trace::TRACE_HEADER), Some("abc123"));
        let stage_times = resp.header(trace::STAGE_TIMES_HEADER).expect("stage times");
        let stages = trace::decode_stage_times(stage_times);
        let names: Vec<&str> = stages.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["parse", "cache", "compute", "extras", "respond"]);

        // `timings=1` also inlines the stages into the body (without the
        // `respond` stage, which only exists once the body is built).
        let v = Value::parse(&resp.body_str()).unwrap();
        let timings = v.get("timings").expect("timings field");
        assert!(timings.get("compute").unwrap().as_u64().is_some());
        assert!(timings.get("respond").is_none());

        // Without `timings=1` the body is unchanged but headers remain.
        let plain = client::get(addr, "/skyline?dataset=tr").unwrap();
        let vp = Value::parse(&plain.body_str()).unwrap();
        assert!(vp.get("timings").is_none());
        assert!(plain.header(trace::STAGE_TIMES_HEADER).is_some());
        assert!(
            plain.header(trace::TRACE_HEADER).is_none(),
            "no inherited trace"
        );

        // A malformed inherited trace id is ignored, not echoed.
        let bad = vec![(trace::TRACE_HEADER.to_string(), "not hex!".to_string())];
        let (resp, _) =
            client::request_timed(addr, "GET", "/skyline?dataset=tr", &[], &bad).unwrap();
        assert!(resp.header(trace::TRACE_HEADER).is_none());
    }

    #[test]
    fn change_feed_serves_dense_batches_with_ops_and_cursors() {
        let server = start_test_server();
        let addr = server.local_addr();
        client::post(
            addr,
            "/datasets",
            r#"{"name": "f", "rows": [[1.0, 5.0], [5.0, 1.0]]}"#,
        )
        .unwrap();
        client::post(addr, "/datasets/f/points", r#"{"rows": [[0.5, 0.5]]}"#).unwrap();

        let resp = client::get(addr, "/datasets/f/changes?since=0&ops=1").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let v = Value::parse(&resp.body_str()).unwrap();
        assert_eq!(v.get("since").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("next").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("latest").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("heartbeat").unwrap(), &Value::Bool(false));
        let records = v.get("records").unwrap().as_arr().unwrap();
        assert_eq!(records.len(), 3, "create rows + one insert");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.get("version").unwrap().as_u64(), Some(i as u64 + 1));
            assert!(r.get("row").is_some(), "ops=1 ships the raw insert");
        }

        // A mid-stream cursor returns only the suffix; without ops=1
        // the records are bare deltas.
        let resp = client::get(addr, "/datasets/f/changes?since=2").unwrap();
        let v = Value::parse(&resp.body_str()).unwrap();
        let records = v.get("records").unwrap().as_arr().unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].get("row").is_none());

        // A future cursor is a heartbeat, not an error.
        let resp = client::get(addr, "/datasets/f/changes?since=99").unwrap();
        let v = Value::parse(&resp.body_str()).unwrap();
        assert_eq!(v.get("heartbeat").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("next").unwrap().as_u64(), Some(99));

        assert_eq!(
            client::get(addr, "/datasets/nope/changes").unwrap().status,
            404
        );
        assert_eq!(
            client::get(addr, "/datasets/f/changes?since=junk")
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            client::post(addr, "/datasets/f/changes", "")
                .unwrap()
                .status,
            405
        );
    }

    #[test]
    fn snapshot_endpoint_serves_the_wire_format() {
        let server = start_test_server();
        let addr = server.local_addr();
        client::post(
            addr,
            "/datasets",
            r#"{"name": "sn", "rows": [[1.0, 5.0], [5.0, 1.0]]}"#,
        )
        .unwrap();
        let resp = client::get(addr, "/datasets/sn/snapshot").unwrap();
        assert_eq!(resp.status, 200);
        let (dims, version, slots) = wal::parse_snapshot(&resp.body_str()).expect("parses");
        assert_eq!(dims, 2);
        assert_eq!(version, 2);
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn follower_mode_conflicts_with_a_data_dir() {
        let err = match Server::start(ServerConfig {
            follow: Some("127.0.0.1:1".parse().unwrap()),
            data_dir: Some(std::env::temp_dir().join("skyline-follow-conflict")),
            ..ServerConfig::default()
        }) {
            Err(e) => e,
            Ok(_) => panic!("follower mode must refuse a data dir"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn follower_converges_rejects_writes_and_reports_lag() {
        let primary = start_test_server();
        let paddr = primary.local_addr();
        client::post(
            addr_of(&primary),
            "/datasets",
            r#"{"name": "rep", "rows": [[1.0, 5.0], [5.0, 1.0], [6.0, 6.0]]}"#,
        )
        .unwrap();

        let follower = Server::start(ServerConfig {
            threads: 2,
            follow: Some(paddr),
            follow_wait_ms: 100,
            ..ServerConfig::default()
        })
        .expect("start follower");
        let faddr = follower.local_addr();

        // The follower discovers, resyncs and tails on its own threads.
        let deadline = Instant::now() + Duration::from_secs(10);
        let primary_ids = loop {
            let p = client::get(paddr, "/skyline?dataset=rep").unwrap();
            let f = client::get(faddr, "/skyline?dataset=rep");
            if let Ok(f) = &f {
                if f.status == 200 {
                    let pv = Value::parse(&p.body_str()).unwrap();
                    let fv = Value::parse(&f.body_str()).unwrap();
                    if pv.get("version") == fv.get("version") {
                        assert_eq!(pv.get("ids"), fv.get("ids"), "byte-identical skyline");
                        assert!(
                            f.header(replica::LAG_HEADER).is_some(),
                            "reads carry the lag header"
                        );
                        break pv.get("ids").unwrap().clone();
                    }
                }
            }
            assert!(Instant::now() < deadline, "follower never converged");
            std::thread::sleep(Duration::from_millis(25));
        };

        // A mutation on the primary flows through the feed.
        client::post(paddr, "/datasets/rep/points", r#"{"rows": [[0.5, 0.5]]}"#).unwrap();
        loop {
            let f = client::get(faddr, "/skyline?dataset=rep").unwrap();
            let fv = Value::parse(&f.body_str()).unwrap();
            if fv.get("version").unwrap().as_u64() == Some(4) {
                assert_eq!(fv.get("count").unwrap().as_u64(), Some(1));
                assert_ne!(fv.get("ids").unwrap(), &primary_ids);
                break;
            }
            assert!(Instant::now() < deadline, "mutation never replicated");
            std::thread::sleep(Duration::from_millis(25));
        }

        // Writes bounce with a redirect at the primary.
        let rejected =
            client::post(faddr, "/datasets/rep/points", r#"{"rows": [[0.1, 0.1]]}"#).unwrap();
        assert_eq!(rejected.status, 307);
        assert_eq!(
            rejected.header("location"),
            Some(format!("http://{paddr}/datasets/rep/points").as_str())
        );
        let create = client::post(faddr, "/datasets", r#"{"name": "x", "rows": [[1.0]]}"#).unwrap();
        assert_eq!(create.status, 307);

        // Role and replication telemetry are visible.
        let health = Value::parse(&client::get(faddr, "/healthz").unwrap().body_str()).unwrap();
        assert_eq!(health.get("role").unwrap().as_str(), Some("replica"));
        let metrics = Value::parse(&client::get(faddr, "/metrics").unwrap().body_str()).unwrap();
        let repl = metrics.get("replication").expect("replication section");
        assert!(repl.get("applied_total").unwrap().as_u64().unwrap() >= 1);
        let prom = client::get(faddr, "/metrics?format=prometheus").unwrap();
        let text = prom.body_str();
        assert!(text.contains("skyline_replica_applied_total"), "{text}");
        assert!(
            text.contains("skyline_replica_lag_versions{dataset=\"rep\"}"),
            "{text}"
        );
    }

    fn addr_of(server: &ServerHandle) -> SocketAddr {
        server.local_addr()
    }

    #[test]
    fn metrics_expose_stage_histograms_cache_hit_rate_and_prometheus() {
        let server = start_test_server();
        let addr = server.local_addr();
        client::post(
            addr,
            "/datasets",
            r#"{"name": "m", "rows": [[1, 5], [5, 1]]}"#,
        )
        .unwrap();
        client::get(addr, "/skyline?dataset=m").unwrap();
        client::get(addr, "/skyline?dataset=m").unwrap(); // cache hit

        let metrics = client::get(addr, "/metrics").unwrap();
        let v = Value::parse(&metrics.body_str()).unwrap();
        let stages = v.get("stages").expect("stages object");
        for stage in ["parse", "cache", "compute", "respond"] {
            let s = stages.get(stage).unwrap_or_else(|| panic!("stage {stage}"));
            assert!(s.get("count").unwrap().as_u64().unwrap() >= 1);
            assert!(s.get("p99_us").unwrap().as_u64().is_some());
        }
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        match cache.get("hit_rate").unwrap() {
            Value::Num(rate) => assert!((rate - 0.5).abs() < 1e-9),
            other => panic!("hit_rate not a number: {other:?}"),
        }

        let prom = client::get(addr, "/metrics?format=prometheus").unwrap();
        assert_eq!(prom.status, 200);
        assert!(prom
            .header("content-type")
            .unwrap()
            .starts_with("text/plain"));
        let text = prom.body_str();
        assert!(text.contains("# TYPE skyline_requests_total counter"));
        assert!(text.contains("# TYPE skyline_stage_us histogram"));
        assert!(text.contains("stage=\"compute\""));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("skyline_cache_hit_rate 0.5"));

        let bad = client::get(addr, "/metrics?format=xml").unwrap();
        assert_eq!(bad.status, 400);
    }
}

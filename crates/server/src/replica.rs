//! Follower mode: tail a primary's change feeds into local datasets.
//!
//! `skyline serve --follow <primary>` starts the server read-only and
//! spawns one discovery thread here. The discovery loop polls the
//! primary's `/datasets` listing and hands each dataset to a dedicated
//! tailer thread, which long-polls
//! `GET /datasets/{name}/changes?ops=1&subscribe=1` and pushes every
//! record through the wrong-base-refusing
//! [`DatasetEntry::apply_replicated`]. Anything suspicious — a stale
//! cursor (410 Gone), a version gap, a delta that refuses our base, a
//! delta mismatch after applying the op — fails closed: the tailer
//! discards the dataset and resyncs from `GET /datasets/{name}/snapshot`
//! rather than ever serving a wrong answer.
//!
//! Delivery is at-least-once end to end. Reconnects replay from the
//! follower's own applied version, so duplicates are routine and
//! version arithmetic (`ReplicaApply::Duplicate`) makes them harmless;
//! a skipped version is impossible because `apply_replicated` only
//! accepts the next dense version.
//!
//! [`DatasetEntry::apply_replicated`]: crate::registry::DatasetEntry::apply_replicated

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skyline_core::changelog::{ChangeOp, ChangeRecord};
use skyline_core::delta::SkylineDelta;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;
use skyline_obs::json::Value;
use skyline_obs::{AtomicHistogram, Event};

use crate::registry::ReplicaApply;
use crate::{client, wal, Shared};

/// Response header a follower stamps on reads: how many versions its
/// copy of the queried dataset trailed the primary by at the last
/// applied batch. The cluster coordinator uses it as the bounded-
/// staleness guard when routing reads to replicas.
pub const LAG_HEADER: &str = "X-Skyline-Replica-Lag";

/// Everything a follower tracks about its replication stream.
pub struct ReplicaState {
    /// The primary this server tails.
    pub primary: SocketAddr,
    /// Long-poll hold passed to the primary's `/changes`, milliseconds.
    pub wait_ms: u64,
    /// Change records applied (duplicates excluded).
    pub applied_total: AtomicU64,
    /// Duplicate records skipped by version arithmetic.
    pub duplicates_total: AtomicU64,
    /// Snapshot resyncs, the initial sync included.
    pub resyncs_total: AtomicU64,
    /// Distribution of `primary_latest - record_version` at apply time:
    /// how far behind each applied record was when it landed.
    pub lag: AtomicHistogram,
    /// Per-dataset `(applied_version, primary_latest)` at the last batch.
    progress: Mutex<HashMap<String, (u64, u64)>>,
}

impl ReplicaState {
    /// Fresh state for a follower of `primary`.
    pub fn new(primary: SocketAddr, wait_ms: u64) -> ReplicaState {
        ReplicaState {
            primary,
            wait_ms,
            applied_total: AtomicU64::new(0),
            duplicates_total: AtomicU64::new(0),
            resyncs_total: AtomicU64::new(0),
            lag: AtomicHistogram::new(),
            progress: Mutex::new(HashMap::new()),
        }
    }

    /// Versions `dataset` trailed the primary by at the last applied
    /// batch (0 when unknown or fully caught up).
    pub fn lag_of(&self, dataset: &str) -> u64 {
        let map = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        map.get(dataset)
            .map_or(0, |&(applied, latest)| latest.saturating_sub(applied))
    }

    /// Record `dataset`'s replication progress after a batch.
    fn note(&self, dataset: &str, applied: u64, latest: u64) {
        let mut map = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(dataset.to_string(), (applied, latest));
    }

    /// Snapshot of per-dataset `(name, applied, primary_latest)`,
    /// sorted by name for stable rendering.
    pub fn progress_snapshot(&self) -> Vec<(String, u64, u64)> {
        let map = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<(String, u64, u64)> = map
            .iter()
            .map(|(name, &(applied, latest))| (name.clone(), applied, latest))
            .collect();
        rows.sort();
        rows
    }
}

/// Sleep in short slices so shutdown is never delayed by a backoff.
fn sleep_checking_shutdown(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25).min(total));
    }
}

/// The discovery loop: poll the primary's dataset listing, spawn one
/// tailer per dataset, join them all on shutdown.
pub(crate) fn run_follower(shared: Arc<Shared>) {
    let primary = shared
        .replica
        .as_ref()
        .expect("run_follower requires replica state")
        .primary;
    let mut tails: HashMap<String, JoinHandle<()>> = HashMap::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        if let Ok(names) = list_primary_datasets(primary) {
            for name in names {
                if tails.contains_key(&name) {
                    continue;
                }
                let tail_shared = Arc::clone(&shared);
                let tail_name = name.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("skyline-tail-{name}"))
                    .spawn(move || tail_dataset(&tail_shared, &tail_name));
                if let Ok(handle) = spawned {
                    tails.insert(name, handle);
                }
            }
        }
        sleep_checking_shutdown(&shared, Duration::from_millis(250));
    }
    for (_, handle) in tails {
        let _ = handle.join();
    }
}

/// The primary's dataset names, from `GET /datasets`.
fn list_primary_datasets(primary: SocketAddr) -> Result<Vec<String>, ()> {
    let resp = client::get(primary, "/datasets").map_err(|_| ())?;
    if resp.status != 200 {
        return Err(());
    }
    let v = Value::parse(&resp.body_str()).map_err(|_| ())?;
    let arr = v.get("datasets").and_then(Value::as_arr).ok_or(())?;
    Ok(arr
        .iter()
        .filter_map(|d| d.get("name").and_then(Value::as_str))
        .map(str::to_string)
        .collect())
}

/// Tail one dataset's change feed forever (until shutdown).
fn tail_dataset(shared: &Arc<Shared>, name: &str) {
    let state = shared.replica.as_ref().expect("replica state");
    // `Some(reason)` = the cursor is unusable and the next step is a
    // full snapshot resync; the reason lands in the trace event.
    let mut needs_resync: Option<String> = Some("initial sync".to_string());
    let mut cursor: u64 = 0;
    while !shared.shutdown.load(Ordering::Acquire) {
        if let Some(reason) = needs_resync.take() {
            match resync(shared, name, &reason) {
                Ok(version) => cursor = version,
                Err(_) => {
                    needs_resync = Some(reason);
                    sleep_checking_shutdown(shared, Duration::from_millis(200));
                    continue;
                }
            }
        }
        let path = format!(
            "/datasets/{name}/changes?since={cursor}&ops=1&subscribe=1&wait_ms={}",
            state.wait_ms
        );
        let resp = match client::get(state.primary, &path) {
            Ok(resp) => resp,
            Err(_) => {
                // Primary unreachable (crashed, restarting): keep the
                // cursor and reconnect-replay from it.
                sleep_checking_shutdown(shared, Duration::from_millis(200));
                continue;
            }
        };
        match resp.status {
            200 => {}
            410 => {
                needs_resync = Some(format!(
                    "cursor {cursor} predates the primary's retention horizon"
                ));
                continue;
            }
            _ => {
                sleep_checking_shutdown(shared, Duration::from_millis(200));
                continue;
            }
        }
        let Ok(body) = Value::parse(&resp.body_str()) else {
            sleep_checking_shutdown(shared, Duration::from_millis(200));
            continue;
        };
        let Some((records, latest)) = parse_batch(&body) else {
            needs_resync = Some("unparseable change batch".to_string());
            continue;
        };
        match apply_batch(shared, name, &records, latest) {
            Ok(version) => {
                cursor = version;
                state.note(name, version, latest.max(version));
            }
            Err(reason) => needs_resync = Some(reason),
        }
    }
}

/// Apply one parsed batch; returns the follower's version afterwards,
/// or the divergence reason that forces a resync.
fn apply_batch(
    shared: &Arc<Shared>,
    name: &str,
    records: &[ChangeRecord],
    latest: u64,
) -> Result<u64, String> {
    let state = shared.replica.as_ref().expect("replica state");
    let entry = shared
        .registry
        .get(name)
        .map_err(|e| format!("dataset vanished locally: {e}"))?;
    let mut applied = 0u64;
    let mut version = entry.info().version;
    for record in records {
        match entry.apply_replicated(record) {
            Ok(ReplicaApply::Applied) => {
                applied += 1;
                version = record.version();
                state.applied_total.fetch_add(1, Ordering::Relaxed);
                state.lag.record(latest.saturating_sub(record.version()));
            }
            Ok(ReplicaApply::Duplicate) => {
                state.duplicates_total.fetch_add(1, Ordering::Relaxed);
            }
            Ok(ReplicaApply::Diverged(why)) => return Err(why),
            Err(e) => return Err(e.to_string()),
        }
    }
    if applied > 0 {
        shared.emit(Event::ReplicaApply {
            dataset: name.to_string(),
            version,
            records: applied,
            lag: latest.saturating_sub(version),
        });
    }
    Ok(version)
}

/// Discard the local dataset and rebuild it from the primary's
/// snapshot endpoint. Returns the installed content version.
fn resync(shared: &Arc<Shared>, name: &str, reason: &str) -> Result<u64, ()> {
    let state = shared.replica.as_ref().expect("replica state");
    let resp = client::get(state.primary, &format!("/datasets/{name}/snapshot")).map_err(|_| ())?;
    if resp.status != 200 {
        return Err(());
    }
    let (dims, version, slots) = wal::parse_snapshot(&resp.body_str()).ok_or(())?;
    let stream = StreamingSkyline::restore(dims, &slots, version).map_err(|_| ())?;
    shared
        .registry
        .install_replica(name, stream)
        .map_err(|_| ())?;
    state.resyncs_total.fetch_add(1, Ordering::Relaxed);
    state.note(name, version, version);
    shared.emit(Event::ReplicaResync {
        dataset: name.to_string(),
        version,
        reason: reason.to_string(),
    });
    Ok(version)
}

/// Parse a `/changes?ops=1` body into records plus the primary's
/// `latest`. `None` on any shape surprise — the caller resyncs.
pub fn parse_batch(v: &Value) -> Option<(Vec<ChangeRecord>, u64)> {
    let latest = v.get("latest")?.as_u64()?;
    let arr = v.get("records")?.as_arr()?;
    let mut records = Vec::with_capacity(arr.len());
    for r in arr {
        let version = r.get("version")?.as_u64()?;
        let entered = point_ids(r.get("entered")?)?;
        let left = point_ids(r.get("left")?)?;
        let op = if let Some(row) = r.get("row") {
            let row: Option<Vec<f64>> = row.as_arr()?.iter().map(Value::as_f64).collect();
            ChangeOp::Insert { row: row? }
        } else if let Some(id) = r.get("remove").and_then(Value::as_u64) {
            ChangeOp::Remove {
                id: PointId::try_from(id).ok()?,
            }
        } else {
            return None; // ops=1 was requested; a bare record is a bug
        };
        records.push(ChangeRecord {
            op,
            delta: SkylineDelta::from_events(entered, left, version),
        });
    }
    Some((records, latest))
}

fn point_ids(v: &Value) -> Option<Vec<PointId>> {
    v.as_arr()?
        .iter()
        .map(|x| x.as_u64().and_then(|n| PointId::try_from(n).ok()))
        .collect()
}

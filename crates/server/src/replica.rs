//! The replica role state machine: follower mode, promotion, fencing.
//!
//! `skyline serve --follow <primary>` starts the server in the
//! [`Role::Follower`] state and the supervisor loop here tails the
//! primary's change feeds into local datasets. The discovery loop polls
//! the primary's `/datasets` listing and hands each dataset to a
//! dedicated tailer thread, which long-polls
//! `GET /datasets/{name}/changes?ops=1&subscribe=1` and pushes every
//! record through the wrong-base-refusing
//! [`DatasetEntry::apply_replicated`]. Anything suspicious — a stale
//! cursor (410 Gone), a version gap, a delta that refuses our base, a
//! delta mismatch after applying the op — fails closed: the tailer
//! discards the dataset and resyncs from `GET /datasets/{name}/snapshot`
//! rather than ever serving a wrong answer.
//!
//! Roles are not fixed at boot. A `POST /promote` carrying a fencing
//! epoch strictly above the node's own flips a follower to
//! [`Role::Primary`] in place: the generation counter bumps, every
//! tailer notices and exits, and the node starts accepting writes and
//! serving its own change feed from the inherited version. A
//! `POST /demote` (or a fenced request revealing a higher epoch) flips
//! a node the other way. The epoch only ever rises; requests stamped
//! with a stale epoch are refused with `409 Fenced` so a resurrected
//! old primary cannot split the brain.
//!
//! Delivery is at-least-once end to end. Reconnects replay from the
//! follower's own applied version, so duplicates are routine and
//! version arithmetic (`ReplicaApply::Duplicate`) makes them harmless;
//! a skipped version is impossible because `apply_replicated` only
//! accepts the next dense version.
//!
//! [`DatasetEntry::apply_replicated`]: crate::registry::DatasetEntry::apply_replicated

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skyline_core::changelog::{ChangeOp, ChangeRecord};
use skyline_core::delta::SkylineDelta;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;
use skyline_obs::json::Value;
use skyline_obs::{AtomicHistogram, Event};

use crate::registry::ReplicaApply;
use crate::{client, wal, Shared};

/// Response header a follower stamps on reads: how many versions its
/// copy of the queried dataset trailed the primary by at the last
/// applied batch. The cluster coordinator uses it as the bounded-
/// staleness guard when routing reads to replicas.
pub const LAG_HEADER: &str = "X-Skyline-Replica-Lag";

/// What this node currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes and serves its own change feed.
    Primary,
    /// Read-only; tails `primary`'s change feeds.
    Follower {
        /// The primary this node replicates from.
        primary: SocketAddr,
    },
}

/// The node's failover state: its role, fencing epoch, and everything a
/// follower tracks about its replication stream.
pub struct ReplicaState {
    /// Current role. Guarded by a lock so role flips are atomic with
    /// the epoch/generation updates they imply.
    role: RwLock<Role>,
    /// Bumped on every role change; tailer threads snapshot it and exit
    /// as soon as it moves, which is how promotion "stops the tailers".
    generation: AtomicU64,
    /// The fencing epoch this node serves under. Only ever rises.
    epoch: AtomicU64,
    /// Long-poll hold passed to the primary's `/changes`, milliseconds.
    pub wait_ms: u64,
    /// Promotions accepted (follower → primary).
    pub promotions_total: AtomicU64,
    /// Demotions accepted (primary/follower → follower).
    pub demotions_total: AtomicU64,
    /// Requests refused with `409 Fenced` for a stale epoch.
    pub fenced_total: AtomicU64,
    /// Change records applied (duplicates excluded).
    pub applied_total: AtomicU64,
    /// Duplicate records skipped by version arithmetic.
    pub duplicates_total: AtomicU64,
    /// Snapshot resyncs, the initial sync included.
    pub resyncs_total: AtomicU64,
    /// Distribution of `primary_latest - record_version` at apply time:
    /// how far behind each applied record was when it landed.
    pub lag: AtomicHistogram,
    /// Per-dataset `(applied_version, primary_latest)` at the last batch.
    progress: Mutex<HashMap<String, (u64, u64)>>,
}

impl ReplicaState {
    /// Fresh state starting in `role` under fencing epoch `epoch`.
    pub fn new(role: Role, wait_ms: u64, epoch: u64) -> ReplicaState {
        ReplicaState {
            role: RwLock::new(role),
            generation: AtomicU64::new(0),
            epoch: AtomicU64::new(epoch),
            wait_ms,
            promotions_total: AtomicU64::new(0),
            demotions_total: AtomicU64::new(0),
            fenced_total: AtomicU64::new(0),
            applied_total: AtomicU64::new(0),
            duplicates_total: AtomicU64::new(0),
            resyncs_total: AtomicU64::new(0),
            lag: AtomicHistogram::new(),
            progress: Mutex::new(HashMap::new()),
        }
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        *self.role.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The primary this node follows, when it is a follower.
    pub fn follow_target(&self) -> Option<SocketAddr> {
        match self.role() {
            Role::Primary => None,
            Role::Follower { primary } => Some(primary),
        }
    }

    /// The fencing epoch this node serves under.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The role-change generation; tailers exit when it moves.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Accept a promotion to primary under `epoch`. The epoch must be
    /// strictly above ours (a retry of an already-accepted promotion is
    /// an idempotent success); otherwise our epoch is returned as the
    /// error so the caller can see who outran them.
    pub fn promote(&self, epoch: u64) -> Result<(), u64> {
        let mut role = self.role.write().unwrap_or_else(|e| e.into_inner());
        let current = self.epoch.load(Ordering::Acquire);
        if matches!(*role, Role::Primary) && epoch == current {
            return Ok(());
        }
        if epoch <= current {
            return Err(current);
        }
        self.epoch.store(epoch, Ordering::Release);
        *role = Role::Primary;
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.promotions_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Step down into a follower of `primary` under `epoch`. The epoch
    /// must be at or above ours (equal allows a retarget within one
    /// epoch); a lower epoch is refused with ours as the error. When
    /// the node is already following `primary`, only the epoch widens —
    /// the generation stays put so running tailers are not churned.
    pub fn demote(&self, epoch: u64, primary: SocketAddr) -> Result<(), u64> {
        let mut role = self.role.write().unwrap_or_else(|e| e.into_inner());
        let current = self.epoch.load(Ordering::Acquire);
        if epoch < current {
            return Err(current);
        }
        self.epoch.store(epoch, Ordering::Release);
        if *role == (Role::Follower { primary }) {
            return Ok(());
        }
        *role = Role::Follower { primary };
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.demotions_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Versions `dataset` trailed the primary by at the last applied
    /// batch (0 when unknown or fully caught up).
    pub fn lag_of(&self, dataset: &str) -> u64 {
        let map = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        map.get(dataset)
            .map_or(0, |&(applied, latest)| latest.saturating_sub(applied))
    }

    /// Record `dataset`'s replication progress after a batch.
    fn note(&self, dataset: &str, applied: u64, latest: u64) {
        let mut map = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(dataset.to_string(), (applied, latest));
    }

    /// Snapshot of per-dataset `(name, applied, primary_latest)`,
    /// sorted by name for stable rendering.
    pub fn progress_snapshot(&self) -> Vec<(String, u64, u64)> {
        let map = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<(String, u64, u64)> = map
            .iter()
            .map(|(name, &(applied, latest))| (name.clone(), applied, latest))
            .collect();
        rows.sort();
        rows
    }
}

/// Sleep in short slices so shutdown is never delayed by a backoff.
fn sleep_checking_shutdown(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25).min(total));
    }
}

/// The follower supervisor, spawned once per server regardless of the
/// boot role. While the node is a primary it idles; while it is a
/// follower it runs the discovery loop — poll the primary's dataset
/// listing, spawn one tailer per dataset — for as long as the
/// generation holds. A role flip bumps the generation: the discovery
/// loop and every tailer notice, wind down, and the supervisor starts
/// over against the new role (possibly a new primary).
pub(crate) fn run_follower(shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        let state = &shared.failover;
        let Some(primary) = state.follow_target() else {
            sleep_checking_shutdown(&shared, Duration::from_millis(100));
            continue;
        };
        let generation = state.generation();
        let mut tails: HashMap<String, JoinHandle<()>> = HashMap::new();
        while !shared.shutdown.load(Ordering::Acquire) && state.generation() == generation {
            if let Ok(names) = list_primary_datasets(primary) {
                for name in names {
                    if tails.contains_key(&name) {
                        continue;
                    }
                    let tail_shared = Arc::clone(&shared);
                    let tail_name = name.clone();
                    let spawned = std::thread::Builder::new()
                        .name(format!("skyline-tail-{name}"))
                        .spawn(move || tail_dataset(&tail_shared, &tail_name, primary, generation));
                    if let Ok(handle) = spawned {
                        tails.insert(name, handle);
                    }
                }
            }
            sleep_checking_shutdown(&shared, Duration::from_millis(250));
        }
        for (_, handle) in tails {
            let _ = handle.join();
        }
    }
}

/// The primary's dataset names, from `GET /datasets`.
fn list_primary_datasets(primary: SocketAddr) -> Result<Vec<String>, ()> {
    let resp = client::get(primary, "/datasets").map_err(|_| ())?;
    if resp.status != 200 {
        return Err(());
    }
    let v = Value::parse(&resp.body_str()).map_err(|_| ())?;
    let arr = v.get("datasets").and_then(Value::as_arr).ok_or(())?;
    Ok(arr
        .iter()
        .filter_map(|d| d.get("name").and_then(Value::as_str))
        .map(str::to_string)
        .collect())
}

/// Tail one dataset's change feed until shutdown or a role change.
fn tail_dataset(shared: &Arc<Shared>, name: &str, primary: SocketAddr, generation: u64) {
    let state = &shared.failover;
    // `Some(reason)` = the cursor is unusable and the next step is a
    // full snapshot resync; the reason lands in the trace event.
    let mut needs_resync: Option<String> = Some("initial sync".to_string());
    let mut cursor: u64 = 0;
    while !shared.shutdown.load(Ordering::Acquire) && state.generation() == generation {
        if let Some(reason) = needs_resync.take() {
            match resync(shared, name, primary, generation, &reason) {
                Ok(version) => cursor = version,
                Err(_) => {
                    needs_resync = Some(reason);
                    sleep_checking_shutdown(shared, Duration::from_millis(200));
                    continue;
                }
            }
        }
        let path = format!(
            "/datasets/{name}/changes?since={cursor}&ops=1&subscribe=1&wait_ms={}",
            state.wait_ms
        );
        // Stamp the feed read with our epoch (and who we think the
        // primary is): a node that fell behind an epoch learns so from
        // the 409, a stale primary we still point at learns of its own
        // succession and demotes itself.
        let mut headers: Vec<(String, String)> = Vec::new();
        let epoch = state.epoch();
        if epoch > 0 {
            headers.push((crate::EPOCH_HEADER.to_string(), epoch.to_string()));
            headers.push((crate::PRIMARY_HEADER.to_string(), primary.to_string()));
        }
        let resp = match client::request_timed(primary, "GET", &path, b"", &headers) {
            Ok((resp, _)) => resp,
            Err(_) => {
                // Primary unreachable (crashed, restarting): keep the
                // cursor and reconnect-replay from it.
                sleep_checking_shutdown(shared, Duration::from_millis(200));
                continue;
            }
        };
        match resp.status {
            200 => {}
            409 => {
                // Fenced: the primary serves a higher epoch than we
                // carry. Adopt it (same follow target) and retry.
                if let Some(theirs) = Value::parse(&resp.body_str())
                    .ok()
                    .and_then(|v| v.get("epoch").and_then(Value::as_u64))
                {
                    let _ = state.demote(theirs, primary);
                }
                sleep_checking_shutdown(shared, Duration::from_millis(200));
                continue;
            }
            410 => {
                needs_resync = Some(format!(
                    "cursor {cursor} predates the primary's retention horizon"
                ));
                continue;
            }
            _ => {
                sleep_checking_shutdown(shared, Duration::from_millis(200));
                continue;
            }
        }
        let Ok(body) = Value::parse(&resp.body_str()) else {
            sleep_checking_shutdown(shared, Duration::from_millis(200));
            continue;
        };
        let Some((records, latest)) = parse_batch(&body) else {
            needs_resync = Some("unparseable change batch".to_string());
            continue;
        };
        // A batch fetched before a promotion must not land after it:
        // the promoted node owns its versions now.
        if state.generation() != generation {
            break;
        }
        match apply_batch(shared, name, &records, latest) {
            Ok(version) => {
                cursor = version;
                state.note(name, version, latest.max(version));
            }
            Err(reason) => needs_resync = Some(reason),
        }
    }
}

/// Apply one parsed batch; returns the follower's version afterwards,
/// or the divergence reason that forces a resync.
fn apply_batch(
    shared: &Arc<Shared>,
    name: &str,
    records: &[ChangeRecord],
    latest: u64,
) -> Result<u64, String> {
    let state = &shared.failover;
    let entry = shared
        .registry
        .get(name)
        .map_err(|e| format!("dataset vanished locally: {e}"))?;
    let mut applied = 0u64;
    let mut version = entry.info().version;
    for record in records {
        match entry.apply_replicated(record) {
            Ok(ReplicaApply::Applied) => {
                applied += 1;
                version = record.version();
                state.applied_total.fetch_add(1, Ordering::Relaxed);
                state.lag.record(latest.saturating_sub(record.version()));
            }
            Ok(ReplicaApply::Duplicate) => {
                state.duplicates_total.fetch_add(1, Ordering::Relaxed);
            }
            Ok(ReplicaApply::Diverged(why)) => return Err(why),
            Err(e) => return Err(e.to_string()),
        }
    }
    if applied > 0 {
        shared.emit(Event::ReplicaApply {
            dataset: name.to_string(),
            version,
            records: applied,
            lag: latest.saturating_sub(version),
        });
    }
    Ok(version)
}

/// Discard the local dataset and rebuild it from the primary's
/// snapshot endpoint. Returns the installed content version.
fn resync(
    shared: &Arc<Shared>,
    name: &str,
    primary: SocketAddr,
    generation: u64,
    reason: &str,
) -> Result<u64, ()> {
    let state = &shared.failover;
    let resp = client::get(primary, &format!("/datasets/{name}/snapshot")).map_err(|_| ())?;
    if resp.status != 200 {
        return Err(());
    }
    let (dims, version, slots) = wal::parse_snapshot(&resp.body_str()).ok_or(())?;
    let stream = StreamingSkyline::restore(dims, &slots, version).map_err(|_| ())?;
    // Never install a snapshot fetched under an old role: a promoted
    // node's state must not be clobbered by a straggling resync.
    if state.generation() != generation {
        return Err(());
    }
    shared
        .registry
        .install_replica(name, stream)
        .map_err(|_| ())?;
    state.resyncs_total.fetch_add(1, Ordering::Relaxed);
    state.note(name, version, version);
    shared.emit(Event::ReplicaResync {
        dataset: name.to_string(),
        version,
        reason: reason.to_string(),
    });
    Ok(version)
}

/// Parse a `/changes?ops=1` body into records plus the primary's
/// `latest`. `None` on any shape surprise — the caller resyncs.
pub fn parse_batch(v: &Value) -> Option<(Vec<ChangeRecord>, u64)> {
    let latest = v.get("latest")?.as_u64()?;
    let arr = v.get("records")?.as_arr()?;
    let mut records = Vec::with_capacity(arr.len());
    for r in arr {
        let version = r.get("version")?.as_u64()?;
        let entered = point_ids(r.get("entered")?)?;
        let left = point_ids(r.get("left")?)?;
        let op = if let Some(row) = r.get("row") {
            let row: Option<Vec<f64>> = row.as_arr()?.iter().map(Value::as_f64).collect();
            ChangeOp::Insert { row: row? }
        } else if let Some(id) = r.get("remove").and_then(Value::as_u64) {
            ChangeOp::Remove {
                id: PointId::try_from(id).ok()?,
            }
        } else {
            return None; // ops=1 was requested; a bare record is a bug
        };
        records.push(ChangeRecord {
            op,
            delta: SkylineDelta::from_events(entered, left, version),
        });
    }
    Some((records, latest))
}

fn point_ids(v: &Value) -> Option<Vec<PointId>> {
    v.as_arr()?
        .iter()
        .map(|x| x.as_u64().and_then(|n| PointId::try_from(n).ok()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn promote_requires_a_strictly_higher_epoch() {
        let state = ReplicaState::new(Role::Follower { primary: addr(1) }, 100, 0);
        assert_eq!(state.promote(0), Err(0), "epoch must rise");
        assert_eq!(state.promote(2), Ok(()));
        assert_eq!(state.role(), Role::Primary);
        assert_eq!(state.epoch(), 2);
        let generation = state.generation();
        assert_eq!(state.promote(2), Ok(()), "idempotent retry");
        assert_eq!(state.generation(), generation, "retry does not churn");
        assert_eq!(state.promote(1), Err(2), "stale epoch refused");
        assert_eq!(state.promotions_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn demote_accepts_equal_epochs_and_keeps_tailers_on_retarget() {
        let state = ReplicaState::new(Role::Primary, 100, 3);
        assert_eq!(state.demote(2, addr(2)), Err(3), "lower epoch refused");
        assert_eq!(state.demote(3, addr(2)), Ok(()), "equal epoch retargets");
        assert_eq!(state.follow_target(), Some(addr(2)));
        let generation = state.generation();
        // Same target, higher epoch: only the epoch widens.
        assert_eq!(state.demote(5, addr(2)), Ok(()));
        assert_eq!(state.epoch(), 5);
        assert_eq!(state.generation(), generation);
        // New target: the generation moves so tailers restart.
        assert_eq!(state.demote(5, addr(9)), Ok(()));
        assert_eq!(state.follow_target(), Some(addr(9)));
        assert!(state.generation() > generation);
        assert_eq!(state.demotions_total.load(Ordering::Relaxed), 2);
    }
}

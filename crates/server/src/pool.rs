//! A fixed-size worker thread pool over `std::sync::mpsc`.
//!
//! Connections are queued as boxed jobs; workers pull from a shared
//! receiver. Dropping the sender is the shutdown signal: workers finish
//! the job in hand, drain whatever is already queued, and exit — so a
//! graceful shutdown never truncates an in-flight response.
//!
//! Workers are panic-isolated: a job that panics unwinds its worker
//! thread, but a sentinel detects the unwind and spawns a replacement,
//! so the pool never silently loses capacity. Panics are counted for
//! `/metrics`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool has been shut down; the job was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool is shut down")
    }
}

/// State every worker shares.
struct PoolInner {
    receiver: Mutex<Receiver<Job>>,
    /// Jobs queued but not yet picked up by a worker.
    queued: AtomicUsize,
    /// Jobs that panicked (each one killed — and respawned — a worker).
    panicked: AtomicU64,
    name: String,
}

/// Handles of live workers. Respawned replacements are pushed here, so
/// shutdown joins them too.
type Handles = Arc<Mutex<Vec<JoinHandle<()>>>>;

/// Fixed-size worker pool.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    handles: Handles,
    sender: Option<Sender<Job>>,
    size: usize,
}

/// Dropped at worker exit. During a panic unwind it spawns a replacement
/// worker before the dying thread finishes, so capacity is restored
/// without any coordinator.
struct Sentinel {
    inner: Arc<PoolInner>,
    handles: Handles,
    index: usize,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.inner.panicked.fetch_add(1, Ordering::Relaxed);
            let replacement = Sentinel {
                inner: Arc::clone(&self.inner),
                handles: Arc::clone(&self.handles),
                index: self.index,
            };
            if let Ok(handle) = std::thread::Builder::new()
                .name(format!("{}-{}", self.inner.name, self.index))
                .spawn(move || worker_loop(replacement))
            {
                lock_ignore_poison(&self.handles).push(handle);
            }
        }
    }
}

/// Lock a mutex, recovering the data from a poisoned lock: the pool's
/// shared state stays usable even after a worker panicked mid-hold.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(sentinel: Sentinel) {
    loop {
        // Holding the lock only for the recv keeps the other workers
        // free to pick up queued jobs.
        let job = lock_ignore_poison(&sentinel.inner.receiver).recv();
        match job {
            Ok(job) => {
                sentinel.inner.queued.fetch_sub(1, Ordering::Relaxed);
                job();
            }
            Err(_) => break, // sender dropped: shutdown
        }
    }
}

impl ThreadPool {
    /// Spawn `size` workers (minimum 1) named `{name}-{i}`.
    pub fn new(size: usize, name: &str) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = channel();
        let inner = Arc::new(PoolInner {
            receiver: Mutex::new(receiver),
            queued: AtomicUsize::new(0),
            panicked: AtomicU64::new(0),
            name: name.to_string(),
        });
        let handles: Handles = Arc::new(Mutex::new(Vec::with_capacity(size)));
        for i in 0..size {
            let sentinel = Sentinel {
                inner: Arc::clone(&inner),
                handles: Arc::clone(&handles),
                index: i,
            };
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || worker_loop(sentinel))
                .expect("spawn worker thread");
            lock_ignore_poison(&handles).push(handle);
        }
        ThreadPool {
            inner,
            handles,
            sender: Some(sender),
            size,
        }
    }

    /// Number of workers the pool was sized for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Jobs queued and not yet started — the backlog an overloaded
    /// server sheds on.
    pub fn queue_depth(&self) -> usize {
        self.inner.queued.load(Ordering::Relaxed)
    }

    /// Jobs that panicked since the pool started.
    pub fn panics(&self) -> u64 {
        self.inner.panicked.load(Ordering::Relaxed)
    }

    /// Queue a job. Fails only after [`ThreadPool::shutdown`].
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed> {
        match &self.sender {
            Some(tx) => {
                self.inner.queued.fetch_add(1, Ordering::Relaxed);
                tx.send(Box::new(job)).map_err(|_| {
                    self.inner.queued.fetch_sub(1, Ordering::Relaxed);
                    PoolClosed
                })
            }
            None => Err(PoolClosed),
        }
    }

    /// Stop accepting jobs, drain the queue, and join every worker —
    /// including replacements respawned while this loop runs.
    pub fn shutdown(&mut self) {
        self.sender.take(); // closing the channel is the signal
        loop {
            let handle = lock_ignore_poison(&self.handles).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_queued_job_before_joining() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = ThreadPool::new(4, "test");
        assert_eq!(pool.size(), 4);
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert!(pool.execute(|| ()).is_err(), "closed after shutdown");
        assert_eq!(pool.queue_depth(), 0, "every job was picked up");
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0, "clamp");
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn panicking_jobs_respawn_workers_and_are_counted() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = ThreadPool::new(2, "boom");
        // More panics than workers: without respawn the pool would die
        // after the second one and strand the rest of the queue.
        for _ in 0..6 {
            pool.execute(|| panic!("injected job panic")).unwrap();
        }
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            50,
            "respawned workers drained the queue"
        );
        assert_eq!(pool.panics(), 6);
    }
}

//! A fixed-size worker thread pool over `std::sync::mpsc`.
//!
//! Connections are queued as boxed jobs; workers pull from a shared
//! receiver. Dropping the sender is the shutdown signal: workers finish
//! the job in hand, drain whatever is already queued, and exit — so a
//! graceful shutdown never truncates an in-flight response.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool has been shut down; the job was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool is shut down")
    }
}

/// Fixed-size worker pool.
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    sender: Option<Sender<Job>>,
}

impl ThreadPool {
    /// Spawn `size` workers (minimum 1) named `{name}-{i}`.
    pub fn new(size: usize, name: &str) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = channel();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only for the recv keeps the
                        // other workers free to pick up queued jobs.
                        let job = match receiver.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => break, // a worker panicked mid-recv
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender dropped: shutdown
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            workers,
            sender: Some(sender),
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job. Fails only after [`ThreadPool::shutdown`].
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed> {
        match &self.sender {
            Some(tx) => tx.send(Box::new(job)).map_err(|_| PoolClosed),
            None => Err(PoolClosed),
        }
    }

    /// Stop accepting jobs, drain the queue, and join every worker.
    pub fn shutdown(&mut self) {
        self.sender.take(); // closing the channel is the signal
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_queued_job_before_joining() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = ThreadPool::new(4, "test");
        assert_eq!(pool.size(), 4);
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert!(pool.execute(|| ()).is_err(), "closed after shutdown");
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0, "clamp");
        assert_eq!(pool.size(), 1);
    }
}

//! A minimal blocking HTTP/1.1 client, just enough to exercise the
//! server from integration tests and benchmarks without pulling in an
//! external crate. One request per connection (`Connection: close`)
//! unless a keep-alive session is opened explicitly.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("connection closed before status line"));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut close = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                close = true;
            }
        }
    }

    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None if close => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
        None => Vec::new(),
    };
    Ok(ClientResponse { status, body })
}

fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut buf = Vec::with_capacity(body.len() + 128);
    write!(
        buf,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    buf.extend_from_slice(body);
    writer.write_all(&buf)?;
    writer.flush()
}

/// Issue one request on a fresh connection and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, method, path, body, true)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// GET convenience wrapper around [`request`].
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, &[])
}

/// POST convenience wrapper around [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, body.as_bytes())
}

/// A persistent keep-alive connection for latency benchmarks, where the
/// TCP handshake would otherwise dominate the measurement.
pub struct Session {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Session {
    /// Open a connection to the server.
    pub fn connect(addr: SocketAddr) -> io::Result<Session> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Session {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Issue one request on the persistent connection.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        write_request(&mut self.writer, method, path, body, false)?;
        read_response(&mut self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_response_with_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4\r\n\r\n{\"\":1}";
        let resp = read_response(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"\":");
    }

    #[test]
    fn reads_to_eof_when_connection_close_without_length() {
        let raw = b"HTTP/1.1 500 Internal Server Error\r\nConnection: close\r\n\r\noops";
        let resp = read_response(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 500);
        assert_eq!(resp.body_str(), "oops");
    }

    #[test]
    fn rejects_garbage() {
        let raw = b"not http at all\r\n\r\n";
        assert!(read_response(&mut Cursor::new(&raw[..])).is_err());
    }
}

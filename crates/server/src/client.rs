//! A minimal blocking HTTP/1.1 client, just enough to exercise the
//! server from integration tests and benchmarks without pulling in an
//! external crate. One request per connection (`Connection: close`)
//! unless a keep-alive session is opened explicitly.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers as `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header with this name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("connection closed before status line"));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut close = false;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                close = true;
            }
            headers.push((name, value.to_string()));
        }
    }

    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None if close => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
        None => Vec::new(),
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    body: &[u8],
    close: bool,
    headers: &[(String, String)],
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut buf = Vec::with_capacity(body.len() + 128);
    write!(
        buf,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: {connection}\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    for (name, value) in headers {
        write!(buf, "{name}: {value}\r\n")?;
    }
    buf.extend_from_slice(b"\r\n");
    buf.extend_from_slice(body);
    writer.write_all(&buf)?;
    writer.flush()
}

/// Where one request's wall-clock went, as seen from the client:
/// TCP connect, request serialization+send, and the wait for (plus
/// read of) the response. The coordinator uses this split to attribute
/// scatter-gather time to stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// TCP connect time, microseconds.
    pub connect_us: u64,
    /// Request write time, microseconds.
    pub send_us: u64,
    /// Time from request flushed to response fully read, microseconds.
    pub wait_us: u64,
}

/// Issue one request on a fresh connection and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<ClientResponse> {
    request_timed(addr, method, path, body, &[]).map(|(resp, _)| resp)
}

/// [`request`] bounded by one explicit timeout covering connect, send,
/// and read. The failure detector's probe primitive: a dead or hung
/// peer must cost at most `timeout`, not the default 30s socket
/// timeouts.
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, method, path, body, true, &[])?;
    read_response(&mut BufReader::new(stream))
}

/// [`request`] with extra request headers and a per-phase timing split.
pub fn request_timed(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    headers: &[(String, String)],
) -> io::Result<(ClientResponse, RequestTiming)> {
    let mut timing = RequestTiming::default();
    let t = std::time::Instant::now();
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    timing.connect_us = t.elapsed().as_micros() as u64;
    let mut writer = stream.try_clone()?;
    let t = std::time::Instant::now();
    write_request(&mut writer, method, path, body, true, headers)?;
    timing.send_us = t.elapsed().as_micros() as u64;
    let mut reader = BufReader::new(stream);
    let t = std::time::Instant::now();
    let resp = read_response(&mut reader)?;
    timing.wait_us = t.elapsed().as_micros() as u64;
    Ok((resp, timing))
}

/// Bounded retry with jittered exponential backoff.
///
/// Retries fire only on *safe-to-repeat* failures: connection errors
/// (the server never saw the request, or it was shed before a worker
/// picked it up) and 503 shed responses (explicitly retryable — the
/// server sets `Retry-After`). Any other status, including 5xx from a
/// handler, is returned as-is: the request may have had effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Total-deadline budget across *all* attempts and backoffs. A retry
    /// only fires if its backoff still fits inside the remaining budget;
    /// otherwise the last response or error is surfaced immediately, so
    /// backoff can never sleep past a caller's deadline. `None` (the
    /// default) keeps the historical attempts-only behaviour.
    pub budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            budget: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based), with ±50% jitter
    /// so synchronised clients do not re-converge on the server.
    fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_delay);
        // Cheap jitter from the clock's sub-microsecond bits: this is
        // decorrelation, not cryptography.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0) as u64;
        let jitter_pct = 50 + (nanos.wrapping_mul(6364136223846793005) >> 57) % 101; // 50..=150
        exp.mul_f64(jitter_pct as f64 / 100.0).min(self.max_delay)
    }
}

/// Issue a request with [`RetryPolicy`] retries on connect errors and
/// 503 shed responses.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    policy: &RetryPolicy,
) -> io::Result<ClientResponse> {
    request_with_retry_counted(addr, method, path, body, policy).0
}

/// [`request_with_retry`] that also reports how many attempts fired —
/// callers that account per-endpoint retry load (the cluster
/// coordinator's `shard_rpc` telemetry) need the count, not just the
/// final outcome.
pub fn request_with_retry_counted(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    policy: &RetryPolicy,
) -> (io::Result<ClientResponse>, u32) {
    let (outcome, attempts) = request_with_retry_timed(addr, method, path, body, &[], policy);
    (outcome.map(|(resp, _)| resp), attempts)
}

/// The server's own `Retry-After` (whole seconds) on a shed response.
/// It is an explicit instruction, so it preempts the jittered backoff —
/// but capped by the policy's ceiling, so a misbehaving server cannot
/// park the client arbitrarily long.
fn retry_after_delay(resp: &ClientResponse, policy: &RetryPolicy) -> Option<Duration> {
    let secs: u64 = resp.header("retry-after")?.trim().parse().ok()?;
    Some(Duration::from_secs(secs).min(policy.max_delay))
}

/// How many `307` redirects one logical request may follow before the
/// client gives up. Replicas answer writes with a redirect to their
/// primary; after a failover the stale primary may in turn redirect
/// once more — anything past that is a routing loop, not a topology.
pub const MAX_REDIRECT_HOPS: u32 = 2;

/// Parse a `Location: http://{addr}{path}` redirect target. `None` for
/// anything the in-tree client cannot follow (other schemes, names
/// needing DNS).
fn parse_location(value: &str) -> Option<(SocketAddr, String)> {
    let rest = value.strip_prefix("http://")?;
    let split = rest.find('/').unwrap_or(rest.len());
    let addr = rest[..split].parse().ok()?;
    let path = if split == rest.len() {
        "/".to_string()
    } else {
        rest[split..].to_string()
    };
    Some((addr, path))
}

/// One attempt of `method path`, following up to [`MAX_REDIRECT_HOPS`]
/// `307` redirects (re-sending the body each hop, as 307 demands). A
/// redirect chain longer than the hop cap is a loop and errors out; a
/// 307 whose `Location` the client cannot parse is surfaced as-is.
fn request_following_redirects(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    headers: &[(String, String)],
) -> io::Result<(ClientResponse, RequestTiming)> {
    let mut addr = addr;
    let mut path = path.to_string();
    for _ in 0..=MAX_REDIRECT_HOPS {
        let (resp, timing) = request_timed(addr, method, &path, body, headers)?;
        if resp.status != 307 {
            return Ok((resp, timing));
        }
        let Some((next_addr, next_path)) = resp.header("location").and_then(parse_location) else {
            return Ok((resp, timing));
        };
        addr = next_addr;
        path = next_path;
    }
    Err(io::Error::other(format!(
        "redirect loop: more than {MAX_REDIRECT_HOPS} hops from {method} {path}"
    )))
}

/// [`request_with_retry_counted`] with extra request headers and the
/// [`RequestTiming`] of the attempt whose outcome is returned. The
/// cluster coordinator uses this to propagate trace headers to shards
/// and attribute connect/send/wait time per leg. Each attempt follows
/// `307` write redirects (see [`request_following_redirects`]).
pub fn request_with_retry_timed(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    headers: &[(String, String)],
    policy: &RetryPolicy,
) -> (io::Result<(ClientResponse, RequestTiming)>, u32) {
    let attempts = policy.attempts.max(1);
    let start = std::time::Instant::now();
    let mut last: io::Result<(ClientResponse, RequestTiming)> = Err(bad("retry budget exhausted"));
    for attempt in 1..=attempts {
        match request_following_redirects(addr, method, path, body, headers) {
            Ok((resp, timing)) if resp.status != 503 => return (Ok((resp, timing)), attempt),
            outcome => last = outcome, // latest 503 or error wins
        }
        if attempt == attempts {
            return (last, attempt); // attempts spent
        }
        let delay = match &last {
            Ok((resp, _)) => {
                retry_after_delay(resp, policy).unwrap_or_else(|| policy.backoff(attempt))
            }
            Err(_) => policy.backoff(attempt),
        };
        if let Some(budget) = policy.budget {
            // A retry only fires if its backoff still fits in the
            // remaining budget; the attempt itself is bounded by the
            // per-request socket timeouts, not by us.
            if start.elapsed() + delay >= budget {
                return (last, attempt);
            }
        }
        std::thread::sleep(delay);
    }
    (last, attempts)
}

/// GET convenience wrapper around [`request`].
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, &[])
}

/// POST convenience wrapper around [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, body.as_bytes())
}

/// A persistent keep-alive connection for latency benchmarks, where the
/// TCP handshake would otherwise dominate the measurement.
pub struct Session {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Session {
    /// Open a connection to the server.
    pub fn connect(addr: SocketAddr) -> io::Result<Session> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Session {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Issue one request on the persistent connection.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        write_request(&mut self.writer, method, path, body, false, &[])?;
        read_response(&mut self.reader)
    }

    /// Issue one request with extra request headers on the persistent
    /// connection.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        headers: &[(String, String)],
    ) -> io::Result<ClientResponse> {
        write_request(&mut self.writer, method, path, body, false, headers)?;
        read_response(&mut self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_response_with_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4\r\n\r\n{\"\":1}";
        let resp = read_response(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"\":");
    }

    #[test]
    fn reads_to_eof_when_connection_close_without_length() {
        let raw = b"HTTP/1.1 500 Internal Server Error\r\nConnection: close\r\n\r\noops";
        let resp = read_response(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 500);
        assert_eq!(resp.body_str(), "oops");
    }

    #[test]
    fn rejects_garbage() {
        let raw = b"not http at all\r\n\r\n";
        assert!(read_response(&mut Cursor::new(&raw[..])).is_err());
    }

    #[test]
    fn headers_are_collected_and_looked_up_case_insensitively() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n";
        let resp = read_response(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(resp.header("x-missing"), None);
    }

    #[test]
    fn custom_headers_are_written_into_the_request() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            "GET",
            "/skyline",
            b"",
            true,
            &[
                (
                    "X-Skyline-Trace".to_string(),
                    "deadbeef01234567".to_string(),
                ),
                ("X-Skyline-Span".to_string(), "cafe0123cafe0123".to_string()),
            ],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("X-Skyline-Trace: deadbeef01234567\r\n"),
            "{text}"
        );
        assert!(
            text.contains("X-Skyline-Span: cafe0123cafe0123\r\n"),
            "{text}"
        );
        let headers_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("X-Skyline-Span").unwrap() < headers_end);
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let p = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            budget: None,
        };
        for retry in 1..=10 {
            let d = p.backoff(retry);
            assert!(d <= p.max_delay, "retry {retry}: {d:?} over ceiling");
            assert!(
                d >= Duration::from_millis(5),
                "retry {retry}: {d:?} under floor"
            );
        }
    }

    #[test]
    fn retry_surfaces_connect_errors_after_budget() {
        // Port 1 on localhost refuses connections.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let policy = RetryPolicy {
            attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            budget: None,
        };
        assert!(request_with_retry(addr, "GET", "/healthz", &[], &policy).is_err());
    }

    #[test]
    fn retry_honours_a_total_deadline_budget() {
        // Port 1 refuses instantly, so elapsed time is backoff sleeps
        // alone. Without the budget this policy would sleep ~100ms+200ms
        // +400ms+800ms ≈ 1.5s (modulo jitter); the 40ms budget admits at
        // most the first backoff and must stop there.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(1),
            budget: Some(Duration::from_millis(40)),
        };
        let start = std::time::Instant::now();
        assert!(request_with_retry(addr, "GET", "/healthz", &[], &policy).is_err());
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(500),
            "budgeted retries overshot the deadline: {elapsed:?}"
        );
    }

    #[test]
    fn retry_after_header_is_honoured_before_backoff() {
        // A fixture server that sheds every request with Retry-After: 0.
        // The policy's own backoff is 300ms per retry, so finishing all
        // three attempts well under one backoff proves the header's
        // explicit delay preempted it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..3 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap() > 0 && line != "\r\n" {
                    line.clear();
                }
                stream
                    .write_all(
                        b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\n\
                          Content-Length: 0\r\n\r\n",
                    )
                    .unwrap();
            }
        });
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(300),
            max_delay: Duration::from_secs(2),
            budget: None,
        };
        let start = std::time::Instant::now();
        let resp = request_with_retry(addr, "GET", "/x", &[], &policy).unwrap();
        assert_eq!(resp.status, 503, "all attempts were shed");
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "Retry-After: 0 should preempt the 300ms jittered backoff, took {:?}",
            start.elapsed()
        );
        server.join().unwrap();
    }

    #[test]
    fn retry_after_is_parsed_and_capped_by_the_policy_ceiling() {
        let policy = RetryPolicy {
            max_delay: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let resp = |headers: Vec<(String, String)>| ClientResponse {
            status: 503,
            headers,
            body: Vec::new(),
        };
        let shed = resp(vec![("retry-after".to_string(), "1".to_string())]);
        assert_eq!(
            retry_after_delay(&shed, &policy),
            Some(Duration::from_millis(200)),
            "a 1s instruction is capped by the 200ms ceiling"
        );
        let instant = resp(vec![("retry-after".to_string(), "0".to_string())]);
        assert_eq!(retry_after_delay(&instant, &policy), Some(Duration::ZERO));
        assert_eq!(retry_after_delay(&resp(Vec::new()), &policy), None);
        let junk = resp(vec![("retry-after".to_string(), "soon".to_string())]);
        assert_eq!(retry_after_delay(&junk, &policy), None);
    }

    /// A fixture server answering `conns` connections with one canned
    /// response each; returns its address and the join handle.
    fn fixture(
        conns: usize,
        response: impl Fn(usize) -> String + Send + 'static,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..conns {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap_or(0) > 0 && line != "\r\n" {
                    line.clear();
                }
                let _ = stream.write_all(response(i).as_bytes());
            }
        });
        (addr, handle)
    }

    fn redirect_to(addr: SocketAddr, path: &str) -> String {
        format!("HTTP/1.1 307 Temporary Redirect\r\nLocation: http://{addr}{path}\r\nContent-Length: 0\r\n\r\n")
    }

    #[test]
    fn location_headers_parse_or_are_refused() {
        assert_eq!(
            parse_location("http://127.0.0.1:9999/datasets/d/points"),
            Some((
                "127.0.0.1:9999".parse().unwrap(),
                "/datasets/d/points".into()
            ))
        );
        assert_eq!(
            parse_location("http://127.0.0.1:80"),
            Some(("127.0.0.1:80".parse().unwrap(), "/".into()))
        );
        assert_eq!(parse_location("https://127.0.0.1:80/x"), None);
        assert_eq!(parse_location("http://example.com/x"), None, "needs DNS");
    }

    #[test]
    fn write_redirects_are_followed_to_the_primary() {
        // B answers the real write; A merely points at it.
        let (b_addr, b) = fixture(1, |_| {
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok".to_string()
        });
        let (a_addr, a) = fixture(1, move |_| redirect_to(b_addr, "/datasets/d/points"));
        let policy = RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        };
        let resp =
            request_with_retry(a_addr, "POST", "/datasets/d/points", b"{}", &policy).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_str(), "ok");
        a.join().unwrap();
        b.join().unwrap();
    }

    #[test]
    fn a_redirect_loop_errors_out_instead_of_spinning() {
        // A server that bounces every write back to itself, forever.
        // The hop cap must turn that into an error after exactly
        // MAX_REDIRECT_HOPS+1 requests, not an unbounded ping-pong.
        let served = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let counter = std::sync::Arc::clone(&served);
        let _server = std::thread::spawn(move || {
            for _ in 0..16 {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap_or(0) > 0 && line != "\r\n" {
                    line.clear();
                }
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let _ = stream.write_all(redirect_to(addr, "/w").as_bytes());
            }
        });
        let policy = RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        };
        let err = request_with_retry(addr, "POST", "/w", b"{}", &policy).unwrap_err();
        assert!(
            err.to_string().contains("redirect loop"),
            "unexpected error: {err}"
        );
        assert_eq!(
            served.load(std::sync::atomic::Ordering::SeqCst),
            MAX_REDIRECT_HOPS as usize + 1,
            "the loop kept spinning"
        );
    }

    #[test]
    fn zero_budget_still_makes_one_attempt() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
            budget: Some(Duration::ZERO),
        };
        let start = std::time::Instant::now();
        assert!(request_with_retry(addr, "GET", "/healthz", &[], &policy).is_err());
        assert!(start.elapsed() < Duration::from_millis(200));
    }
}

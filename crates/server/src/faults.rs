//! Fault injection for the chaos harness.
//!
//! With the `chaos` feature enabled, tests can arm faults at named
//! sites inside the server — WAL appends, snapshot writes, request
//! handlers, the query compute path — and the corresponding `check_*`
//! probe fires the fault (an I/O error, a delay, or a panic) the next
//! time execution passes the site. Without the feature every probe is
//! an inlined no-op, so production builds pay nothing.
//!
//! Sites used by the server:
//!
//! - `"wal_append"` — I/O error or delay on WAL record writes;
//! - `"snapshot"` — I/O error on snapshot compaction;
//! - `"handler"` — panic inside request routing;
//! - `"compute"` — delay inside the skyline compute path.

#[cfg(feature = "chaos")]
pub use enabled::*;

#[cfg(feature = "chaos")]
mod enabled {
    use std::collections::HashMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    /// What an armed site does when execution reaches it.
    #[derive(Debug, Clone)]
    pub enum Fault {
        /// Fail with `io::ErrorKind::Other` for the next `n` probes.
        IoError(u32),
        /// Sleep this long at every probe.
        Delay(Duration),
        /// Panic for the next `n` probes.
        Panic(u32),
    }

    fn table() -> &'static Mutex<HashMap<String, Fault>> {
        static TABLE: std::sync::OnceLock<Mutex<HashMap<String, Fault>>> =
            std::sync::OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Fault>> {
        table().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm `site` with `fault`, replacing whatever was armed before.
    pub fn inject(site: &str, fault: Fault) {
        lock().insert(site.to_string(), fault);
    }

    /// Disarm every site.
    pub fn clear() {
        lock().clear();
    }

    /// I/O probe: fails while `site` is armed with [`Fault::IoError`]
    /// (decrementing its budget), sleeps on [`Fault::Delay`].
    pub fn check_io(site: &str) -> io::Result<()> {
        let action = {
            let mut t = lock();
            match t.get_mut(site) {
                Some(Fault::IoError(n)) => {
                    *n -= 1;
                    if *n == 0 {
                        t.remove(site);
                    }
                    Some(Err(io::Error::other(format!("injected fault at {site}"))))
                }
                Some(Fault::Delay(d)) => Some(Ok(*d)),
                _ => None,
            }
        };
        match action {
            Some(Err(e)) => Err(e),
            Some(Ok(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Delay probe: sleeps while `site` is armed with [`Fault::Delay`].
    pub fn check_delay(site: &str) {
        let delay = match lock().get(site) {
            Some(Fault::Delay(d)) => Some(*d),
            _ => None,
        };
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
    }

    /// Panic probe: panics while `site` is armed with [`Fault::Panic`]
    /// (decrementing its budget).
    pub fn check_panic(site: &str) {
        let fire = {
            let mut t = lock();
            match t.get_mut(site) {
                Some(Fault::Panic(n)) => {
                    *n -= 1;
                    if *n == 0 {
                        t.remove(site);
                    }
                    true
                }
                _ => false,
            }
        };
        if fire {
            panic!("injected panic at {site}");
        }
    }
}

#[cfg(not(feature = "chaos"))]
mod disabled {
    /// I/O probe; no-op without the `chaos` feature.
    #[inline(always)]
    pub fn check_io(_site: &str) -> std::io::Result<()> {
        Ok(())
    }

    /// Delay probe; no-op without the `chaos` feature.
    #[inline(always)]
    pub fn check_delay(_site: &str) {}

    /// Panic probe; no-op without the `chaos` feature.
    #[inline(always)]
    pub fn check_panic(_site: &str) {}
}

#[cfg(not(feature = "chaos"))]
pub use disabled::*;

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn faults_fire_and_exhaust() {
        clear();
        inject("t_io", Fault::IoError(2));
        assert!(check_io("t_io").is_err());
        assert!(check_io("t_io").is_err());
        assert!(check_io("t_io").is_ok(), "budget exhausted");

        inject("t_delay", Fault::Delay(Duration::from_millis(30)));
        let t = Instant::now();
        check_delay("t_delay");
        assert!(t.elapsed() >= Duration::from_millis(25));
        clear();
        let t = Instant::now();
        check_delay("t_delay");
        assert!(t.elapsed() < Duration::from_millis(25));

        inject("t_panic", Fault::Panic(1));
        assert!(std::panic::catch_unwind(|| check_panic("t_panic")).is_err());
        check_panic("t_panic"); // exhausted: no panic
        clear();
    }
}

//! Hand-rolled HTTP/1.1 framing: just enough of RFC 9112 for a JSON API
//! behind trusted clients — request-line + header parsing, fixed-length
//! bodies, percent-decoding, and keep-alive — with hard limits on every
//! dimension an untrusted peer controls (line length, header count, body
//! size).

use std::fmt;
use std::io::{self, BufRead, Write};

/// Default cap on request body size (16 MiB).
pub const DEFAULT_MAX_BODY: usize = 16 << 20;

/// Cap on a single request or header line, bytes.
const MAX_LINE: usize = 16 << 10;

/// Cap on the number of headers per request.
const MAX_HEADERS: usize = 100;

/// Errors raised while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket failure (includes read timeouts).
    Io(io::Error),
    /// The peer sent something that is not HTTP.
    Malformed(String),
    /// The declared body exceeds the configured cap.
    TooLarge {
        /// The configured cap, bytes.
        limit: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "I/O error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Percent-decoded query parameters in source order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in source order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Read one request off `reader`. Returns `Ok(None)` on a clean EOF
    /// before the first byte (the peer closed an idle keep-alive
    /// connection).
    pub fn read_from<R: BufRead>(
        reader: &mut R,
        max_body: usize,
    ) -> Result<Option<Request>, HttpError> {
        let Some(request_line) = read_line(reader)? else {
            return Ok(None);
        };
        let mut parts = request_line.split(' ');
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )));
        };
        if parts.next().is_some() || !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )));
        }
        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        let path = percent_decode(raw_path);
        let query = raw_query.map(parse_query).unwrap_or_default();

        let mut headers = Vec::new();
        loop {
            let line = read_line(reader)?
                .ok_or_else(|| HttpError::Malformed("EOF inside headers".to_string()))?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::Malformed("too many headers".to_string()));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("bad header {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut req = Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers,
            body: Vec::new(),
        };
        if let Some(len) = req.header("content-length") {
            let len: usize = len
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
            if len > max_body {
                return Err(HttpError::TooLarge { limit: max_body });
            }
            let mut body = vec![0u8; len];
            io::Read::read_exact(reader, &mut body)?;
            req.body = body;
        }
        Ok(Some(req))
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".to_string()))
    }

    /// Whether the peer asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one CRLF- (or LF-) terminated line, without the terminator.
/// Returns `None` on EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match io::Read::read(reader, &mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("EOF inside line".to_string()));
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let s = String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 line".to_string()))?;
                    return Ok(Some(s));
                }
                if buf.len() >= MAX_LINE {
                    return Err(HttpError::Malformed("line too long".to_string()));
                }
                buf.push(byte[0]);
            }
        }
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Decode `%XX` escapes and `+` (as space), leaving invalid escapes as-is.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body text (JSON, except for the Prometheus exposition).
    pub body: String,
    /// Extra response headers (`Retry-After`, …), written verbatim.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` the body is written under.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            headers: Vec::new(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (the Prometheus exposition format).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON error response: `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Response {
        let mut w = skyline_obs::json::ObjectWriter::new();
        w.str_field("error", msg);
        Response {
            status,
            body: w.finish(),
            headers: Vec::new(),
            content_type: "application/json",
        }
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The reason phrase for a status code.
    pub fn status_text(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            307 => "Temporary Redirect",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serialise status line, headers and body to `w` as one write, so a
    /// response never straddles TCP segments a delayed ACK could stall.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut buf = Vec::with_capacity(self.body.len() + 96);
        write!(
            buf,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            Self::status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(buf, "{name}: {value}\r\n")?;
        }
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(self.body.as_bytes());
        w.write_all(&buf)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Request {
        let mut r = BufReader::new(raw.as_bytes());
        Request::read_from(&mut r, DEFAULT_MAX_BODY)
            .expect("parse")
            .expect("one request")
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /skyline?dataset=hotels&dims=0%2C2&empty HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/skyline");
        assert_eq!(req.query_param("dataset"), Some("hotels"));
        assert_eq!(req.query_param("dims"), Some("0,2"));
        assert_eq!(req.query_param("empty"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let req = parse(
            "POST /datasets HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
             Content-Length: 13\r\nConnection: close\r\n\r\n{\"name\":\"a\"}x",
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str().unwrap(), "{\"name\":\"a\"}x");
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.header("CONNECTION"), Some("close"));
        assert!(req.wants_close());
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        let a = Request::read_from(&mut r, DEFAULT_MAX_BODY)
            .unwrap()
            .unwrap();
        let b = Request::read_from(&mut r, DEFAULT_MAX_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.path, "/metrics");
        assert!(Request::read_from(&mut r, DEFAULT_MAX_BODY)
            .unwrap()
            .is_none());
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        let mut r = BufReader::new("NOT HTTP\r\n\r\n".as_bytes());
        assert!(Request::read_from(&mut r, DEFAULT_MAX_BODY).is_err());
        let mut r =
            BufReader::new("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789".as_bytes());
        assert!(matches!(
            Request::read_from(&mut r, 5),
            Err(HttpError::TooLarge { limit: 5 })
        ));
        let mut r = BufReader::new("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_bytes());
        assert!(Request::read_from(&mut r, DEFAULT_MAX_BODY).is_err());
    }

    #[test]
    fn percent_decoding_handles_escapes_and_junk() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
    }

    #[test]
    fn response_wire_format() {
        let mut buf = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        let err = Response::error(404, "no such dataset \"x\"");
        assert_eq!(err.status, 404);
        assert!(err.body.contains("no such dataset"));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut buf = Vec::new();
        Response::error(503, "shed")
            .with_header("Retry-After", "1")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        let headers_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("Retry-After").unwrap() < headers_end);
        assert_eq!(Response::status_text(504), "Gateway Timeout");
    }

    #[test]
    fn text_responses_carry_a_plain_content_type() {
        let mut buf = Vec::new();
        Response::text(200, "# TYPE x counter\n".to_string())
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("Content-Type: text/plain; charset=utf-8\r\n"),
            "{text}"
        );
        let mut buf = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("Content-Type: application/json\r\n"),
            "{text}"
        );
    }
}

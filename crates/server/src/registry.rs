//! The dataset registry: named, resident, mutable datasets.
//!
//! Each dataset is a [`StreamingSkyline`] (so inserts and deletes update
//! the skyline incrementally) plus a cached immutable *snapshot* — the
//! live rows materialised as a batch [`Dataset`] with a row-index →
//! stream-handle map. The snapshot is rebuilt under the write lock at
//! mutation time, so readers never pay the materialisation: they take the
//! read lock just long enough to clone an `Arc`, then compute against a
//! consistent version with no locks held.
//!
//! With a [`StorageConfig`] the registry is durable: every mutation is
//! logged to a per-dataset write-ahead log *before* it is acknowledged
//! (see [`crate::wal`]), and [`Registry::open`] replays snapshot + log
//! on boot, recovering every dataset to its exact pre-crash content
//! version.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use skyline_core::dataset::Dataset;
use skyline_core::delta::SkylineDelta;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;

use crate::wal::{self, DatasetWal, StorageConfig};

/// Errors raised by registry operations.
#[derive(Debug)]
pub enum RegistryError {
    /// A dataset with this name already exists.
    Exists(String),
    /// No dataset with this name.
    Unknown(String),
    /// The dataset name is empty, too long, or has unsafe characters.
    BadName(String),
    /// Rows failed validation (shape, NaN) or core rejected them.
    BadData(String),
    /// Durability failure: the write-ahead log could not be written, so
    /// the operation is not acknowledged.
    Io(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Exists(n) => write!(f, "dataset {n:?} already exists"),
            RegistryError::Unknown(n) => write!(f, "no such dataset {n:?}"),
            RegistryError::BadName(n) => {
                write!(f, "bad dataset name {n:?} (1-64 chars from [A-Za-z0-9._-])")
            }
            RegistryError::BadData(m) => write!(f, "bad data: {m}"),
            RegistryError::Io(m) => write!(f, "durability failure: {m}"),
        }
    }
}

/// An immutable view of one dataset version.
///
/// `dataset.point(i)` is the row of stream handle `handles[i]`; any batch
/// skyline over `dataset` maps back to stable public ids through
/// `handles`. `dataset` is `None` when the version is empty.
#[derive(Debug)]
pub struct Snapshot {
    /// Content version this snapshot materialises.
    pub version: u64,
    /// Row index → stream handle, ascending.
    pub handles: Vec<PointId>,
    /// The live rows as a batch dataset (`None` when empty).
    pub dataset: Option<Dataset>,
}

/// The outcome of one mutation batch: where the version moved and the
/// coalesced skyline delta covering the whole batch. The delta is what
/// the serving layer uses to patch cached results forward (see
/// [`crate::cache::ResultCache::patch_dataset`]) instead of discarding
/// them.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Content version before the batch.
    pub base_version: u64,
    /// Content version after the batch.
    pub version: u64,
    /// Skyline cardinality after the batch.
    pub skyline_len: usize,
    /// Net skyline-membership change, `base_version` → `version`.
    pub delta: SkylineDelta,
}

/// Summary row for listings and `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Dimensionality.
    pub dims: usize,
    /// Live points.
    pub points: usize,
    /// Current incremental skyline cardinality.
    pub skyline_len: usize,
    /// Content version.
    pub version: u64,
}

struct Inner {
    stream: StreamingSkyline,
    snapshot: Arc<Snapshot>,
    /// Durability log; `None` for a memory-only registry.
    wal: Option<DatasetWal>,
}

/// One named dataset: a streaming skyline plus its current snapshot.
pub struct DatasetEntry {
    name: String,
    dims: usize,
    inner: RwLock<Inner>,
}

/// Lock helpers that survive a poisoned lock: a panicking handler must
/// not take the registry down with it (the data is a skyline index, not
/// a partially applied invariant).
fn read_lock(lock: &RwLock<Inner>) -> std::sync::RwLockReadGuard<'_, Inner> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock(lock: &RwLock<Inner>) -> std::sync::RwLockWriteGuard<'_, Inner> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

fn build_snapshot(stream: &StreamingSkyline) -> Result<Arc<Snapshot>, RegistryError> {
    let (handles, rows) = stream.snapshot_rows();
    let dataset = if rows.is_empty() {
        None
    } else {
        Some(Dataset::from_rows(&rows).map_err(|e| RegistryError::BadData(e.to_string()))?)
    };
    Ok(Arc::new(Snapshot {
        version: stream.version(),
        handles,
        dataset,
    }))
}

impl DatasetEntry {
    fn new(
        name: &str,
        dims: usize,
        rows: &[Vec<f64>],
        storage: Option<&StorageConfig>,
    ) -> Result<DatasetEntry, RegistryError> {
        let mut stream =
            StreamingSkyline::new(dims).map_err(|e| RegistryError::BadData(e.to_string()))?;
        validate_rows(rows, dims)?;
        let mut metrics = Metrics::new();
        let mut records = vec![wal::create_record(dims)];
        for row in rows {
            records.push(wal::insert_record(row, stream.version() + 1));
            stream
                .insert(row, &mut metrics)
                .map_err(|e| RegistryError::BadData(e.to_string()))?;
        }
        let wal = match storage {
            Some(config) => {
                let mut wal = DatasetWal::create(config, name)
                    .map_err(|e| RegistryError::Io(e.to_string()))?;
                wal.append_batch(&records)
                    .map_err(|e| RegistryError::Io(e.to_string()))?;
                Some(wal)
            }
            None => None,
        };
        let snapshot = build_snapshot(&stream)?;
        Ok(DatasetEntry {
            name: name.to_string(),
            dims,
            inner: RwLock::new(Inner {
                stream,
                snapshot,
                wal,
            }),
        })
    }

    /// Rehydrate an entry from recovery.
    fn recovered(
        name: &str,
        stream: StreamingSkyline,
        wal: DatasetWal,
    ) -> Result<DatasetEntry, RegistryError> {
        let snapshot = build_snapshot(&stream)?;
        Ok(DatasetEntry {
            name: name.to_string(),
            dims: stream.dims(),
            inner: RwLock::new(Inner {
                stream,
                snapshot,
                wal: Some(wal),
            }),
        })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The current snapshot (lock held only for the `Arc` clone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read_lock(&self.inner).snapshot)
    }

    /// Summary counters.
    pub fn info(&self) -> DatasetInfo {
        let inner = read_lock(&self.inner);
        DatasetInfo {
            name: self.name.clone(),
            dims: self.dims,
            points: inner.stream.len(),
            skyline_len: inner.stream.skyline_len(),
            version: inner.stream.version(),
        }
    }

    /// The incrementally maintained full-space skyline with its version.
    pub fn streaming_skyline(&self) -> (u64, Vec<PointId>) {
        let inner = read_lock(&self.inner);
        (inner.stream.version(), inner.stream.skyline())
    }

    /// Current size of this dataset's write-ahead log, bytes (0 for a
    /// memory-only registry).
    pub fn wal_bytes(&self) -> u64 {
        read_lock(&self.inner)
            .wal
            .as_ref()
            .map_or(0, DatasetWal::wal_bytes)
    }

    /// Insert rows (all-or-nothing), returning their handles and the
    /// [`Mutation`] summary (post-apply version, skyline size, and the
    /// coalesced [`SkylineDelta`] covering the whole batch).
    ///
    /// Durable registries log the whole batch *before* touching memory:
    /// a WAL failure rejects the batch with nothing applied, so the
    /// in-memory state never runs ahead of the log on the insert path
    /// (replay reconstructs handles from insert order, which must match).
    pub fn insert_rows(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<(Vec<PointId>, Mutation), RegistryError> {
        validate_rows(rows, self.dims)?;
        let mut inner = write_lock(&self.inner);
        let base_version = inner.stream.version();
        if inner.wal.is_some() {
            let records: Vec<String> = rows
                .iter()
                .enumerate()
                .map(|(i, row)| wal::insert_record(row, base_version + i as u64 + 1))
                .collect();
            inner
                .wal
                .as_mut()
                .expect("checked above")
                .append_batch(&records)
                .map_err(|e| RegistryError::Io(e.to_string()))?;
        }
        let mut metrics = Metrics::new();
        let mut ids = Vec::with_capacity(rows.len());
        let mut deltas = Vec::with_capacity(rows.len());
        for row in rows {
            // Cannot fail: rows were validated above.
            let (id, delta) = inner
                .stream
                .insert_delta(row, &mut metrics)
                .map_err(|e| RegistryError::BadData(e.to_string()))?;
            ids.push(id);
            deltas.push(delta);
        }
        self.after_mutation(&mut inner)?;
        let mutation = Mutation {
            base_version,
            version: inner.stream.version(),
            skyline_len: inner.stream.skyline_len(),
            delta: SkylineDelta::coalesce(&deltas)
                .unwrap_or_else(|| SkylineDelta::empty(base_version)),
        };
        Ok((ids, mutation))
    }

    /// Remove points by handle, returning how many were live and the
    /// [`Mutation`] summary. Unknown or already-deleted handles are
    /// counted out, not errors.
    ///
    /// Removals apply to memory first (whether a handle is live is only
    /// known then) and are logged after. A WAL failure here returns an
    /// error — the removal is not acknowledged and may resurrect on
    /// recovery — but handle assignment stays consistent either way.
    pub fn remove_ids(&self, ids: &[PointId]) -> Result<(usize, Mutation), RegistryError> {
        let mut inner = write_lock(&self.inner);
        let base_version = inner.stream.version();
        let mut metrics = Metrics::new();
        let mut removed = 0;
        let mut records = Vec::new();
        let mut deltas = Vec::new();
        for &id in ids {
            if let Some(delta) = inner.stream.remove_delta(id, &mut metrics) {
                removed += 1;
                records.push(wal::remove_record(id, delta.version));
                deltas.push(delta);
            }
        }
        if removed > 0 {
            if let Some(wal) = inner.wal.as_mut() {
                wal.append_batch(&records)
                    .map_err(|e| RegistryError::Io(e.to_string()))?;
            }
            self.after_mutation(&mut inner)?;
        }
        let mutation = Mutation {
            base_version,
            version: inner.stream.version(),
            skyline_len: inner.stream.skyline_len(),
            delta: SkylineDelta::coalesce(&deltas)
                .unwrap_or_else(|| SkylineDelta::empty(base_version)),
        };
        Ok((removed, mutation))
    }

    /// Post-mutation upkeep under the write lock: rebuild the read
    /// snapshot and compact the log if it outgrew its threshold.
    fn after_mutation(&self, inner: &mut Inner) -> Result<(), RegistryError> {
        inner.snapshot = build_snapshot(&inner.stream)?;
        if let Some(wal) = inner.wal.as_mut() {
            // A failed compaction is not a durability failure: the log
            // still holds the full history, so just carry on.
            let _ = wal.maybe_compact(&inner.stream);
        }
        Ok(())
    }
}

fn validate_rows(rows: &[Vec<f64>], dims: usize) -> Result<(), RegistryError> {
    for (i, row) in rows.iter().enumerate() {
        if row.len() != dims {
            return Err(RegistryError::BadData(format!(
                "row {i} has {} values, expected {dims}",
                row.len()
            )));
        }
        if let Some(at) = row.iter().position(|v| v.is_nan()) {
            return Err(RegistryError::BadData(format!(
                "row {i}, dimension {at} is NaN"
            )));
        }
    }
    Ok(())
}

fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadName(name.to_string()))
    }
}

/// All resident datasets, by name. The outer `RwLock` guards the name
/// table only; per-dataset state has its own lock, so queries against one
/// dataset never block loads of another.
#[derive(Default)]
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<DatasetEntry>>>,
    /// Serialises creations: two racing creates of the same name must
    /// not both touch that name's WAL files.
    create_lock: std::sync::Mutex<()>,
    /// Durability settings; `None` for a memory-only registry.
    storage: Option<StorageConfig>,
    /// WAL records replayed at boot, summed over every dataset.
    recovery_replayed: u64,
    /// Per-dataset recovery results: `(name, replayed, version)`.
    recovery_log: Vec<(String, u64, u64)>,
}

impl Registry {
    /// An empty, memory-only registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A durable registry: creates the data directory if needed and
    /// recovers every dataset found there from snapshot + log.
    pub fn open(storage: StorageConfig) -> std::io::Result<Registry> {
        std::fs::create_dir_all(&storage.dir)?;
        let mut map = HashMap::new();
        let mut recovery_replayed = 0;
        let mut recovery_log = Vec::new();
        for name in wal::list_datasets(&storage.dir)? {
            let Some(recovered) = wal::recover(&storage, &name)? else {
                continue;
            };
            recovery_replayed += recovered.replayed;
            recovery_log.push((name.clone(), recovered.replayed, recovered.stream.version()));
            let entry = DatasetEntry::recovered(&name, recovered.stream, recovered.wal)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            map.insert(name, Arc::new(entry));
        }
        Ok(Registry {
            datasets: RwLock::new(map),
            create_lock: std::sync::Mutex::new(()),
            storage: Some(storage),
            recovery_replayed,
            recovery_log,
        })
    }

    /// WAL records replayed on boot, summed over every dataset.
    pub fn recovery_replayed(&self) -> u64 {
        self.recovery_replayed
    }

    /// Per-dataset recovery results from boot: `(name, replayed, version)`.
    pub fn recovery_log(&self) -> &[(String, u64, u64)] {
        &self.recovery_log
    }

    /// Total bytes across every dataset's write-ahead log.
    pub fn wal_bytes(&self) -> u64 {
        self.datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|e| e.wal_bytes())
            .sum()
    }

    /// Create a dataset from rows. `dims` must be given when `rows` is
    /// empty; otherwise it must match the rows.
    pub fn create(
        &self,
        name: &str,
        dims: usize,
        rows: &[Vec<f64>],
    ) -> Result<Arc<DatasetEntry>, RegistryError> {
        validate_name(name)?;
        // Serialise creations: a racing duplicate must not truncate the
        // winner's WAL files while it is still being registered.
        let _creating = self.create_lock.lock().unwrap_or_else(|e| e.into_inner());
        {
            let map = self.datasets.read().unwrap_or_else(|e| e.into_inner());
            if map.contains_key(name) {
                return Err(RegistryError::Exists(name.to_string()));
            }
        }
        let entry = Arc::new(DatasetEntry::new(name, dims, rows, self.storage.as_ref())?);
        let mut map = self.datasets.write().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Look a dataset up by name.
    pub fn get(&self, name: &str) -> Result<Arc<DatasetEntry>, RegistryError> {
        self.datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::Unknown(name.to_string()))
    }

    /// Summaries of every dataset, sorted by name.
    pub fn list(&self) -> Vec<DatasetInfo> {
        let mut infos: Vec<DatasetInfo> = self
            .datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|e| e.info())
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        self.datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether no datasets are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(v: &[[f64; 2]]) -> Vec<Vec<f64>> {
        v.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn create_query_and_mutate() {
        let reg = Registry::new();
        let entry = reg
            .create("demo", 2, &rows(&[[1.0, 5.0], [5.0, 1.0], [6.0, 6.0]]))
            .unwrap();
        let info = entry.info();
        assert_eq!((info.points, info.skyline_len), (3, 2));
        let snap = entry.snapshot();
        assert_eq!(snap.handles, vec![0, 1, 2]);
        assert_eq!(snap.version, 3, "one version bump per initial row");

        let (ids, m) = entry.insert_rows(&rows(&[[0.5, 0.5]])).unwrap();
        assert_eq!(ids, vec![3]);
        assert_eq!((m.base_version, m.version), (3, 4));
        assert_eq!(m.skyline_len, 1, "new point dominates everything");
        assert_eq!(m.delta.entered, vec![3]);
        assert_eq!(m.delta.left, vec![0, 1], "old skyline evicted");
        let (version, skyline) = entry.streaming_skyline();
        assert_eq!(version, 4);
        assert_eq!(skyline, vec![3]);

        let (removed, m2) = entry.remove_ids(&[3, 99]).unwrap();
        assert_eq!(removed, 1);
        assert_eq!((m2.base_version, m2.version), (4, 5));
        assert_eq!(m2.skyline_len, 2, "old skyline resurfaces");
        assert_eq!(m2.delta.entered, vec![0, 1]);
        assert_eq!(m2.delta.left, vec![3]);
        let snap2 = entry.snapshot();
        assert_eq!(snap2.handles, vec![0, 1, 2]);
        assert_eq!(snap2.version, 5);
    }

    #[test]
    fn snapshot_is_immutable_across_mutations() {
        let reg = Registry::new();
        let entry = reg.create("pin", 2, &rows(&[[1.0, 2.0]])).unwrap();
        let before = entry.snapshot();
        entry.insert_rows(&rows(&[[0.0, 0.0]])).unwrap();
        assert_eq!(before.handles, vec![0], "old snapshot unchanged");
        assert_eq!(entry.snapshot().handles, vec![0, 1]);
    }

    #[test]
    fn names_and_duplicates_are_validated() {
        let reg = Registry::new();
        assert!(matches!(
            reg.create("", 2, &[]),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(
            reg.create("no spaces", 2, &[]),
            Err(RegistryError::BadName(_))
        ));
        reg.create("ok-name_1.2", 2, &[]).unwrap();
        assert!(matches!(
            reg.create("ok-name_1.2", 2, &[]),
            Err(RegistryError::Exists(_))
        ));
        assert!(matches!(reg.get("missing"), Err(RegistryError::Unknown(_))));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn rows_are_validated_atomically() {
        let reg = Registry::new();
        let entry = reg.create("atomic", 2, &rows(&[[1.0, 1.0]])).unwrap();
        let bad = vec![vec![2.0, 2.0], vec![3.0]];
        assert!(entry.insert_rows(&bad).is_err());
        assert_eq!(entry.info().points, 1, "nothing inserted on failure");
        let nan = vec![vec![f64::NAN, 1.0]];
        assert!(entry.insert_rows(&nan).is_err());
    }

    #[test]
    fn empty_dataset_has_no_batch_snapshot() {
        let reg = Registry::new();
        let entry = reg.create("empty", 3, &[]).unwrap();
        let snap = entry.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.dataset.is_none());
        assert!(snap.handles.is_empty());
    }

    #[test]
    fn durable_registry_recovers_datasets_across_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "skyline-reg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let (want_snap, want_version) = {
            let reg = Registry::open(StorageConfig::new(dir.clone())).unwrap();
            let entry = reg
                .create("durable", 2, &rows(&[[1.0, 5.0], [5.0, 1.0]]))
                .unwrap();
            entry.insert_rows(&rows(&[[6.0, 6.0], [0.5, 4.0]])).unwrap();
            entry.remove_ids(&[2]).unwrap();
            let (version, skyline) = entry.streaming_skyline();
            (skyline, version)
        };

        let reg = Registry::open(StorageConfig::new(dir.clone())).unwrap();
        let entry = reg.get("durable").unwrap();
        let (version, skyline) = entry.streaming_skyline();
        assert_eq!(version, want_version, "recovery lands on the acked version");
        assert_eq!(skyline, want_snap, "recovered skyline matches pre-crash");
        assert!(reg.recovery_replayed() > 0, "WAL records were replayed");

        // Further mutations keep handle assignment dense and consistent.
        let (ids, _) = entry.insert_rows(&rows(&[[0.1, 0.1]])).unwrap();
        assert_eq!(ids, vec![4], "next handle continues from recovered state");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The dataset registry: named, resident, mutable datasets.
//!
//! Each dataset is a [`StreamingSkyline`] (so inserts and deletes update
//! the skyline incrementally) plus a cached immutable *snapshot* — the
//! live rows materialised as a batch [`Dataset`] with a row-index →
//! stream-handle map. The snapshot is rebuilt under the write lock at
//! mutation time, so readers never pay the materialisation: they take the
//! read lock just long enough to clone an `Arc`, then compute against a
//! consistent version with no locks held.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use skyline_core::dataset::Dataset;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;

/// Errors raised by registry operations.
#[derive(Debug)]
pub enum RegistryError {
    /// A dataset with this name already exists.
    Exists(String),
    /// No dataset with this name.
    Unknown(String),
    /// The dataset name is empty, too long, or has unsafe characters.
    BadName(String),
    /// Rows failed validation (shape, NaN) or core rejected them.
    BadData(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Exists(n) => write!(f, "dataset {n:?} already exists"),
            RegistryError::Unknown(n) => write!(f, "no such dataset {n:?}"),
            RegistryError::BadName(n) => {
                write!(f, "bad dataset name {n:?} (1-64 chars from [A-Za-z0-9._-])")
            }
            RegistryError::BadData(m) => write!(f, "bad data: {m}"),
        }
    }
}

/// An immutable view of one dataset version.
///
/// `dataset.point(i)` is the row of stream handle `handles[i]`; any batch
/// skyline over `dataset` maps back to stable public ids through
/// `handles`. `dataset` is `None` when the version is empty.
#[derive(Debug)]
pub struct Snapshot {
    /// Content version this snapshot materialises.
    pub version: u64,
    /// Row index → stream handle, ascending.
    pub handles: Vec<PointId>,
    /// The live rows as a batch dataset (`None` when empty).
    pub dataset: Option<Dataset>,
}

/// Summary row for listings and `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Dimensionality.
    pub dims: usize,
    /// Live points.
    pub points: usize,
    /// Current incremental skyline cardinality.
    pub skyline_len: usize,
    /// Content version.
    pub version: u64,
}

struct Inner {
    stream: StreamingSkyline,
    snapshot: Arc<Snapshot>,
}

/// One named dataset: a streaming skyline plus its current snapshot.
pub struct DatasetEntry {
    name: String,
    dims: usize,
    inner: RwLock<Inner>,
}

fn build_snapshot(stream: &StreamingSkyline) -> Result<Arc<Snapshot>, RegistryError> {
    let (handles, rows) = stream.snapshot_rows();
    let dataset = if rows.is_empty() {
        None
    } else {
        Some(Dataset::from_rows(&rows).map_err(|e| RegistryError::BadData(e.to_string()))?)
    };
    Ok(Arc::new(Snapshot {
        version: stream.version(),
        handles,
        dataset,
    }))
}

impl DatasetEntry {
    fn new(name: &str, dims: usize, rows: &[Vec<f64>]) -> Result<DatasetEntry, RegistryError> {
        let mut stream =
            StreamingSkyline::new(dims).map_err(|e| RegistryError::BadData(e.to_string()))?;
        validate_rows(rows, dims)?;
        let mut metrics = Metrics::new();
        for row in rows {
            stream
                .insert(row, &mut metrics)
                .map_err(|e| RegistryError::BadData(e.to_string()))?;
        }
        let snapshot = build_snapshot(&stream)?;
        Ok(DatasetEntry {
            name: name.to_string(),
            dims,
            inner: RwLock::new(Inner { stream, snapshot }),
        })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The current snapshot (lock held only for the `Arc` clone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.inner.read().expect("registry lock").snapshot)
    }

    /// Summary counters.
    pub fn info(&self) -> DatasetInfo {
        let inner = self.inner.read().expect("registry lock");
        DatasetInfo {
            name: self.name.clone(),
            dims: self.dims,
            points: inner.stream.len(),
            skyline_len: inner.stream.skyline_len(),
            version: inner.stream.version(),
        }
    }

    /// The incrementally maintained full-space skyline with its version.
    pub fn streaming_skyline(&self) -> (u64, Vec<PointId>) {
        let inner = self.inner.read().expect("registry lock");
        (inner.stream.version(), inner.stream.skyline())
    }

    /// Insert rows (all-or-nothing), returning their handles and the new
    /// `(version, skyline_len)`.
    pub fn insert_rows(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<(Vec<PointId>, u64, usize), RegistryError> {
        validate_rows(rows, self.dims)?;
        let mut inner = self.inner.write().expect("registry lock");
        let mut metrics = Metrics::new();
        let mut ids = Vec::with_capacity(rows.len());
        for row in rows {
            // Cannot fail: rows were validated above.
            let id = inner
                .stream
                .insert(row, &mut metrics)
                .map_err(|e| RegistryError::BadData(e.to_string()))?;
            ids.push(id);
        }
        inner.snapshot = build_snapshot(&inner.stream)?;
        Ok((ids, inner.stream.version(), inner.stream.skyline_len()))
    }

    /// Remove points by handle, returning how many were live and the new
    /// `(version, skyline_len)`. Unknown or already-deleted handles are
    /// counted out, not errors.
    pub fn remove_ids(&self, ids: &[PointId]) -> Result<(usize, u64, usize), RegistryError> {
        let mut inner = self.inner.write().expect("registry lock");
        let mut metrics = Metrics::new();
        let mut removed = 0;
        for &id in ids {
            if inner.stream.remove(id, &mut metrics) {
                removed += 1;
            }
        }
        if removed > 0 {
            inner.snapshot = build_snapshot(&inner.stream)?;
        }
        Ok((removed, inner.stream.version(), inner.stream.skyline_len()))
    }
}

fn validate_rows(rows: &[Vec<f64>], dims: usize) -> Result<(), RegistryError> {
    for (i, row) in rows.iter().enumerate() {
        if row.len() != dims {
            return Err(RegistryError::BadData(format!(
                "row {i} has {} values, expected {dims}",
                row.len()
            )));
        }
        if let Some(at) = row.iter().position(|v| v.is_nan()) {
            return Err(RegistryError::BadData(format!(
                "row {i}, dimension {at} is NaN"
            )));
        }
    }
    Ok(())
}

fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadName(name.to_string()))
    }
}

/// All resident datasets, by name. The outer `RwLock` guards the name
/// table only; per-dataset state has its own lock, so queries against one
/// dataset never block loads of another.
#[derive(Default)]
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<DatasetEntry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Create a dataset from rows. `dims` must be given when `rows` is
    /// empty; otherwise it must match the rows.
    pub fn create(
        &self,
        name: &str,
        dims: usize,
        rows: &[Vec<f64>],
    ) -> Result<Arc<DatasetEntry>, RegistryError> {
        validate_name(name)?;
        let entry = Arc::new(DatasetEntry::new(name, dims, rows)?);
        let mut map = self.datasets.write().expect("registry lock");
        if map.contains_key(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Look a dataset up by name.
    pub fn get(&self, name: &str) -> Result<Arc<DatasetEntry>, RegistryError> {
        self.datasets
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::Unknown(name.to_string()))
    }

    /// Summaries of every dataset, sorted by name.
    pub fn list(&self) -> Vec<DatasetInfo> {
        let mut infos: Vec<DatasetInfo> = self
            .datasets
            .read()
            .expect("registry lock")
            .values()
            .map(|e| e.info())
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        self.datasets.read().expect("registry lock").len()
    }

    /// Whether no datasets are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(v: &[[f64; 2]]) -> Vec<Vec<f64>> {
        v.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn create_query_and_mutate() {
        let reg = Registry::new();
        let entry = reg
            .create("demo", 2, &rows(&[[1.0, 5.0], [5.0, 1.0], [6.0, 6.0]]))
            .unwrap();
        let info = entry.info();
        assert_eq!((info.points, info.skyline_len), (3, 2));
        let snap = entry.snapshot();
        assert_eq!(snap.handles, vec![0, 1, 2]);
        assert_eq!(snap.version, 3, "one version bump per initial row");

        let (ids, v, sky) = entry.insert_rows(&rows(&[[0.5, 0.5]])).unwrap();
        assert_eq!(ids, vec![3]);
        assert_eq!(v, 4);
        assert_eq!(sky, 1, "new point dominates everything");
        let (version, skyline) = entry.streaming_skyline();
        assert_eq!(version, 4);
        assert_eq!(skyline, vec![3]);

        let (removed, v2, sky2) = entry.remove_ids(&[3, 99]).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(v2, 5);
        assert_eq!(sky2, 2, "old skyline resurfaces");
        let snap2 = entry.snapshot();
        assert_eq!(snap2.handles, vec![0, 1, 2]);
        assert_eq!(snap2.version, 5);
    }

    #[test]
    fn snapshot_is_immutable_across_mutations() {
        let reg = Registry::new();
        let entry = reg.create("pin", 2, &rows(&[[1.0, 2.0]])).unwrap();
        let before = entry.snapshot();
        entry.insert_rows(&rows(&[[0.0, 0.0]])).unwrap();
        assert_eq!(before.handles, vec![0], "old snapshot unchanged");
        assert_eq!(entry.snapshot().handles, vec![0, 1]);
    }

    #[test]
    fn names_and_duplicates_are_validated() {
        let reg = Registry::new();
        assert!(matches!(
            reg.create("", 2, &[]),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(
            reg.create("no spaces", 2, &[]),
            Err(RegistryError::BadName(_))
        ));
        reg.create("ok-name_1.2", 2, &[]).unwrap();
        assert!(matches!(
            reg.create("ok-name_1.2", 2, &[]),
            Err(RegistryError::Exists(_))
        ));
        assert!(matches!(reg.get("missing"), Err(RegistryError::Unknown(_))));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn rows_are_validated_atomically() {
        let reg = Registry::new();
        let entry = reg.create("atomic", 2, &rows(&[[1.0, 1.0]])).unwrap();
        let bad = vec![vec![2.0, 2.0], vec![3.0]];
        assert!(entry.insert_rows(&bad).is_err());
        assert_eq!(entry.info().points, 1, "nothing inserted on failure");
        let nan = vec![vec![f64::NAN, 1.0]];
        assert!(entry.insert_rows(&nan).is_err());
    }

    #[test]
    fn empty_dataset_has_no_batch_snapshot() {
        let reg = Registry::new();
        let entry = reg.create("empty", 3, &[]).unwrap();
        let snap = entry.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.dataset.is_none());
        assert!(snap.handles.is_empty());
    }
}

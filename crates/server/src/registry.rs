//! The dataset registry: named, resident, mutable datasets.
//!
//! Each dataset is a [`StreamingSkyline`] (so inserts and deletes update
//! the skyline incrementally) plus a cached immutable *snapshot* — the
//! live rows materialised as a batch [`Dataset`] with a row-index →
//! stream-handle map. The snapshot is rebuilt under the write lock at
//! mutation time, so readers never pay the materialisation: they take the
//! read lock just long enough to clone an `Arc`, then compute against a
//! consistent version with no locks held.
//!
//! With a [`StorageConfig`] the registry is durable: every mutation is
//! logged to a per-dataset write-ahead log *before* it is acknowledged
//! (see [`crate::wal`]), and [`Registry::open`] replays snapshot + log
//! on boot, recovering every dataset to its exact pre-crash content
//! version.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use skyline_core::changelog::{ChangeLog, ChangeOp, ChangeRecord, FeedBatch, FeedGone};
use skyline_core::dataset::Dataset;
use skyline_core::delta::SkylineDelta;
use skyline_core::metrics::Metrics;
use skyline_core::point::PointId;
use skyline_core::streaming::StreamingSkyline;

use crate::wal::{self, DatasetWal, StorageConfig};

/// Default number of change records retained per dataset for the feed.
pub const DEFAULT_FEED_RETAIN: usize = 4096;

/// Errors raised by registry operations.
#[derive(Debug)]
pub enum RegistryError {
    /// A dataset with this name already exists.
    Exists(String),
    /// No dataset with this name.
    Unknown(String),
    /// The dataset name is empty, too long, or has unsafe characters.
    BadName(String),
    /// Rows failed validation (shape, NaN) or core rejected them.
    BadData(String),
    /// Durability failure: the write-ahead log could not be written, so
    /// the operation is not acknowledged.
    Io(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Exists(n) => write!(f, "dataset {n:?} already exists"),
            RegistryError::Unknown(n) => write!(f, "no such dataset {n:?}"),
            RegistryError::BadName(n) => {
                write!(f, "bad dataset name {n:?} (1-64 chars from [A-Za-z0-9._-])")
            }
            RegistryError::BadData(m) => write!(f, "bad data: {m}"),
            RegistryError::Io(m) => write!(f, "durability failure: {m}"),
        }
    }
}

/// An immutable view of one dataset version.
///
/// `dataset.point(i)` is the row of stream handle `handles[i]`; any batch
/// skyline over `dataset` maps back to stable public ids through
/// `handles`. `dataset` is `None` when the version is empty.
#[derive(Debug)]
pub struct Snapshot {
    /// Content version this snapshot materialises.
    pub version: u64,
    /// Row index → stream handle, ascending.
    pub handles: Vec<PointId>,
    /// The live rows as a batch dataset (`None` when empty).
    pub dataset: Option<Dataset>,
}

/// The outcome of one mutation batch: where the version moved and the
/// coalesced skyline delta covering the whole batch. The delta is what
/// the serving layer uses to patch cached results forward (see
/// [`crate::cache::ResultCache::patch_dataset`]) instead of discarding
/// them.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Content version before the batch.
    pub base_version: u64,
    /// Content version after the batch.
    pub version: u64,
    /// Skyline cardinality after the batch.
    pub skyline_len: usize,
    /// Net skyline-membership change, `base_version` → `version`.
    pub delta: SkylineDelta,
}

/// Summary row for listings and `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Dimensionality.
    pub dims: usize,
    /// Live points.
    pub points: usize,
    /// Current incremental skyline cardinality.
    pub skyline_len: usize,
    /// Content version.
    pub version: u64,
}

/// The outcome of feeding one change record into a follower dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaApply {
    /// The record advanced the dataset to its version.
    Applied,
    /// The record's version was already applied; at-least-once delivery
    /// makes duplicates normal, and version arithmetic makes them safe.
    Duplicate,
    /// The record cannot be applied safely (version gap, wrong-base
    /// delta refusal, or a delta mismatch after applying the op). The
    /// follower must discard this dataset and resync from a snapshot —
    /// fail closed, never serve a wrong answer.
    Diverged(String),
}

struct Inner {
    stream: StreamingSkyline,
    snapshot: Arc<Snapshot>,
    /// Durability log; `None` for a memory-only registry.
    wal: Option<DatasetWal>,
    /// The bounded per-version change feed (see [`ChangeLog`]).
    changes: ChangeLog,
}

/// One named dataset: a streaming skyline plus its current snapshot.
pub struct DatasetEntry {
    name: String,
    dims: usize,
    inner: RwLock<Inner>,
    /// Long-poll support: the latest content version mirrored outside
    /// the dataset lock, with a condvar notified on every mutation so
    /// feed subscribers on an idle dataset block instead of spinning.
    feed_signal: (Mutex<u64>, Condvar),
}

/// Lock helpers that survive a poisoned lock: a panicking handler must
/// not take the registry down with it (the data is a skyline index, not
/// a partially applied invariant).
fn read_lock(lock: &RwLock<Inner>) -> std::sync::RwLockReadGuard<'_, Inner> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock(lock: &RwLock<Inner>) -> std::sync::RwLockWriteGuard<'_, Inner> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

fn build_snapshot(stream: &StreamingSkyline) -> Result<Arc<Snapshot>, RegistryError> {
    let (handles, rows) = stream.snapshot_rows();
    let dataset = if rows.is_empty() {
        None
    } else {
        Some(Dataset::from_rows(&rows).map_err(|e| RegistryError::BadData(e.to_string()))?)
    };
    Ok(Arc::new(Snapshot {
        version: stream.version(),
        handles,
        dataset,
    }))
}

impl DatasetEntry {
    fn new(
        name: &str,
        dims: usize,
        rows: &[Vec<f64>],
        storage: Option<&StorageConfig>,
        feed_retain: usize,
    ) -> Result<DatasetEntry, RegistryError> {
        let mut stream =
            StreamingSkyline::new(dims).map_err(|e| RegistryError::BadData(e.to_string()))?;
        validate_rows(rows, dims)?;
        let mut metrics = Metrics::new();
        let mut changes = ChangeLog::new(feed_retain);
        let mut records = vec![wal::create_record(dims)];
        for row in rows {
            records.push(wal::insert_record(row, stream.version() + 1));
            let (_, delta) = stream
                .insert_delta(row, &mut metrics)
                .map_err(|e| RegistryError::BadData(e.to_string()))?;
            changes.append(ChangeRecord {
                op: ChangeOp::Insert { row: row.clone() },
                delta,
            });
        }
        let wal = match storage {
            Some(config) => {
                let mut wal = DatasetWal::create(config, name)
                    .map_err(|e| RegistryError::Io(e.to_string()))?;
                wal.append_batch(&records)
                    .map_err(|e| RegistryError::Io(e.to_string()))?;
                Some(wal)
            }
            None => None,
        };
        let snapshot = build_snapshot(&stream)?;
        let version = stream.version();
        Ok(DatasetEntry {
            name: name.to_string(),
            dims,
            inner: RwLock::new(Inner {
                stream,
                snapshot,
                wal,
                changes,
            }),
            feed_signal: (Mutex::new(version), Condvar::new()),
        })
    }

    /// Rehydrate an entry from recovery. The change feed resumes with
    /// the records the WAL could still replay: history absorbed into
    /// the compaction snapshot is below the retention horizon and stale
    /// cursors get an explicit [`FeedGone`] instead of a silent gap.
    fn recovered(
        name: &str,
        stream: StreamingSkyline,
        wal: DatasetWal,
        records: Vec<ChangeRecord>,
        feed_retain: usize,
    ) -> Result<DatasetEntry, RegistryError> {
        let snapshot = build_snapshot(&stream)?;
        let version = stream.version();
        let changes = ChangeLog::resume(version, records, feed_retain);
        Ok(DatasetEntry {
            name: name.to_string(),
            dims: stream.dims(),
            inner: RwLock::new(Inner {
                stream,
                snapshot,
                wal: Some(wal),
                changes,
            }),
            feed_signal: (Mutex::new(version), Condvar::new()),
        })
    }

    /// Build a follower-side entry from a primary snapshot (memory-only:
    /// replicas re-sync from the primary, they do not keep their own
    /// WAL). The feed starts empty at the snapshot version.
    fn replica(
        name: &str,
        stream: StreamingSkyline,
        feed_retain: usize,
    ) -> Result<DatasetEntry, RegistryError> {
        let snapshot = build_snapshot(&stream)?;
        let version = stream.version();
        let changes = ChangeLog::resume(version, Vec::new(), feed_retain);
        Ok(DatasetEntry {
            name: name.to_string(),
            dims: stream.dims(),
            inner: RwLock::new(Inner {
                stream,
                snapshot,
                wal: None,
                changes,
            }),
            feed_signal: (Mutex::new(version), Condvar::new()),
        })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The current snapshot (lock held only for the `Arc` clone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read_lock(&self.inner).snapshot)
    }

    /// Summary counters.
    pub fn info(&self) -> DatasetInfo {
        let inner = read_lock(&self.inner);
        DatasetInfo {
            name: self.name.clone(),
            dims: self.dims,
            points: inner.stream.len(),
            skyline_len: inner.stream.skyline_len(),
            version: inner.stream.version(),
        }
    }

    /// The incrementally maintained full-space skyline with its version.
    pub fn streaming_skyline(&self) -> (u64, Vec<PointId>) {
        let inner = read_lock(&self.inner);
        (inner.stream.version(), inner.stream.skyline())
    }

    /// Current size of this dataset's write-ahead log, bytes (0 for a
    /// memory-only registry).
    pub fn wal_bytes(&self) -> u64 {
        read_lock(&self.inner)
            .wal
            .as_ref()
            .map_or(0, DatasetWal::wal_bytes)
    }

    /// Insert rows (all-or-nothing), returning their handles and the
    /// [`Mutation`] summary (post-apply version, skyline size, and the
    /// coalesced [`SkylineDelta`] covering the whole batch).
    ///
    /// Durable registries log the whole batch *before* touching memory:
    /// a WAL failure rejects the batch with nothing applied, so the
    /// in-memory state never runs ahead of the log on the insert path
    /// (replay reconstructs handles from insert order, which must match).
    pub fn insert_rows(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<(Vec<PointId>, Mutation), RegistryError> {
        validate_rows(rows, self.dims)?;
        let mut inner = write_lock(&self.inner);
        let base_version = inner.stream.version();
        if inner.wal.is_some() {
            let records: Vec<String> = rows
                .iter()
                .enumerate()
                .map(|(i, row)| wal::insert_record(row, base_version + i as u64 + 1))
                .collect();
            inner
                .wal
                .as_mut()
                .expect("checked above")
                .append_batch(&records)
                .map_err(|e| RegistryError::Io(e.to_string()))?;
        }
        let mut metrics = Metrics::new();
        let mut ids = Vec::with_capacity(rows.len());
        let mut deltas = Vec::with_capacity(rows.len());
        for row in rows {
            // Cannot fail: rows were validated above.
            let (id, delta) = inner
                .stream
                .insert_delta(row, &mut metrics)
                .map_err(|e| RegistryError::BadData(e.to_string()))?;
            ids.push(id);
            inner.changes.append(ChangeRecord {
                op: ChangeOp::Insert { row: row.clone() },
                delta: delta.clone(),
            });
            deltas.push(delta);
        }
        self.after_mutation(&mut inner)?;
        let mutation = Mutation {
            base_version,
            version: inner.stream.version(),
            skyline_len: inner.stream.skyline_len(),
            delta: SkylineDelta::coalesce(&deltas)
                .unwrap_or_else(|| SkylineDelta::empty(base_version)),
        };
        Ok((ids, mutation))
    }

    /// Remove points by handle, returning how many were live and the
    /// [`Mutation`] summary. Unknown or already-deleted handles are
    /// counted out, not errors.
    ///
    /// Removals apply to memory first (whether a handle is live is only
    /// known then) and are logged after. A WAL failure here returns an
    /// error — the removal is not acknowledged and may resurrect on
    /// recovery — but handle assignment stays consistent either way.
    pub fn remove_ids(&self, ids: &[PointId]) -> Result<(usize, Mutation), RegistryError> {
        let mut inner = write_lock(&self.inner);
        let base_version = inner.stream.version();
        let mut metrics = Metrics::new();
        let mut removed = 0;
        let mut records = Vec::new();
        let mut deltas = Vec::new();
        for &id in ids {
            if let Some(delta) = inner.stream.remove_delta(id, &mut metrics) {
                removed += 1;
                records.push(wal::remove_record(id, delta.version));
                inner.changes.append(ChangeRecord {
                    op: ChangeOp::Remove { id },
                    delta: delta.clone(),
                });
                deltas.push(delta);
            }
        }
        if removed > 0 {
            if let Some(wal) = inner.wal.as_mut() {
                wal.append_batch(&records)
                    .map_err(|e| RegistryError::Io(e.to_string()))?;
            }
            self.after_mutation(&mut inner)?;
        }
        let mutation = Mutation {
            base_version,
            version: inner.stream.version(),
            skyline_len: inner.stream.skyline_len(),
            delta: SkylineDelta::coalesce(&deltas)
                .unwrap_or_else(|| SkylineDelta::empty(base_version)),
        };
        Ok((removed, mutation))
    }

    /// Post-mutation upkeep under the write lock: rebuild the read
    /// snapshot, compact the log if it outgrew its threshold, and wake
    /// every long-poll feed subscriber.
    fn after_mutation(&self, inner: &mut Inner) -> Result<(), RegistryError> {
        inner.snapshot = build_snapshot(&inner.stream)?;
        if let Some(wal) = inner.wal.as_mut() {
            // A failed compaction is not a durability failure: the log
            // still holds the full history, so just carry on.
            let _ = wal.maybe_compact(&inner.stream);
        }
        let (lock, cvar) = &self.feed_signal;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = inner.stream.version();
        cvar.notify_all();
        Ok(())
    }

    /// Serve a change-feed cursor read: up to `limit` records strictly
    /// after `since`, or [`FeedGone`] when the cursor predates the
    /// retention horizon and the consumer must resync.
    pub fn changes_since(&self, since: u64, limit: usize) -> Result<FeedBatch, FeedGone> {
        read_lock(&self.inner).changes.since(since, limit)
    }

    /// Block until the content version exceeds `since` or `timeout`
    /// elapses, returning the last version observed. Long-poll
    /// subscribers park here so an idle dataset costs nothing.
    pub fn wait_for_version(&self, since: u64, timeout: Duration) -> u64 {
        let (lock, cvar) = &self.feed_signal;
        let deadline = Instant::now() + timeout;
        let mut version = lock.lock().unwrap_or_else(|e| e.into_inner());
        while *version <= since {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            version = cvar
                .wait_timeout(version, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        *version
    }

    /// The dataset's full state as a snapshot document (the same wire
    /// format `.snap` files use) — what a follower resyncs from.
    pub fn snapshot_doc(&self) -> String {
        wal::snapshot_doc(&read_lock(&self.inner).stream)
    }

    /// Apply one replicated change record on a follower.
    ///
    /// Duplicates (version at or below ours) are skipped by arithmetic;
    /// the next dense version is applied through the op *and* checked
    /// against the shipped [`SkylineDelta`] — first by asking the
    /// wrong-base-refusing [`SkylineDelta::apply`] whether it even fits
    /// our current skyline, then by comparing the locally produced delta
    /// to the shipped one. Any disagreement reports
    /// [`ReplicaApply::Diverged`] and the caller resyncs.
    pub fn apply_replicated(&self, record: &ChangeRecord) -> Result<ReplicaApply, RegistryError> {
        let mut inner = write_lock(&self.inner);
        let current = inner.stream.version();
        let v = record.version();
        if v <= current {
            return Ok(ReplicaApply::Duplicate);
        }
        if v != current + 1 {
            return Ok(ReplicaApply::Diverged(format!(
                "version gap: follower at {current}, record is {v}"
            )));
        }
        let mut sky = inner.stream.skyline();
        if !record.delta.apply(&mut sky) {
            return Ok(ReplicaApply::Diverged(format!(
                "delta for version {v} refused our base skyline"
            )));
        }
        let mut metrics = Metrics::new();
        let local = match &record.op {
            ChangeOp::Insert { row } => {
                if row.len() != self.dims {
                    return Ok(ReplicaApply::Diverged(format!(
                        "insert at version {v} has {} dims, dataset has {}",
                        row.len(),
                        self.dims
                    )));
                }
                match inner.stream.insert_delta(row, &mut metrics) {
                    Ok((_, delta)) => Some(delta),
                    Err(e) => {
                        return Ok(ReplicaApply::Diverged(format!(
                            "insert at version {v} refused: {e}"
                        )))
                    }
                }
            }
            ChangeOp::Remove { id } => inner.stream.remove_delta(*id, &mut metrics),
        };
        match local {
            Some(delta) if delta == record.delta => {}
            Some(delta) => {
                return Ok(ReplicaApply::Diverged(format!(
                    "delta mismatch at version {v}: local {delta:?} vs shipped {:?}",
                    record.delta
                )));
            }
            None => {
                return Ok(ReplicaApply::Diverged(format!(
                    "remove at version {v} was a no-op here"
                )));
            }
        }
        inner.changes.append(record.clone());
        self.after_mutation(&mut inner)?;
        Ok(ReplicaApply::Applied)
    }

    /// Stamp an `epoch` record into this dataset's log (no-op for a
    /// memory-only entry).
    fn log_epoch(&self, epoch: u64) -> Result<(), RegistryError> {
        let mut inner = write_lock(&self.inner);
        if let Some(wal) = inner.wal.as_mut() {
            wal.append_batch(&[wal::epoch_record(epoch)])
                .map_err(|e| RegistryError::Io(e.to_string()))?;
        }
        Ok(())
    }
}

fn validate_rows(rows: &[Vec<f64>], dims: usize) -> Result<(), RegistryError> {
    for (i, row) in rows.iter().enumerate() {
        if row.len() != dims {
            return Err(RegistryError::BadData(format!(
                "row {i} has {} values, expected {dims}",
                row.len()
            )));
        }
        if let Some(at) = row.iter().position(|v| v.is_nan()) {
            return Err(RegistryError::BadData(format!(
                "row {i}, dimension {at} is NaN"
            )));
        }
    }
    Ok(())
}

fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadName(name.to_string()))
    }
}

/// All resident datasets, by name. The outer `RwLock` guards the name
/// table only; per-dataset state has its own lock, so queries against one
/// dataset never block loads of another.
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<DatasetEntry>>>,
    /// Serialises creations: two racing creates of the same name must
    /// not both touch that name's WAL files.
    create_lock: std::sync::Mutex<()>,
    /// Durability settings; `None` for a memory-only registry.
    storage: Option<StorageConfig>,
    /// WAL records replayed at boot, summed over every dataset.
    recovery_replayed: u64,
    /// Per-dataset recovery results: `(name, replayed, version)`.
    recovery_log: Vec<(String, u64, u64)>,
    /// Change records retained per dataset for the feed.
    feed_retain: usize,
    /// Highest fencing epoch found at boot (node epoch file plus any
    /// epoch records still in the logs); 0 for a fresh node.
    recovered_epoch: u64,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            datasets: RwLock::new(HashMap::new()),
            create_lock: std::sync::Mutex::new(()),
            storage: None,
            recovery_replayed: 0,
            recovery_log: Vec::new(),
            feed_retain: DEFAULT_FEED_RETAIN,
            recovered_epoch: 0,
        }
    }
}

impl Registry {
    /// An empty, memory-only registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// An empty, memory-only registry with an explicit change-feed
    /// retention cap (records per dataset).
    pub fn with_feed_retain(feed_retain: usize) -> Registry {
        Registry {
            feed_retain: feed_retain.max(1),
            ..Registry::default()
        }
    }

    /// A durable registry: creates the data directory if needed and
    /// recovers every dataset found there from snapshot + log.
    pub fn open(storage: StorageConfig) -> std::io::Result<Registry> {
        Registry::open_with(storage, DEFAULT_FEED_RETAIN)
    }

    /// [`Registry::open`] with an explicit change-feed retention cap.
    pub fn open_with(storage: StorageConfig, feed_retain: usize) -> std::io::Result<Registry> {
        let feed_retain = feed_retain.max(1);
        std::fs::create_dir_all(&storage.dir)?;
        let mut map = HashMap::new();
        let mut recovery_replayed = 0;
        let mut recovery_log = Vec::new();
        let mut recovered_epoch = wal::read_node_epoch(&storage.dir);
        for name in wal::list_datasets(&storage.dir)? {
            let Some(recovered) = wal::recover(&storage, &name)? else {
                continue;
            };
            recovered_epoch = recovered_epoch.max(recovered.epoch);
            recovery_replayed += recovered.replayed;
            recovery_log.push((name.clone(), recovered.replayed, recovered.stream.version()));
            let entry = DatasetEntry::recovered(
                &name,
                recovered.stream,
                recovered.wal,
                recovered.records,
                feed_retain,
            )
            .map_err(|e| std::io::Error::other(e.to_string()))?;
            map.insert(name, Arc::new(entry));
        }
        Ok(Registry {
            datasets: RwLock::new(map),
            create_lock: std::sync::Mutex::new(()),
            storage: Some(storage),
            recovery_replayed,
            recovery_log,
            feed_retain,
            recovered_epoch,
        })
    }

    /// Highest fencing epoch persisted for this node at boot: the node
    /// epoch file, widened by any epoch records compaction had not yet
    /// absorbed. 0 for memory-only or never-promoted nodes.
    pub fn recovered_epoch(&self) -> u64 {
        self.recovered_epoch
    }

    /// Persist a fencing epoch: write the node epoch file and stamp an
    /// `epoch` record into every dataset's log so a restart resumes
    /// under this epoch. A no-op for memory-only registries (the epoch
    /// then lives only in memory, which is all a replica has anyway).
    pub fn persist_epoch(&self, epoch: u64) -> Result<(), RegistryError> {
        let Some(storage) = &self.storage else {
            return Ok(());
        };
        wal::write_node_epoch(&storage.dir, epoch).map_err(|e| RegistryError::Io(e.to_string()))?;
        let entries: Vec<Arc<DatasetEntry>> = self
            .datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        for entry in entries {
            entry.log_epoch(epoch)?;
        }
        Ok(())
    }

    /// WAL records replayed on boot, summed over every dataset.
    pub fn recovery_replayed(&self) -> u64 {
        self.recovery_replayed
    }

    /// Per-dataset recovery results from boot: `(name, replayed, version)`.
    pub fn recovery_log(&self) -> &[(String, u64, u64)] {
        &self.recovery_log
    }

    /// Total bytes across every dataset's write-ahead log.
    pub fn wal_bytes(&self) -> u64 {
        self.datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|e| e.wal_bytes())
            .sum()
    }

    /// Create a dataset from rows. `dims` must be given when `rows` is
    /// empty; otherwise it must match the rows.
    pub fn create(
        &self,
        name: &str,
        dims: usize,
        rows: &[Vec<f64>],
    ) -> Result<Arc<DatasetEntry>, RegistryError> {
        validate_name(name)?;
        // Serialise creations: a racing duplicate must not truncate the
        // winner's WAL files while it is still being registered.
        let _creating = self.create_lock.lock().unwrap_or_else(|e| e.into_inner());
        {
            let map = self.datasets.read().unwrap_or_else(|e| e.into_inner());
            if map.contains_key(name) {
                return Err(RegistryError::Exists(name.to_string()));
            }
        }
        let entry = Arc::new(DatasetEntry::new(
            name,
            dims,
            rows,
            self.storage.as_ref(),
            self.feed_retain,
        )?);
        let mut map = self.datasets.write().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Install (or replace) a follower-side dataset rebuilt from a
    /// primary snapshot. Replacing is the resync path: the stale entry
    /// and its feed are dropped wholesale.
    pub fn install_replica(
        &self,
        name: &str,
        stream: StreamingSkyline,
    ) -> Result<Arc<DatasetEntry>, RegistryError> {
        validate_name(name)?;
        let _creating = self.create_lock.lock().unwrap_or_else(|e| e.into_inner());
        let entry = Arc::new(DatasetEntry::replica(name, stream, self.feed_retain)?);
        let mut map = self.datasets.write().unwrap_or_else(|e| e.into_inner());
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Look a dataset up by name.
    pub fn get(&self, name: &str) -> Result<Arc<DatasetEntry>, RegistryError> {
        self.datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::Unknown(name.to_string()))
    }

    /// Summaries of every dataset, sorted by name.
    pub fn list(&self) -> Vec<DatasetInfo> {
        let mut infos: Vec<DatasetInfo> = self
            .datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|e| e.info())
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        self.datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether no datasets are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(v: &[[f64; 2]]) -> Vec<Vec<f64>> {
        v.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn create_query_and_mutate() {
        let reg = Registry::new();
        let entry = reg
            .create("demo", 2, &rows(&[[1.0, 5.0], [5.0, 1.0], [6.0, 6.0]]))
            .unwrap();
        let info = entry.info();
        assert_eq!((info.points, info.skyline_len), (3, 2));
        let snap = entry.snapshot();
        assert_eq!(snap.handles, vec![0, 1, 2]);
        assert_eq!(snap.version, 3, "one version bump per initial row");

        let (ids, m) = entry.insert_rows(&rows(&[[0.5, 0.5]])).unwrap();
        assert_eq!(ids, vec![3]);
        assert_eq!((m.base_version, m.version), (3, 4));
        assert_eq!(m.skyline_len, 1, "new point dominates everything");
        assert_eq!(m.delta.entered, vec![3]);
        assert_eq!(m.delta.left, vec![0, 1], "old skyline evicted");
        let (version, skyline) = entry.streaming_skyline();
        assert_eq!(version, 4);
        assert_eq!(skyline, vec![3]);

        let (removed, m2) = entry.remove_ids(&[3, 99]).unwrap();
        assert_eq!(removed, 1);
        assert_eq!((m2.base_version, m2.version), (4, 5));
        assert_eq!(m2.skyline_len, 2, "old skyline resurfaces");
        assert_eq!(m2.delta.entered, vec![0, 1]);
        assert_eq!(m2.delta.left, vec![3]);
        let snap2 = entry.snapshot();
        assert_eq!(snap2.handles, vec![0, 1, 2]);
        assert_eq!(snap2.version, 5);
    }

    #[test]
    fn snapshot_is_immutable_across_mutations() {
        let reg = Registry::new();
        let entry = reg.create("pin", 2, &rows(&[[1.0, 2.0]])).unwrap();
        let before = entry.snapshot();
        entry.insert_rows(&rows(&[[0.0, 0.0]])).unwrap();
        assert_eq!(before.handles, vec![0], "old snapshot unchanged");
        assert_eq!(entry.snapshot().handles, vec![0, 1]);
    }

    #[test]
    fn names_and_duplicates_are_validated() {
        let reg = Registry::new();
        assert!(matches!(
            reg.create("", 2, &[]),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(
            reg.create("no spaces", 2, &[]),
            Err(RegistryError::BadName(_))
        ));
        reg.create("ok-name_1.2", 2, &[]).unwrap();
        assert!(matches!(
            reg.create("ok-name_1.2", 2, &[]),
            Err(RegistryError::Exists(_))
        ));
        assert!(matches!(reg.get("missing"), Err(RegistryError::Unknown(_))));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn rows_are_validated_atomically() {
        let reg = Registry::new();
        let entry = reg.create("atomic", 2, &rows(&[[1.0, 1.0]])).unwrap();
        let bad = vec![vec![2.0, 2.0], vec![3.0]];
        assert!(entry.insert_rows(&bad).is_err());
        assert_eq!(entry.info().points, 1, "nothing inserted on failure");
        let nan = vec![vec![f64::NAN, 1.0]];
        assert!(entry.insert_rows(&nan).is_err());
    }

    #[test]
    fn empty_dataset_has_no_batch_snapshot() {
        let reg = Registry::new();
        let entry = reg.create("empty", 3, &[]).unwrap();
        let snap = entry.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.dataset.is_none());
        assert!(snap.handles.is_empty());
    }

    #[test]
    fn change_feed_records_every_mutation_in_version_order() {
        let reg = Registry::new();
        let entry = reg
            .create("feed", 2, &rows(&[[1.0, 5.0], [5.0, 1.0]]))
            .unwrap();
        entry.insert_rows(&rows(&[[0.5, 0.5]])).unwrap();
        entry.remove_ids(&[2]).unwrap();
        let batch = entry.changes_since(0, 100).unwrap();
        assert_eq!(
            batch
                .records
                .iter()
                .map(ChangeRecord::version)
                .collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(batch.next, 4);
        assert!(matches!(batch.records[3].op, ChangeOp::Remove { id: 2 }));
        // Caught-up cursor waits out its timeout and keeps its cursor.
        let version = entry.wait_for_version(4, Duration::from_millis(20));
        assert_eq!(version, 4);
        assert!(entry.changes_since(4, 100).unwrap().records.is_empty());
    }

    #[test]
    fn feed_retention_cap_turns_stale_cursors_into_gone() {
        let reg = Registry::with_feed_retain(2);
        let entry = reg.create("small", 2, &[]).unwrap();
        for i in 0..5 {
            entry
                .insert_rows(&rows(&[[i as f64, 5.0 - i as f64]]))
                .unwrap();
        }
        let gone = entry.changes_since(0, 100).unwrap_err();
        assert_eq!(gone.oldest, 4, "only versions 4..=5 retained");
        let batch = entry.changes_since(3, 100).unwrap();
        assert_eq!(batch.records.len(), 2);
    }

    #[test]
    fn replicated_records_rebuild_the_primary_exactly() {
        let primary = Registry::new();
        let p = primary
            .create("rep", 2, &rows(&[[1.0, 5.0], [5.0, 1.0], [6.0, 6.0]]))
            .unwrap();
        p.insert_rows(&rows(&[[0.5, 4.0]])).unwrap();
        p.remove_ids(&[1]).unwrap();

        let follower = Registry::new();
        let f = follower.create("rep", 2, &[]).unwrap();
        let batch = p.changes_since(0, 100).unwrap();
        for record in &batch.records {
            assert_eq!(f.apply_replicated(record).unwrap(), ReplicaApply::Applied);
        }
        assert_eq!(f.streaming_skyline(), p.streaming_skyline());
        assert_eq!(f.snapshot_doc(), p.snapshot_doc(), "full state matches");

        // At-least-once: replaying any prefix is a harmless duplicate.
        for record in &batch.records {
            assert_eq!(f.apply_replicated(record).unwrap(), ReplicaApply::Duplicate);
        }
        assert_eq!(f.streaming_skyline(), p.streaming_skyline());
    }

    #[test]
    fn replica_apply_fails_closed_on_gaps_and_bad_deltas() {
        let primary = Registry::new();
        let p = primary.create("div", 2, &[]).unwrap();
        for i in 0..4 {
            p.insert_rows(&rows(&[[i as f64, 4.0 - i as f64]])).unwrap();
        }
        let records = p.changes_since(0, 100).unwrap().records;

        // Version gap: skipping a record is detected by arithmetic.
        let follower = Registry::new();
        let f = follower.create("div", 2, &[]).unwrap();
        f.apply_replicated(&records[0]).unwrap();
        assert!(matches!(
            f.apply_replicated(&records[2]).unwrap(),
            ReplicaApply::Diverged(_)
        ));

        // A delta whose base does not match is refused before any
        // mutation happens.
        let mut forged = records[1].clone();
        forged.delta = SkylineDelta::from_events(vec![9], vec![7], forged.delta.version);
        let before = f.streaming_skyline();
        assert!(matches!(
            f.apply_replicated(&forged).unwrap(),
            ReplicaApply::Diverged(_)
        ));
        assert_eq!(f.streaming_skyline(), before, "refusal did not mutate");
    }

    #[test]
    fn install_replica_replaces_stale_state() {
        let primary = Registry::new();
        let p = primary
            .create("sync", 2, &rows(&[[1.0, 2.0], [2.0, 1.0]]))
            .unwrap();
        let doc = p.snapshot_doc();
        let (dims, version, slots) = wal::parse_snapshot(&doc).expect("snapshot doc parses");
        let stream = StreamingSkyline::restore(dims, &slots, version).unwrap();

        let follower = Registry::new();
        follower.create("sync", 2, &rows(&[[9.0, 9.0]])).unwrap();
        let f = follower.install_replica("sync", stream).unwrap();
        assert_eq!(f.streaming_skyline(), p.streaming_skyline());
        assert_eq!(follower.get("sync").unwrap().snapshot_doc(), doc);
        // The replaced entry's feed starts at the snapshot version:
        // pre-snapshot cursors must resync, the current cursor is fine.
        assert!(f.changes_since(0, 10).is_err());
        assert!(f.changes_since(2, 10).unwrap().records.is_empty());
    }

    #[test]
    fn durable_registry_recovers_datasets_across_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "skyline-reg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let (want_snap, want_version) = {
            let reg = Registry::open(StorageConfig::new(dir.clone())).unwrap();
            let entry = reg
                .create("durable", 2, &rows(&[[1.0, 5.0], [5.0, 1.0]]))
                .unwrap();
            entry.insert_rows(&rows(&[[6.0, 6.0], [0.5, 4.0]])).unwrap();
            entry.remove_ids(&[2]).unwrap();
            let (version, skyline) = entry.streaming_skyline();
            (skyline, version)
        };

        let reg = Registry::open(StorageConfig::new(dir.clone())).unwrap();
        let entry = reg.get("durable").unwrap();
        let (version, skyline) = entry.streaming_skyline();
        assert_eq!(version, want_version, "recovery lands on the acked version");
        assert_eq!(skyline, want_snap, "recovered skyline matches pre-crash");
        assert!(reg.recovery_replayed() > 0, "WAL records were replayed");

        // Further mutations keep handle assignment dense and consistent.
        let (ids, _) = entry.insert_rows(&rows(&[[0.1, 0.1]])).unwrap();
        assert_eq!(ids, vec![4], "next handle continues from recovered state");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persisted_epoch_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "skyline-reg-epoch-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        {
            let reg = Registry::open(StorageConfig::new(dir.clone())).unwrap();
            assert_eq!(reg.recovered_epoch(), 0, "fresh node starts at epoch 0");
            reg.create("fenced", 2, &rows(&[[1.0, 2.0]])).unwrap();
            reg.persist_epoch(3).unwrap();
        }
        let reg = Registry::open(StorageConfig::new(dir.clone())).unwrap();
        assert_eq!(reg.recovered_epoch(), 3);
        // Memory-only registries accept but do not persist epochs.
        let mem = Registry::new();
        mem.persist_epoch(9).unwrap();
        assert_eq!(mem.recovered_epoch(), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Typed trace events.
//!
//! Every event serialises to one JSON-lines record with a `"type"`
//! discriminator; the recorders add two span record types
//! (`span_start` / `span_end`) on top.

use crate::histogram::{Histogram, BUCKETS};
use crate::json::{ObjectWriter, Value};

/// A structured telemetry event emitted by an instrumented algorithm.
// Events are emitted at most once per phase or per Merge pivot, never in
// per-point loops, so `TrieStats`' two inline histograms (the size-skew
// clippy flags) are cheaper than boxing them would be.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One algorithm run is starting.
    RunStart {
        /// Algorithm display name, e.g. `"SFS-SUBSET"`.
        algorithm: String,
        /// Number of input points.
        points: u64,
        /// Input dimensionality.
        dims: u64,
    },
    /// One iteration of the Merge phase (Algorithm 1) finished.
    MergeIteration {
        /// 0-based iteration index.
        iteration: u64,
        /// Point id of the pivot chosen this iteration.
        pivot: u64,
        /// Points removed (dominated in the full space) this iteration.
        pruned: u64,
        /// Points still alive after this iteration.
        survivors: u64,
        /// Points whose maximum dominating subspace did not change —
        /// the stability count that drives the σ termination rule.
        stable: u64,
        /// Survivor counts per subspace size: `subspace_hist[k]` = number
        /// of survivors whose maximum dominating subspace has size `k+1`.
        /// These are exactly the buckets the σ stability rule compares.
        subspace_hist: Vec<u64>,
    },
    /// Subset-index statistics for one run, taken after the scan phase.
    TrieStats {
        /// Total trie nodes visited across the run's container queries.
        nodes: u64,
        /// Points stored into the container (`put` operations).
        entries: u64,
        /// Distribution of query recursion depth.
        depth: Histogram,
        /// Distribution of candidates returned per container query.
        candidates: Histogram,
    },
    /// One shard of a parallel engine finished its local skyline.
    ///
    /// Emitted once per shard after the workers join; `elapsed_us` is the
    /// worker's own wall-clock, measured inside the worker thread, so the
    /// trace stays exact even though the event is written afterwards.
    ShardScan {
        /// 0-based shard index.
        shard: u64,
        /// First point id of the shard (inclusive).
        lo: u64,
        /// One past the last point id of the shard.
        hi: u64,
        /// Local skyline cardinality of the shard.
        skyline_size: u64,
        /// Dominance tests the worker performed.
        dominance_tests: u64,
        /// Worker wall-clock in microseconds.
        elapsed_us: u64,
    },
    /// The cross-shard merge of a parallel engine finished.
    ParallelMerge {
        /// Local skyline sizes, one entry per shard.
        shard_skylines: Vec<u64>,
        /// Size of the merged candidate union fed into the final pass.
        candidates: u64,
        /// Global skyline cardinality after the merge.
        skyline_size: u64,
        /// Dominance tests performed by the merge pass alone.
        dominance_tests: u64,
    },
    /// One HTTP request handled by `skyline-serve`.
    Request {
        /// Request method (`GET`, `POST`, `DELETE`).
        method: String,
        /// Normalised endpoint (path pattern, e.g. `/skyline` or
        /// `/datasets/{name}/points`), not the raw request path.
        endpoint: String,
        /// HTTP status code of the response.
        status: u64,
        /// End-to-end handling time in microseconds.
        elapsed_us: u64,
        /// Trace id inherited from `X-Skyline-Trace` (or minted by the
        /// coordinator); empty when the request was untraced.
        trace: String,
    },
    /// A skyline query was answered from the server's result cache.
    CacheHit {
        /// Dataset name the cached result belongs to.
        dataset: String,
        /// Algorithm the cached result was computed with.
        algorithm: String,
        /// Dataset content version the result was computed at.
        version: u64,
        /// Trace id of the request that hit; empty when untraced.
        trace: String,
    },
    /// A streaming mutation produced a skyline delta that was applied to
    /// the server's state — and, where possible, patched forward into
    /// cached results instead of invalidating them.
    DeltaApplied {
        /// Dataset name the mutation targeted.
        dataset: String,
        /// Content version before the mutation batch.
        base_version: u64,
        /// Content version after the mutation batch.
        version: u64,
        /// Points that entered the skyline.
        entered: u64,
        /// Points that left the skyline.
        left: u64,
        /// Cache entries patched forward to `version`.
        cache_patched: u64,
        /// Cache entries the delta could not describe and dropped.
        cache_invalidated: u64,
        /// Trace id of the mutating request; empty when untraced.
        trace: String,
    },
    /// A request was shed by the server's overload gate (503).
    Shed {
        /// Normalised endpoint the shed request targeted.
        endpoint: String,
    },
    /// A skyline query was cancelled at its client-supplied deadline.
    DeadlineExceeded {
        /// Dataset name the query targeted.
        dataset: String,
        /// Algorithm the query requested.
        algorithm: String,
        /// The deadline the client asked for, in milliseconds.
        deadline_ms: u64,
    },
    /// A request handler panicked and was isolated into a 500.
    HandlerPanic {
        /// Normalised endpoint whose handler panicked.
        endpoint: String,
    },
    /// One dataset was recovered from its WAL/snapshot at boot.
    Recovery {
        /// Dataset name.
        dataset: String,
        /// WAL records replayed on top of the snapshot.
        replayed: u64,
        /// Content version the dataset recovered to.
        version: u64,
    },
    /// One change-feed cursor read (`GET /datasets/{name}/changes`)
    /// was answered, including long-poll heartbeats.
    FeedPoll {
        /// Dataset the feed belongs to.
        dataset: String,
        /// Cursor the consumer presented.
        since: u64,
        /// Records returned in this batch.
        returned: u64,
        /// Cursor after this batch (`== since` on a heartbeat).
        next: u64,
        /// The dataset's latest version at read time.
        latest: u64,
        /// Whether this was a long-poll timeout heartbeat.
        heartbeat: bool,
    },
    /// A follower applied one batch of replicated change records.
    ReplicaApply {
        /// Dataset the records belong to.
        dataset: String,
        /// Follower content version after the batch.
        version: u64,
        /// Records applied in this batch (duplicates excluded).
        records: u64,
        /// Versions the follower still trailed the primary by after
        /// this batch.
        lag: u64,
    },
    /// A follower discarded a dataset and resynced from a primary
    /// snapshot (initial sync, stale cursor, or divergence).
    ReplicaResync {
        /// Dataset that was resynced.
        dataset: String,
        /// Content version of the snapshot the follower installed.
        version: u64,
        /// Why the follower resynced rather than applying the feed.
        reason: String,
    },
    /// One RPC from the cluster coordinator to a shard node finished
    /// (successfully or not).
    ShardRpc {
        /// 0-based shard index in the coordinator's shard list.
        shard: u64,
        /// Normalised endpoint on the shard (e.g. `/skyline`).
        endpoint: String,
        /// HTTP status the shard answered with; `0` when the call
        /// failed at the transport level (connect/read error).
        status: u64,
        /// Attempts the retrying client made, including the first.
        attempts: u64,
        /// End-to-end RPC time across all attempts, microseconds.
        elapsed_us: u64,
        /// Trace id the coordinator propagated to the shard; empty when
        /// the RPC was untraced.
        trace: String,
    },
    /// A node accepted a `POST /promote` and became the primary for a
    /// new fencing epoch.
    Promotion {
        /// Fencing epoch the node now serves under.
        epoch: u64,
        /// Datasets the node inherited from its replication feed.
        datasets: u64,
        /// Summed content version across those datasets at promotion.
        version: u64,
    },
    /// A node stepped down into follower mode, either told to by the
    /// coordinator or after discovering a higher fencing epoch.
    Demotion {
        /// Fencing epoch the node demoted under.
        epoch: u64,
        /// Address of the primary the node now follows.
        primary: String,
    },
    /// A request carrying a mismatched fencing epoch was refused with
    /// `409 Fenced`.
    FencedRequest {
        /// Endpoint the stale request hit.
        endpoint: String,
        /// Epoch the request was stamped with.
        request_epoch: u64,
        /// Epoch this node is serving under.
        node_epoch: u64,
    },
    /// The coordinator's failure detector missed a health probe and
    /// raised (or advanced) suspicion of a shard primary.
    FailoverSuspect {
        /// 0-based shard index of the suspected primary.
        shard: u64,
        /// Address of the suspected primary.
        addr: String,
        /// Consecutive probe misses so far.
        misses: u64,
    },
    /// The coordinator confirmed a primary dead and promoted the most
    /// caught-up replica under a new fencing epoch.
    Failover {
        /// 0-based shard index that failed over.
        shard: u64,
        /// Fencing epoch the new primary serves under.
        epoch: u64,
        /// Address of the dead primary.
        old_primary: String,
        /// Address of the promoted replica.
        new_primary: String,
    },
    /// Stage-attributed breakdown of one traced request: contiguous
    /// stage durations that sum to (within scheduling noise of) the
    /// request wall-clock, stitched by the coordinator from its own
    /// timer plus the `X-Skyline-Stage-Times` each shard returned.
    /// Also the record shape of the slow-query log.
    StageBreakdown {
        /// Trace id the breakdown belongs to.
        trace: String,
        /// Normalised endpoint the request hit.
        endpoint: String,
        /// Measured wall-clock of the whole request, microseconds.
        total_us: u64,
        /// Ordered `(stage, microseconds)` pairs. Top-level stage names
        /// are contiguous and sum to ≈`total_us`; names containing a
        /// `.` (e.g. `shard1.compute`) are overlapping per-leg detail
        /// and excluded from that sum.
        stages: Vec<(String, u64)>,
        /// Straggler attribution, e.g. `"shard2"` — the leg that
        /// bounded `shard_wait`. Empty for single-process breakdowns.
        straggler: String,
    },
    /// The coordinator finished a cross-shard scatter-gather merge.
    ClusterMerge {
        /// Shards that contributed a local skyline.
        shards: u64,
        /// Shards that failed and were left out (`partial` response).
        missing: u64,
        /// Union of per-shard skyline candidates fed into the merge.
        candidates: u64,
        /// Global skyline cardinality after the merge.
        skyline_size: u64,
        /// Dominance tests the coordinator-side merge performed.
        dominance_tests: u64,
        /// Merge wall-clock, microseconds (excluding shard RPCs).
        elapsed_us: u64,
    },
    /// One algorithm run finished.
    RunSummary {
        /// Algorithm display name.
        algorithm: String,
        /// Skyline cardinality.
        skyline_size: u64,
        /// Full-space dominance tests performed.
        dominance_tests: u64,
        /// Container queries issued during the scan phase.
        container_gets: u64,
        /// Wall-clock time of the whole run in microseconds.
        elapsed_us: u64,
    },
}

fn histogram_json(h: &Histogram) -> String {
    let mut w = ObjectWriter::new();
    w.u64_field("count", h.count())
        .u64_field("sum", h.sum())
        .u64_field("min", h.min())
        .u64_field("max", h.max())
        .u64_array_field("buckets", h.buckets());
    w.finish()
}

fn histogram_from(v: &Value) -> Option<Histogram> {
    let count = v.get("count")?.as_u64()?;
    let sum = v.get("sum")?.as_u64()?;
    let min = v.get("min")?.as_u64()?;
    let max = v.get("max")?.as_u64()?;
    let raw = v.get("buckets")?.as_arr()?;
    if raw.len() != BUCKETS {
        return None;
    }
    let mut buckets = [0u64; BUCKETS];
    for (slot, val) in buckets.iter_mut().zip(raw) {
        *slot = val.as_u64()?;
    }
    Some(Histogram::from_parts(buckets, count, sum, min, max))
}

fn u64_vec(v: &Value) -> Option<Vec<u64>> {
    v.as_arr()?.iter().map(Value::as_u64).collect()
}

fn stages_json(stages: &[(String, u64)]) -> String {
    let mut w = ObjectWriter::new();
    for (name, us) in stages {
        w.u64_field(name, *us);
    }
    w.finish()
}

fn stages_from(v: &Value) -> Option<Vec<(String, u64)>> {
    match v {
        Value::Obj(pairs) => pairs
            .iter()
            .map(|(k, val)| Some((k.clone(), val.as_u64()?)))
            .collect(),
        _ => None,
    }
}

fn trace_tag(v: &Value) -> String {
    v.get("trace")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string()
}

impl Event {
    /// The `"type"` discriminator this event serialises under.
    pub fn type_name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::MergeIteration { .. } => "merge_iteration",
            Event::TrieStats { .. } => "trie_stats",
            Event::ShardScan { .. } => "shard_scan",
            Event::ParallelMerge { .. } => "parallel_merge",
            Event::Request { .. } => "request",
            Event::CacheHit { .. } => "cache_hit",
            Event::DeltaApplied { .. } => "delta_applied",
            Event::Shed { .. } => "shed",
            Event::DeadlineExceeded { .. } => "deadline_exceeded",
            Event::HandlerPanic { .. } => "handler_panic",
            Event::Recovery { .. } => "recovery",
            Event::FeedPoll { .. } => "feed_poll",
            Event::ReplicaApply { .. } => "replica_apply",
            Event::ReplicaResync { .. } => "replica_resync",
            Event::ShardRpc { .. } => "shard_rpc",
            Event::Promotion { .. } => "promotion",
            Event::Demotion { .. } => "demotion",
            Event::FencedRequest { .. } => "fenced_request",
            Event::FailoverSuspect { .. } => "failover_suspect",
            Event::Failover { .. } => "failover",
            Event::StageBreakdown { .. } => "stage_breakdown",
            Event::ClusterMerge { .. } => "cluster_merge",
            Event::RunSummary { .. } => "run_summary",
        }
    }

    /// Serialise to one JSON-lines record (no trailing newline).
    /// `ts_us` is the microsecond offset from the start of the trace.
    pub fn to_json(&self, ts_us: u64) -> String {
        let mut w = ObjectWriter::new();
        w.str_field("type", self.type_name())
            .u64_field("ts_us", ts_us);
        match self {
            Event::RunStart {
                algorithm,
                points,
                dims,
            } => {
                w.str_field("algorithm", algorithm)
                    .u64_field("points", *points)
                    .u64_field("dims", *dims);
            }
            Event::MergeIteration {
                iteration,
                pivot,
                pruned,
                survivors,
                stable,
                subspace_hist,
            } => {
                w.u64_field("iteration", *iteration)
                    .u64_field("pivot", *pivot)
                    .u64_field("pruned", *pruned)
                    .u64_field("survivors", *survivors)
                    .u64_field("stable", *stable)
                    .u64_array_field("subspace_hist", subspace_hist);
            }
            Event::TrieStats {
                nodes,
                entries,
                depth,
                candidates,
            } => {
                w.u64_field("nodes", *nodes)
                    .u64_field("entries", *entries)
                    .raw_field("depth", &histogram_json(depth))
                    .raw_field("candidates", &histogram_json(candidates));
            }
            Event::ShardScan {
                shard,
                lo,
                hi,
                skyline_size,
                dominance_tests,
                elapsed_us,
            } => {
                w.u64_field("shard", *shard)
                    .u64_field("lo", *lo)
                    .u64_field("hi", *hi)
                    .u64_field("skyline_size", *skyline_size)
                    .u64_field("dominance_tests", *dominance_tests)
                    .u64_field("elapsed_us", *elapsed_us);
            }
            Event::ParallelMerge {
                shard_skylines,
                candidates,
                skyline_size,
                dominance_tests,
            } => {
                w.u64_array_field("shard_skylines", shard_skylines)
                    .u64_field("candidates", *candidates)
                    .u64_field("skyline_size", *skyline_size)
                    .u64_field("dominance_tests", *dominance_tests);
            }
            Event::Request {
                method,
                endpoint,
                status,
                elapsed_us,
                trace,
            } => {
                w.str_field("method", method)
                    .str_field("endpoint", endpoint)
                    .u64_field("status", *status)
                    .u64_field("elapsed_us", *elapsed_us);
                if !trace.is_empty() {
                    w.str_field("trace", trace);
                }
            }
            Event::CacheHit {
                dataset,
                algorithm,
                version,
                trace,
            } => {
                w.str_field("dataset", dataset)
                    .str_field("algorithm", algorithm)
                    .u64_field("version", *version);
                if !trace.is_empty() {
                    w.str_field("trace", trace);
                }
            }
            Event::DeltaApplied {
                dataset,
                base_version,
                version,
                entered,
                left,
                cache_patched,
                cache_invalidated,
                trace,
            } => {
                w.str_field("dataset", dataset)
                    .u64_field("base_version", *base_version)
                    .u64_field("version", *version)
                    .u64_field("entered", *entered)
                    .u64_field("left", *left)
                    .u64_field("cache_patched", *cache_patched)
                    .u64_field("cache_invalidated", *cache_invalidated);
                if !trace.is_empty() {
                    w.str_field("trace", trace);
                }
            }
            Event::Shed { endpoint } => {
                w.str_field("endpoint", endpoint);
            }
            Event::DeadlineExceeded {
                dataset,
                algorithm,
                deadline_ms,
            } => {
                w.str_field("dataset", dataset)
                    .str_field("algorithm", algorithm)
                    .u64_field("deadline_ms", *deadline_ms);
            }
            Event::HandlerPanic { endpoint } => {
                w.str_field("endpoint", endpoint);
            }
            Event::Recovery {
                dataset,
                replayed,
                version,
            } => {
                w.str_field("dataset", dataset)
                    .u64_field("replayed", *replayed)
                    .u64_field("version", *version);
            }
            Event::FeedPoll {
                dataset,
                since,
                returned,
                next,
                latest,
                heartbeat,
            } => {
                w.str_field("dataset", dataset)
                    .u64_field("since", *since)
                    .u64_field("returned", *returned)
                    .u64_field("next", *next)
                    .u64_field("latest", *latest)
                    .bool_field("heartbeat", *heartbeat);
            }
            Event::ReplicaApply {
                dataset,
                version,
                records,
                lag,
            } => {
                w.str_field("dataset", dataset)
                    .u64_field("version", *version)
                    .u64_field("records", *records)
                    .u64_field("lag", *lag);
            }
            Event::ReplicaResync {
                dataset,
                version,
                reason,
            } => {
                w.str_field("dataset", dataset)
                    .u64_field("version", *version)
                    .str_field("reason", reason);
            }
            Event::ShardRpc {
                shard,
                endpoint,
                status,
                attempts,
                elapsed_us,
                trace,
            } => {
                w.u64_field("shard", *shard)
                    .str_field("endpoint", endpoint)
                    .u64_field("status", *status)
                    .u64_field("attempts", *attempts)
                    .u64_field("elapsed_us", *elapsed_us);
                if !trace.is_empty() {
                    w.str_field("trace", trace);
                }
            }
            Event::Promotion {
                epoch,
                datasets,
                version,
            } => {
                w.u64_field("epoch", *epoch)
                    .u64_field("datasets", *datasets)
                    .u64_field("version", *version);
            }
            Event::Demotion { epoch, primary } => {
                w.u64_field("epoch", *epoch).str_field("primary", primary);
            }
            Event::FencedRequest {
                endpoint,
                request_epoch,
                node_epoch,
            } => {
                w.str_field("endpoint", endpoint)
                    .u64_field("request_epoch", *request_epoch)
                    .u64_field("node_epoch", *node_epoch);
            }
            Event::FailoverSuspect {
                shard,
                addr,
                misses,
            } => {
                w.u64_field("shard", *shard)
                    .str_field("addr", addr)
                    .u64_field("misses", *misses);
            }
            Event::Failover {
                shard,
                epoch,
                old_primary,
                new_primary,
            } => {
                w.u64_field("shard", *shard)
                    .u64_field("epoch", *epoch)
                    .str_field("old_primary", old_primary)
                    .str_field("new_primary", new_primary);
            }
            Event::StageBreakdown {
                trace,
                endpoint,
                total_us,
                stages,
                straggler,
            } => {
                w.str_field("trace", trace)
                    .str_field("endpoint", endpoint)
                    .u64_field("total_us", *total_us)
                    .raw_field("stages", &stages_json(stages));
                if !straggler.is_empty() {
                    w.str_field("straggler", straggler);
                }
            }
            Event::ClusterMerge {
                shards,
                missing,
                candidates,
                skyline_size,
                dominance_tests,
                elapsed_us,
            } => {
                w.u64_field("shards", *shards)
                    .u64_field("missing", *missing)
                    .u64_field("candidates", *candidates)
                    .u64_field("skyline_size", *skyline_size)
                    .u64_field("dominance_tests", *dominance_tests)
                    .u64_field("elapsed_us", *elapsed_us);
            }
            Event::RunSummary {
                algorithm,
                skyline_size,
                dominance_tests,
                container_gets,
                elapsed_us,
            } => {
                w.str_field("algorithm", algorithm)
                    .u64_field("skyline_size", *skyline_size)
                    .u64_field("dominance_tests", *dominance_tests)
                    .u64_field("container_gets", *container_gets)
                    .u64_field("elapsed_us", *elapsed_us);
            }
        }
        w.finish()
    }

    /// Reconstruct an event from a parsed trace record. Returns `None`
    /// for span records and unknown types — callers treat those
    /// separately.
    pub fn from_value(v: &Value) -> Option<Event> {
        match v.get("type")?.as_str()? {
            "run_start" => Some(Event::RunStart {
                algorithm: v.get("algorithm")?.as_str()?.to_string(),
                points: v.get("points")?.as_u64()?,
                dims: v.get("dims")?.as_u64()?,
            }),
            "merge_iteration" => Some(Event::MergeIteration {
                iteration: v.get("iteration")?.as_u64()?,
                pivot: v.get("pivot")?.as_u64()?,
                pruned: v.get("pruned")?.as_u64()?,
                survivors: v.get("survivors")?.as_u64()?,
                stable: v.get("stable")?.as_u64()?,
                subspace_hist: u64_vec(v.get("subspace_hist")?)?,
            }),
            "trie_stats" => Some(Event::TrieStats {
                nodes: v.get("nodes")?.as_u64()?,
                entries: v.get("entries")?.as_u64()?,
                depth: histogram_from(v.get("depth")?)?,
                candidates: histogram_from(v.get("candidates")?)?,
            }),
            "shard_scan" => Some(Event::ShardScan {
                shard: v.get("shard")?.as_u64()?,
                lo: v.get("lo")?.as_u64()?,
                hi: v.get("hi")?.as_u64()?,
                skyline_size: v.get("skyline_size")?.as_u64()?,
                dominance_tests: v.get("dominance_tests")?.as_u64()?,
                elapsed_us: v.get("elapsed_us")?.as_u64()?,
            }),
            "parallel_merge" => Some(Event::ParallelMerge {
                shard_skylines: u64_vec(v.get("shard_skylines")?)?,
                candidates: v.get("candidates")?.as_u64()?,
                skyline_size: v.get("skyline_size")?.as_u64()?,
                dominance_tests: v.get("dominance_tests")?.as_u64()?,
            }),
            "request" => Some(Event::Request {
                method: v.get("method")?.as_str()?.to_string(),
                endpoint: v.get("endpoint")?.as_str()?.to_string(),
                status: v.get("status")?.as_u64()?,
                elapsed_us: v.get("elapsed_us")?.as_u64()?,
                trace: trace_tag(v),
            }),
            "cache_hit" => Some(Event::CacheHit {
                dataset: v.get("dataset")?.as_str()?.to_string(),
                algorithm: v.get("algorithm")?.as_str()?.to_string(),
                version: v.get("version")?.as_u64()?,
                trace: trace_tag(v),
            }),
            "delta_applied" => Some(Event::DeltaApplied {
                dataset: v.get("dataset")?.as_str()?.to_string(),
                base_version: v.get("base_version")?.as_u64()?,
                version: v.get("version")?.as_u64()?,
                entered: v.get("entered")?.as_u64()?,
                left: v.get("left")?.as_u64()?,
                cache_patched: v.get("cache_patched")?.as_u64()?,
                cache_invalidated: v.get("cache_invalidated")?.as_u64()?,
                trace: trace_tag(v),
            }),
            "shed" => Some(Event::Shed {
                endpoint: v.get("endpoint")?.as_str()?.to_string(),
            }),
            "deadline_exceeded" => Some(Event::DeadlineExceeded {
                dataset: v.get("dataset")?.as_str()?.to_string(),
                algorithm: v.get("algorithm")?.as_str()?.to_string(),
                deadline_ms: v.get("deadline_ms")?.as_u64()?,
            }),
            "handler_panic" => Some(Event::HandlerPanic {
                endpoint: v.get("endpoint")?.as_str()?.to_string(),
            }),
            "recovery" => Some(Event::Recovery {
                dataset: v.get("dataset")?.as_str()?.to_string(),
                replayed: v.get("replayed")?.as_u64()?,
                version: v.get("version")?.as_u64()?,
            }),
            "feed_poll" => Some(Event::FeedPoll {
                dataset: v.get("dataset")?.as_str()?.to_string(),
                since: v.get("since")?.as_u64()?,
                returned: v.get("returned")?.as_u64()?,
                next: v.get("next")?.as_u64()?,
                latest: v.get("latest")?.as_u64()?,
                heartbeat: matches!(v.get("heartbeat")?, Value::Bool(true)),
            }),
            "replica_apply" => Some(Event::ReplicaApply {
                dataset: v.get("dataset")?.as_str()?.to_string(),
                version: v.get("version")?.as_u64()?,
                records: v.get("records")?.as_u64()?,
                lag: v.get("lag")?.as_u64()?,
            }),
            "replica_resync" => Some(Event::ReplicaResync {
                dataset: v.get("dataset")?.as_str()?.to_string(),
                version: v.get("version")?.as_u64()?,
                reason: v.get("reason")?.as_str()?.to_string(),
            }),
            "shard_rpc" => Some(Event::ShardRpc {
                shard: v.get("shard")?.as_u64()?,
                endpoint: v.get("endpoint")?.as_str()?.to_string(),
                status: v.get("status")?.as_u64()?,
                attempts: v.get("attempts")?.as_u64()?,
                elapsed_us: v.get("elapsed_us")?.as_u64()?,
                trace: trace_tag(v),
            }),
            "promotion" => Some(Event::Promotion {
                epoch: v.get("epoch")?.as_u64()?,
                datasets: v.get("datasets")?.as_u64()?,
                version: v.get("version")?.as_u64()?,
            }),
            "demotion" => Some(Event::Demotion {
                epoch: v.get("epoch")?.as_u64()?,
                primary: v.get("primary")?.as_str()?.to_string(),
            }),
            "fenced_request" => Some(Event::FencedRequest {
                endpoint: v.get("endpoint")?.as_str()?.to_string(),
                request_epoch: v.get("request_epoch")?.as_u64()?,
                node_epoch: v.get("node_epoch")?.as_u64()?,
            }),
            "failover_suspect" => Some(Event::FailoverSuspect {
                shard: v.get("shard")?.as_u64()?,
                addr: v.get("addr")?.as_str()?.to_string(),
                misses: v.get("misses")?.as_u64()?,
            }),
            "failover" => Some(Event::Failover {
                shard: v.get("shard")?.as_u64()?,
                epoch: v.get("epoch")?.as_u64()?,
                old_primary: v.get("old_primary")?.as_str()?.to_string(),
                new_primary: v.get("new_primary")?.as_str()?.to_string(),
            }),
            "stage_breakdown" => Some(Event::StageBreakdown {
                trace: trace_tag(v),
                endpoint: v.get("endpoint")?.as_str()?.to_string(),
                total_us: v.get("total_us")?.as_u64()?,
                stages: stages_from(v.get("stages")?)?,
                straggler: v
                    .get("straggler")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            "cluster_merge" => Some(Event::ClusterMerge {
                shards: v.get("shards")?.as_u64()?,
                missing: v.get("missing")?.as_u64()?,
                candidates: v.get("candidates")?.as_u64()?,
                skyline_size: v.get("skyline_size")?.as_u64()?,
                dominance_tests: v.get("dominance_tests")?.as_u64()?,
                elapsed_us: v.get("elapsed_us")?.as_u64()?,
            }),
            "run_summary" => Some(Event::RunSummary {
                algorithm: v.get("algorithm")?.as_str()?.to_string(),
                skyline_size: v.get("skyline_size")?.as_u64()?,
                dominance_tests: v.get("dominance_tests")?.as_u64()?,
                container_gets: v.get("container_gets")?.as_u64()?,
                elapsed_us: v.get("elapsed_us")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mut depth = Histogram::new();
        depth.record(2);
        depth.record(5);
        let mut candidates = Histogram::new();
        candidates.record(0);
        candidates.record(120);
        vec![
            Event::RunStart {
                algorithm: "SFS-SUBSET".into(),
                points: 1000,
                dims: 8,
            },
            Event::MergeIteration {
                iteration: 0,
                pivot: 412,
                pruned: 73,
                survivors: 927,
                stable: 800,
                subspace_hist: vec![0, 3, 12, 900],
            },
            Event::TrieStats {
                nodes: 99,
                entries: 40,
                depth,
                candidates,
            },
            Event::ShardScan {
                shard: 2,
                lo: 500,
                hi: 750,
                skyline_size: 61,
                dominance_tests: 4_812,
                elapsed_us: 311,
            },
            Event::ParallelMerge {
                shard_skylines: vec![64, 58, 61, 70],
                candidates: 253,
                skyline_size: 211,
                dominance_tests: 1_099,
            },
            Event::Request {
                method: "GET".into(),
                endpoint: "/skyline".into(),
                status: 200,
                elapsed_us: 412,
                trace: "deadbeef01234567".into(),
            },
            Event::CacheHit {
                dataset: "hotels".into(),
                algorithm: "SDI-Subset".into(),
                version: 17,
                trace: String::new(),
            },
            Event::DeltaApplied {
                dataset: "hotels".into(),
                base_version: 17,
                version: 18,
                entered: 1,
                left: 2,
                cache_patched: 1,
                cache_invalidated: 3,
                trace: "deadbeef01234567".into(),
            },
            Event::Shed {
                endpoint: "/skyline".into(),
            },
            Event::DeadlineExceeded {
                dataset: "hotels".into(),
                algorithm: "SDI-Subset".into(),
                deadline_ms: 25,
            },
            Event::HandlerPanic {
                endpoint: "/skyline".into(),
            },
            Event::Recovery {
                dataset: "hotels".into(),
                replayed: 42,
                version: 58,
            },
            Event::FeedPoll {
                dataset: "hotels".into(),
                since: 17,
                returned: 2,
                next: 19,
                latest: 19,
                heartbeat: false,
            },
            Event::ReplicaApply {
                dataset: "hotels".into(),
                version: 19,
                records: 2,
                lag: 0,
            },
            Event::ReplicaResync {
                dataset: "hotels".into(),
                version: 19,
                reason: "cursor 3 predates oldest retained version 12".into(),
            },
            Event::ShardRpc {
                shard: 1,
                endpoint: "/skyline".into(),
                status: 200,
                attempts: 2,
                elapsed_us: 1_832,
                trace: "deadbeef01234567".into(),
            },
            Event::Promotion {
                epoch: 3,
                datasets: 2,
                version: 57,
            },
            Event::Demotion {
                epoch: 3,
                primary: "127.0.0.1:7101".into(),
            },
            Event::FencedRequest {
                endpoint: "/datasets/hotels/points".into(),
                request_epoch: 2,
                node_epoch: 3,
            },
            Event::FailoverSuspect {
                shard: 1,
                addr: "127.0.0.1:7100".into(),
                misses: 2,
            },
            Event::Failover {
                shard: 1,
                epoch: 3,
                old_primary: "127.0.0.1:7100".into(),
                new_primary: "127.0.0.1:7101".into(),
            },
            Event::StageBreakdown {
                trace: "deadbeef01234567".into(),
                endpoint: "/skyline".into(),
                total_us: 40_100,
                stages: vec![
                    ("accept".into(), 3),
                    ("route".into(), 2),
                    ("connect".into(), 90),
                    ("send".into(), 15),
                    ("shard_wait".into(), 38_000),
                    ("gather".into(), 700),
                    ("merge".into(), 1_200),
                    ("respond".into(), 40),
                    ("shard1.compute".into(), 36_500),
                ],
                straggler: "shard1".into(),
            },
            Event::ClusterMerge {
                shards: 4,
                missing: 1,
                candidates: 253,
                skyline_size: 211,
                dominance_tests: 1_099,
                elapsed_us: 642,
            },
            Event::RunSummary {
                algorithm: "SFS-SUBSET".into(),
                skyline_size: 211,
                dominance_tests: 48_213,
                container_gets: 927,
                elapsed_us: 1523,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for (i, e) in sample_events().into_iter().enumerate() {
            let line = e.to_json(i as u64 * 10);
            let v = Value::parse(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(v.get("ts_us").unwrap().as_u64(), Some(i as u64 * 10));
            let back = Event::from_value(&v).unwrap_or_else(|| panic!("no parse: {line}"));
            assert_eq!(back, e, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn type_names_are_distinct() {
        let names: Vec<&str> = sample_events().iter().map(|e| e.type_name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn legacy_records_without_a_trace_tag_still_parse() {
        let v = Value::parse(
            r#"{"type":"request","ts_us":0,"method":"GET","endpoint":"/skyline","status":200,"elapsed_us":5}"#,
        )
        .unwrap();
        match Event::from_value(&v) {
            Some(Event::Request { trace, .. }) => assert!(trace.is_empty()),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn unknown_and_span_types_are_skipped() {
        let v = Value::parse(r#"{"type":"span_start","name":"merge","ts_us":0}"#).unwrap();
        assert!(Event::from_value(&v).is_none());
        let v = Value::parse(r#"{"type":"mystery"}"#).unwrap();
        assert!(Event::from_value(&v).is_none());
    }
}

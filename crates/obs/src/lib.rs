//! # skyline-obs
//!
//! Zero-dependency structured observability for the skyline workspace:
//!
//! - [`Recorder`] — the sink trait algorithms are instrumented against,
//!   with a no-op default ([`NoopRecorder`]) whose disabled path costs
//!   one virtual `enabled()` check per *phase*, never per point;
//! - [`Event`] — typed telemetry (run boundaries, per-Merge-iteration
//!   stats, trie statistics) that serialises to JSON lines;
//! - [`Histogram`] — fixed-bucket log2 histograms cheap enough to live
//!   inside hot-path metrics structs;
//! - [`JsonlRecorder`] — a hand-rolled JSON-lines sink (no serde),
//!   selected at the CLI via `--trace <path>` or `SKYLINE_TRACE=<path>`;
//! - [`TraceSummary`] — reads a trace file back and aggregates it into
//!   human-readable tables (`skyline report <trace.jsonl>`);
//! - [`TraceContext`]/[`StageTimer`] — distributed trace-id propagation
//!   and stage-attributed wall-clock profiling for the serving stack.
//!
//! The crate deliberately depends on nothing outside `std` so that the
//! bottom-most crate of the workspace (`skyline-core`) can depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod histogram;
pub mod json;
pub mod recorder;
pub mod summary;
pub mod trace;

pub use event::Event;
pub use histogram::{AtomicHistogram, Histogram, BUCKETS};
pub use recorder::{JsonlRecorder, MemoryRecorder, NoopRecorder, Record, Recorder};
pub use summary::TraceSummary;
pub use trace::{StageTimer, TraceContext};

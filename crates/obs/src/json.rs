//! Hand-rolled JSON writing and parsing — enough for the trace format,
//! with correct string escaping in both directions and no external
//! crates.

use std::fmt::Write as _;

/// Escape `s` per RFC 8259 and append it, without surrounding quotes.
pub fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Incremental writer for a single-line JSON object.
///
/// ```
/// use skyline_obs::json::ObjectWriter;
/// let mut w = ObjectWriter::new();
/// w.str_field("type", "span_start").u64_field("ts_us", 12);
/// assert_eq!(w.finish(), r#"{"type":"span_start","ts_us":12}"#);
/// ```
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectWriter {
    /// Start an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Add a string field.
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (finite values only; non-finite become `null`).
    pub fn f64_field(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool_field(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add an array-of-integers field.
    pub fn u64_array_field(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Add a nested object field (the value must already be valid JSON).
    pub fn raw_field(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64`; integers are exact up to 2^53, far beyond
/// any counter a single run produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number
    Num(f64),
    /// String (unescaped)
    Str(String),
    /// Array
    Arr(Vec<Value>),
    /// Object, in source order
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse one complete JSON document from `s`.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(vs) => Some(vs),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(combined).ok_or("invalid surrogate pair")?);
                            } else {
                                out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                            }
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed to keep UTF-8 intact.
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape '{hex}'"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut vs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(vs));
        }
        loop {
            self.skip_ws();
            vs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(vs));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_compact_objects() {
        let mut w = ObjectWriter::new();
        w.str_field("type", "run_start")
            .u64_field("n", 1000)
            .f64_field("sigma", 2.5)
            .bool_field("boost", true)
            .u64_array_field("hist", &[1, 0, 3]);
        assert_eq!(
            w.finish(),
            r#"{"type":"run_start","n":1000,"sigma":2.5,"boost":true,"hist":[1,0,3]}"#
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
        assert_eq!(Value::parse("{}").unwrap(), Value::Obj(vec![]));
    }

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let nasty = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\u{01} unicode:σ→π 🦀";
        let mut w = ObjectWriter::new();
        w.str_field(nasty, nasty);
        let line = w.finish();
        let v = Value::parse(&line).unwrap();
        match &v {
            Value::Obj(fields) => {
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].0, nasty);
                assert_eq!(fields[0].1.as_str(), Some(nasty));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            Value::parse(r#"{"a": [1, 2.5, -3, true, null], "b": {"c": "d"}, "e": 1e3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Value::parse(r#""🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse(r#"{"a" 1}"#).is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("123 456").is_err());
        assert!(Value::parse(r#""\q""#).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = ObjectWriter::new();
        w.f64_field("x", f64::NAN);
        let line = w.finish();
        assert_eq!(line, r#"{"x":null}"#);
        assert_eq!(Value::parse(&line).unwrap().get("x"), Some(&Value::Null));
    }
}

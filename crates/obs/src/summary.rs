//! Aggregating a JSON-lines trace back into human-readable tables.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::event::Event;
use crate::histogram::Histogram;
use crate::json::Value;

/// Aggregate statistics for one span name.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total duration across all completions, microseconds.
    pub total_us: u64,
    /// Longest single completion, microseconds.
    pub max_us: u64,
}

/// Aggregate statistics for one server endpoint's `request` events.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EndpointStats {
    /// Requests handled.
    pub count: u64,
    /// Responses with a 4xx/5xx status.
    pub errors: u64,
    /// Total handling time, microseconds.
    pub total_us: u64,
    /// Slowest single request, microseconds.
    pub max_us: u64,
}

/// Aggregate statistics for one algorithm's `run_summary` events.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AlgoStats {
    /// Number of runs.
    pub runs: u64,
    /// Total skyline cardinality over all runs.
    pub skyline_total: u64,
    /// Total dominance tests over all runs.
    pub dominance_tests: u64,
    /// Total container queries over all runs.
    pub container_gets: u64,
    /// Total wall-clock, microseconds.
    pub elapsed_us: u64,
}

/// Everything a trace file aggregates to.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceSummary {
    /// Parsed JSONL records.
    pub lines: u64,
    /// Lines that failed to parse or had an unknown shape.
    pub skipped: u64,
    /// Record count per `"type"` discriminator.
    pub type_counts: BTreeMap<String, u64>,
    /// Span timings keyed by span name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Per-algorithm run summaries.
    pub algorithms: BTreeMap<String, AlgoStats>,
    /// Merge-phase telemetry: iterations observed.
    pub merge_iterations: u64,
    /// Total points pruned across all Merge iterations.
    pub merge_pruned: u64,
    /// Aggregated subspace-size buckets over every Merge iteration
    /// (index `k` = survivors with subspace size `k+1`, summed).
    pub merge_subspace_buckets: Vec<u64>,
    /// Parallel engines: shard local-skyline scans observed.
    pub shard_scans: u64,
    /// Total worker wall-clock across all shard scans, microseconds
    /// (CPU time, not elapsed: workers overlap).
    pub shard_elapsed_us: u64,
    /// Longest single shard scan, microseconds (the parallel critical
    /// path of phase 1).
    pub shard_max_us: u64,
    /// Parallel engines: cross-shard merge passes observed.
    pub parallel_merges: u64,
    /// Total candidate-union size fed into the merge passes.
    pub parallel_candidates: u64,
    /// Server: request statistics keyed by `method endpoint`.
    pub endpoints: BTreeMap<String, EndpointStats>,
    /// Server: skyline queries answered from the result cache.
    pub cache_hits: u64,
    /// Server: streaming mutation deltas applied (`delta_applied`).
    pub deltas_applied: u64,
    /// Server: total skyline membership churn (entered + left) across
    /// all applied deltas.
    pub delta_churn: u64,
    /// Server: cached results patched forward by deltas.
    pub cache_patched: u64,
    /// Server: requests shed by the overload gate (503).
    pub shed_total: u64,
    /// Server: queries cancelled at their deadline (504).
    pub deadline_exceeded_total: u64,
    /// Server: handler panics isolated into 500s.
    pub panics_total: u64,
    /// Server: datasets recovered from WAL/snapshot at boot.
    pub recoveries: u64,
    /// Server: WAL records replayed across all boot recoveries.
    pub recovery_replayed: u64,
    /// Feed: `/changes` polls served (`feed_poll`).
    pub feed_polls: u64,
    /// Feed: polls that timed out into a heartbeat.
    pub feed_heartbeats: u64,
    /// Feed: change records shipped across all polls.
    pub feed_records_served: u64,
    /// Replication: follower apply batches (`replica_apply`).
    pub replica_applies: u64,
    /// Replication: change records applied across all batches.
    pub replica_records: u64,
    /// Replication: worst post-batch version lag observed.
    pub replica_max_lag: u64,
    /// Replication: full snapshot resyncs (`replica_resync`).
    pub replica_resyncs: u64,
    /// Failover: promotions accepted (`promotion`).
    pub promotions: u64,
    /// Failover: demotions accepted (`demotion`).
    pub demotions: u64,
    /// Failover: requests refused with 409 Fenced (`fenced_request`).
    pub fenced_requests: u64,
    /// Failover: suspicion events from the failure detector
    /// (`failover_suspect`).
    pub failover_suspects: u64,
    /// Failover: completed coordinator-driven failovers (`failover`).
    pub failovers: u64,
    /// Cluster: per-shard RPC statistics keyed by `shard <index>`.
    pub shard_rpcs: BTreeMap<String, EndpointStats>,
    /// Cluster: total attempts across all shard RPCs (retries included).
    pub shard_rpc_attempts: u64,
    /// Cluster: scatter-gather merges the coordinator performed.
    pub cluster_merges: u64,
    /// Cluster: merges that answered with a missing shard (`partial`).
    pub cluster_partial_merges: u64,
    /// Cluster: total candidate-union size over all coordinator merges.
    pub cluster_candidates: u64,
    /// Cluster: total coordinator-side merge time, microseconds.
    pub cluster_merge_us: u64,
    /// Per-stage latency histograms from `stage_breakdown` records,
    /// in first-seen order (which is pipeline order, since breakdowns
    /// list their stages accept → … → respond).
    pub stage_hists: Vec<(String, Histogram)>,
    /// `stage_breakdown` records observed.
    pub stage_breakdowns: u64,
    /// Total request wall-clock across all stage breakdowns, µs.
    pub stage_total_us: u64,
    /// Straggler attribution: how often each leg (e.g. `shard2`)
    /// bounded `shard_wait`.
    pub stragglers: BTreeMap<String, u64>,
    /// Merged distribution of trie query depth.
    pub trie_depth: Histogram,
    /// Merged distribution of candidates returned per container query.
    pub trie_candidates: Histogram,
    /// Total trie nodes visited, summed over every `trie_stats` event.
    pub trie_nodes: u64,
    /// Total container puts, summed over every `trie_stats` event.
    pub trie_entries: u64,
}

impl TraceSummary {
    /// Parse and aggregate a whole trace file.
    pub fn from_file(path: &Path) -> std::io::Result<TraceSummary> {
        Ok(Self::from_text(&std::fs::read_to_string(path)?))
    }

    /// Parse and aggregate trace text (one JSON object per line).
    pub fn from_text(text: &str) -> TraceSummary {
        let mut s = TraceSummary::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            s.lines += 1;
            match Value::parse(line) {
                Ok(v) => s.ingest(&v),
                Err(_) => s.skipped += 1,
            }
        }
        s
    }

    fn ingest(&mut self, v: &Value) {
        let Some(ty) = v.get("type").and_then(Value::as_str) else {
            self.skipped += 1;
            return;
        };
        *self.type_counts.entry(ty.to_string()).or_insert(0) += 1;
        match ty {
            "span_start" => {} // counted; durations come from span_end
            "span_end" => {
                let (Some(name), Some(dur)) = (
                    v.get("name").and_then(Value::as_str),
                    v.get("dur_us").and_then(Value::as_u64),
                ) else {
                    self.skipped += 1;
                    return;
                };
                let stats = self.spans.entry(name.to_string()).or_default();
                stats.count += 1;
                stats.total_us += dur;
                stats.max_us = stats.max_us.max(dur);
            }
            _ => match Event::from_value(v) {
                Some(Event::RunStart { .. }) => {}
                Some(Event::MergeIteration {
                    pruned,
                    subspace_hist,
                    ..
                }) => {
                    self.merge_iterations += 1;
                    self.merge_pruned += pruned;
                    if self.merge_subspace_buckets.len() < subspace_hist.len() {
                        self.merge_subspace_buckets.resize(subspace_hist.len(), 0);
                    }
                    for (acc, b) in self.merge_subspace_buckets.iter_mut().zip(&subspace_hist) {
                        *acc += b;
                    }
                }
                Some(Event::TrieStats {
                    nodes,
                    entries,
                    depth,
                    candidates,
                }) => {
                    self.trie_nodes += nodes;
                    self.trie_entries += entries;
                    self.trie_depth.merge(&depth);
                    self.trie_candidates.merge(&candidates);
                }
                Some(Event::ShardScan { elapsed_us, .. }) => {
                    self.shard_scans += 1;
                    self.shard_elapsed_us += elapsed_us;
                    self.shard_max_us = self.shard_max_us.max(elapsed_us);
                }
                Some(Event::ParallelMerge { candidates, .. }) => {
                    self.parallel_merges += 1;
                    self.parallel_candidates += candidates;
                }
                Some(Event::Request {
                    method,
                    endpoint,
                    status,
                    elapsed_us,
                    ..
                }) => {
                    let stats = self
                        .endpoints
                        .entry(format!("{method} {endpoint}"))
                        .or_default();
                    stats.count += 1;
                    stats.errors += u64::from(status >= 400);
                    stats.total_us += elapsed_us;
                    stats.max_us = stats.max_us.max(elapsed_us);
                }
                Some(Event::CacheHit { .. }) => self.cache_hits += 1,
                Some(Event::DeltaApplied {
                    entered,
                    left,
                    cache_patched,
                    ..
                }) => {
                    self.deltas_applied += 1;
                    self.delta_churn += entered + left;
                    self.cache_patched += cache_patched;
                }
                Some(Event::Shed { .. }) => self.shed_total += 1,
                Some(Event::DeadlineExceeded { .. }) => self.deadline_exceeded_total += 1,
                Some(Event::HandlerPanic { .. }) => self.panics_total += 1,
                Some(Event::Recovery { replayed, .. }) => {
                    self.recoveries += 1;
                    self.recovery_replayed += replayed;
                }
                Some(Event::FeedPoll {
                    returned,
                    heartbeat,
                    ..
                }) => {
                    self.feed_polls += 1;
                    self.feed_heartbeats += u64::from(heartbeat);
                    self.feed_records_served += returned;
                }
                Some(Event::ReplicaApply { records, lag, .. }) => {
                    self.replica_applies += 1;
                    self.replica_records += records;
                    self.replica_max_lag = self.replica_max_lag.max(lag);
                }
                Some(Event::ReplicaResync { .. }) => self.replica_resyncs += 1,
                Some(Event::Promotion { .. }) => self.promotions += 1,
                Some(Event::Demotion { .. }) => self.demotions += 1,
                Some(Event::FencedRequest { .. }) => self.fenced_requests += 1,
                Some(Event::FailoverSuspect { .. }) => self.failover_suspects += 1,
                Some(Event::Failover { .. }) => self.failovers += 1,
                Some(Event::ShardRpc {
                    shard,
                    status,
                    attempts,
                    elapsed_us,
                    ..
                }) => {
                    let stats = self.shard_rpcs.entry(format!("shard {shard}")).or_default();
                    stats.count += 1;
                    stats.errors += u64::from(status == 0 || status >= 400);
                    stats.total_us += elapsed_us;
                    stats.max_us = stats.max_us.max(elapsed_us);
                    self.shard_rpc_attempts += attempts;
                }
                Some(Event::StageBreakdown {
                    total_us,
                    stages,
                    straggler,
                    ..
                }) => {
                    self.stage_breakdowns += 1;
                    self.stage_total_us += total_us;
                    for (name, us) in stages {
                        match self.stage_hists.iter_mut().find(|(n, _)| *n == name) {
                            Some((_, h)) => h.record(us),
                            None => {
                                let mut h = Histogram::new();
                                h.record(us);
                                self.stage_hists.push((name, h));
                            }
                        }
                    }
                    if !straggler.is_empty() {
                        *self.stragglers.entry(straggler).or_insert(0) += 1;
                    }
                }
                Some(Event::ClusterMerge {
                    missing,
                    candidates,
                    elapsed_us,
                    ..
                }) => {
                    self.cluster_merges += 1;
                    self.cluster_partial_merges += u64::from(missing > 0);
                    self.cluster_candidates += candidates;
                    self.cluster_merge_us += elapsed_us;
                }
                Some(Event::RunSummary {
                    algorithm,
                    skyline_size,
                    dominance_tests,
                    container_gets,
                    elapsed_us,
                }) => {
                    let stats = self.algorithms.entry(algorithm).or_default();
                    stats.runs += 1;
                    stats.skyline_total += skyline_size;
                    stats.dominance_tests += dominance_tests;
                    stats.container_gets += container_gets;
                    stats.elapsed_us += elapsed_us;
                }
                None => self.skipped += 1,
            },
        }
    }

    /// Render the summary as plain-text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} records ({} skipped), {} event types",
            self.lines,
            self.skipped,
            self.type_counts.len()
        );
        if !self.type_counts.is_empty() {
            let _ = writeln!(out, "\n== records by type ==");
            for (ty, n) in &self.type_counts {
                let _ = writeln!(out, "  {ty:<18} {n:>8}");
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\n== phase timings ==");
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>12} {:>12} {:>12}",
                "span", "count", "total ms", "mean ms", "max ms"
            );
            for (name, s) in &self.spans {
                let mean = if s.count == 0 {
                    0.0
                } else {
                    s.total_us as f64 / s.count as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<12} {:>6} {:>12.3} {:>12.3} {:>12.3}",
                    name,
                    s.count,
                    s.total_us as f64 / 1e3,
                    mean / 1e3,
                    s.max_us as f64 / 1e3
                );
            }
        }
        if !self.algorithms.is_empty() {
            let _ = writeln!(out, "\n== algorithm runs ==");
            let _ = writeln!(
                out,
                "  {:<14} {:>5} {:>10} {:>14} {:>12} {:>10}",
                "algorithm", "runs", "skyline", "dom tests", "ctr gets", "ms"
            );
            for (name, a) in &self.algorithms {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>5} {:>10} {:>14} {:>12} {:>10.3}",
                    name,
                    a.runs,
                    a.skyline_total,
                    a.dominance_tests,
                    a.container_gets,
                    a.elapsed_us as f64 / 1e3
                );
            }
        }
        if self.merge_iterations > 0 {
            let _ = writeln!(out, "\n== merge phase ==");
            let _ = writeln!(out, "  iterations       {:>8}", self.merge_iterations);
            let _ = writeln!(out, "  points pruned    {:>8}", self.merge_pruned);
            let buckets: Vec<String> = self
                .merge_subspace_buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| format!("|D|={}:{}", i + 1, c))
                .collect();
            let _ = writeln!(
                out,
                "  subspace sizes   {}",
                if buckets.is_empty() {
                    "-".to_string()
                } else {
                    buckets.join(" ")
                }
            );
        }
        if self.shard_scans > 0 {
            let _ = writeln!(out, "\n== parallel engine ==");
            let _ = writeln!(out, "  shard scans      {:>8}", self.shard_scans);
            let _ = writeln!(
                out,
                "  worker cpu       {:>8.3} ms (max shard {:.3} ms)",
                self.shard_elapsed_us as f64 / 1e3,
                self.shard_max_us as f64 / 1e3
            );
            let _ = writeln!(out, "  merge passes     {:>8}", self.parallel_merges);
            let _ = writeln!(out, "  merge candidates {:>8}", self.parallel_candidates);
        }
        let server_counters = self.cache_hits
            + self.deltas_applied
            + self.shed_total
            + self.deadline_exceeded_total
            + self.panics_total
            + self.recoveries;
        if !self.endpoints.is_empty() || server_counters > 0 {
            let _ = writeln!(out, "\n== server ==");
            let _ = writeln!(
                out,
                "  {:<30} {:>7} {:>7} {:>10} {:>10}",
                "endpoint", "count", "errors", "mean ms", "max ms"
            );
            for (name, e) in &self.endpoints {
                let mean = if e.count == 0 {
                    0.0
                } else {
                    e.total_us as f64 / e.count as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<30} {:>7} {:>7} {:>10.3} {:>10.3}",
                    name,
                    e.count,
                    e.errors,
                    mean / 1e3,
                    e.max_us as f64 / 1e3
                );
            }
            let _ = writeln!(out, "  cache hits       {:>8}", self.cache_hits);
            if self.deltas_applied > 0 {
                let _ = writeln!(out, "  deltas applied   {:>8}", self.deltas_applied);
                let _ = writeln!(out, "  delta churn      {:>8}", self.delta_churn);
                let _ = writeln!(out, "  cache patched    {:>8}", self.cache_patched);
            }
            let _ = writeln!(out, "  shed (503)       {:>8}", self.shed_total);
            let _ = writeln!(
                out,
                "  deadline (504)   {:>8}",
                self.deadline_exceeded_total
            );
            let _ = writeln!(out, "  handler panics   {:>8}", self.panics_total);
            if self.recoveries > 0 {
                let _ = writeln!(
                    out,
                    "  recoveries       {:>8} ({} WAL records replayed)",
                    self.recoveries, self.recovery_replayed
                );
            }
        }
        if self.feed_polls + self.replica_applies + self.replica_resyncs > 0 {
            let _ = writeln!(out, "\n== replication ==");
            if self.feed_polls > 0 {
                let _ = writeln!(
                    out,
                    "  feed polls       {:>8} ({} heartbeats, {} records served)",
                    self.feed_polls, self.feed_heartbeats, self.feed_records_served
                );
            }
            if self.replica_applies > 0 {
                let _ = writeln!(
                    out,
                    "  apply batches    {:>8} ({} records, max lag {})",
                    self.replica_applies, self.replica_records, self.replica_max_lag
                );
            }
            let _ = writeln!(out, "  resyncs          {:>8}", self.replica_resyncs);
        }
        let failover_total = self.promotions
            + self.demotions
            + self.fenced_requests
            + self.failover_suspects
            + self.failovers;
        if failover_total > 0 {
            let _ = writeln!(out, "\n== failover ==");
            let _ = writeln!(
                out,
                "  failovers        {:>8} ({} suspicions)",
                self.failovers, self.failover_suspects
            );
            let _ = writeln!(
                out,
                "  role flips       {:>8} promotions, {} demotions",
                self.promotions, self.demotions
            );
            let _ = writeln!(out, "  fenced requests  {:>8}", self.fenced_requests);
        }
        if !self.shard_rpcs.is_empty() || self.cluster_merges > 0 {
            let _ = writeln!(out, "\n== cluster ==");
            if !self.shard_rpcs.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:<12} {:>7} {:>7} {:>10} {:>10}",
                    "shard", "rpcs", "errors", "mean ms", "max ms"
                );
                for (name, e) in &self.shard_rpcs {
                    let mean = if e.count == 0 {
                        0.0
                    } else {
                        e.total_us as f64 / e.count as f64
                    };
                    let _ = writeln!(
                        out,
                        "  {:<12} {:>7} {:>7} {:>10.3} {:>10.3}",
                        name,
                        e.count,
                        e.errors,
                        mean / 1e3,
                        e.max_us as f64 / 1e3
                    );
                }
                let _ = writeln!(out, "  rpc attempts     {:>8}", self.shard_rpc_attempts);
            }
            let _ = writeln!(
                out,
                "  merges           {:>8} ({} partial)",
                self.cluster_merges, self.cluster_partial_merges
            );
            let _ = writeln!(out, "  merge candidates {:>8}", self.cluster_candidates);
            let _ = writeln!(
                out,
                "  merge time       {:>8.3} ms",
                self.cluster_merge_us as f64 / 1e3
            );
        }
        if self.stage_breakdowns > 0 {
            out.push('\n');
            out.push_str(&self.render_stages());
        }
        if !self.trie_depth.is_empty() || !self.trie_candidates.is_empty() {
            let _ = writeln!(out, "\n== subset-index (trie) ==");
            let _ = writeln!(out, "  nodes visited    {:>8}", self.trie_nodes);
            let _ = writeln!(out, "  points stored    {:>8}", self.trie_entries);
            let _ = writeln!(
                out,
                "  query depth      mean {:.2}  max {}  [{}]",
                self.trie_depth.mean(),
                self.trie_depth.max(),
                self.trie_depth.render_compact()
            );
            let _ = writeln!(
                out,
                "  candidates/query mean {:.2}  max {}  [{}]",
                self.trie_candidates.mean(),
                self.trie_candidates.max(),
                self.trie_candidates.render_compact()
            );
        }
        out
    }

    /// The top-level stage (per-leg `shard{i}.*` detail excluded) with
    /// the largest total attributed time, and that total in µs.
    pub fn dominant_stage(&self) -> Option<(&str, u64)> {
        self.stage_hists
            .iter()
            .filter(|(name, _)| !name.contains('.'))
            .max_by_key(|(_, h)| h.sum())
            .map(|(name, h)| (name.as_str(), h.sum()))
    }

    /// Render the per-stage latency table (`skyline report --stages`):
    /// p50/p99/mean per stage, each top-level stage's share of the
    /// total attributed time, and the dominant stage.
    pub fn render_stages(&self) -> String {
        let mut out = String::new();
        if self.stage_breakdowns == 0 {
            let _ = writeln!(out, "no stage_breakdown records in this trace");
            return out;
        }
        let attributed: u64 = self
            .stage_hists
            .iter()
            .filter(|(name, _)| !name.contains('.'))
            .map(|(_, h)| h.sum())
            .sum();
        let _ = writeln!(
            out,
            "== stages == ({} breakdowns, {:.3} ms total wall-clock)",
            self.stage_breakdowns,
            self.stage_total_us as f64 / 1e3
        );
        let _ = writeln!(
            out,
            "  {:<18} {:>7} {:>10} {:>10} {:>10} {:>7}",
            "stage", "count", "p50 us", "p99 us", "total ms", "share"
        );
        for (name, h) in &self.stage_hists {
            let share = if name.contains('.') || attributed == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * h.sum() as f64 / attributed as f64)
            };
            let _ = writeln!(
                out,
                "  {:<18} {:>7} {:>10} {:>10} {:>10.3} {:>7}",
                name,
                h.count(),
                h.p50(),
                h.p99(),
                h.sum() as f64 / 1e3,
                share
            );
        }
        if let Some((name, sum)) = self.dominant_stage() {
            let share = if attributed == 0 {
                0.0
            } else {
                100.0 * sum as f64 / attributed as f64
            };
            let _ = writeln!(
                out,
                "  dominant stage   {name} ({share:.1}% of attributed time)"
            );
        }
        if !self.stragglers.is_empty() {
            let parts: Vec<String> = self
                .stragglers
                .iter()
                .map(|(leg, n)| format!("{leg}:{n}"))
                .collect();
            let _ = writeln!(out, "  stragglers       {}", parts.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{JsonlRecorder, Recorder};

    fn sample_trace() -> String {
        let mut r = JsonlRecorder::new(Vec::new());
        r.span_start("run");
        r.event(Event::RunStart {
            algorithm: "SDI-SUBSET".into(),
            points: 500,
            dims: 6,
        });
        r.span_start("merge");
        r.event(Event::MergeIteration {
            iteration: 0,
            pivot: 3,
            pruned: 120,
            survivors: 380,
            stable: 300,
            subspace_hist: vec![0, 5, 100, 275],
        });
        r.event(Event::MergeIteration {
            iteration: 1,
            pivot: 17,
            pruned: 40,
            survivors: 340,
            stable: 330,
            subspace_hist: vec![0, 2, 80, 258],
        });
        r.span_end("merge");
        r.span_start("scan");
        let mut depth = Histogram::new();
        depth.record(3);
        let mut cands = Histogram::new();
        cands.record(12);
        r.event(Event::TrieStats {
            nodes: 42,
            entries: 40,
            depth,
            candidates: cands,
        });
        r.span_end("scan");
        r.event(Event::RunSummary {
            algorithm: "SDI-SUBSET".into(),
            skyline_size: 99,
            dominance_tests: 12_345,
            container_gets: 340,
            elapsed_us: 777,
        });
        r.span_end("run");
        String::from_utf8(r.into_inner().unwrap()).unwrap()
    }

    #[test]
    fn aggregates_every_event_type() {
        let s = TraceSummary::from_text(&sample_trace());
        assert_eq!(s.skipped, 0);
        assert_eq!(
            s.type_counts.len(),
            6,
            "six distinct record types: {:?}",
            s.type_counts
        );
        assert_eq!(s.type_counts["merge_iteration"], 2);
        assert_eq!(s.merge_iterations, 2);
        assert_eq!(s.merge_pruned, 160);
        assert_eq!(s.merge_subspace_buckets, vec![0, 7, 180, 533]);
        assert_eq!(s.spans["run"].count, 1);
        assert_eq!(s.spans["merge"].count, 1);
        let a = &s.algorithms["SDI-SUBSET"];
        assert_eq!(a.runs, 1);
        assert_eq!(a.skyline_total, 99);
        assert_eq!(a.dominance_tests, 12_345);
        assert_eq!(s.trie_nodes, 42);
        assert_eq!(s.trie_depth.count(), 1);
        assert_eq!(s.trie_candidates.max(), 12);
    }

    #[test]
    fn render_mentions_each_section() {
        let s = TraceSummary::from_text(&sample_trace());
        let text = s.render();
        for needle in [
            "records by type",
            "phase timings",
            "algorithm runs",
            "merge phase",
            "subset-index (trie)",
            "SDI-SUBSET",
            "merge_iteration",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn parallel_events_aggregate_into_their_own_section() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.span_start("parallel_scan");
        for (shard, (lo, hi, us)) in [(0u64, 250u64, 900u64), (250, 500, 1400)]
            .iter()
            .enumerate()
        {
            r.event(Event::ShardScan {
                shard: shard as u64,
                lo: *lo,
                hi: *hi,
                skyline_size: 40 + shard as u64,
                dominance_tests: 1000,
                elapsed_us: *us,
            });
        }
        r.span_end("parallel_scan");
        r.event(Event::ParallelMerge {
            shard_skylines: vec![40, 41],
            candidates: 81,
            skyline_size: 77,
            dominance_tests: 300,
        });
        let text = String::from_utf8(r.into_inner().unwrap()).unwrap();
        let s = TraceSummary::from_text(&text);
        assert_eq!(s.skipped, 0);
        assert_eq!(s.shard_scans, 2);
        assert_eq!(s.shard_elapsed_us, 2300);
        assert_eq!(s.shard_max_us, 1400);
        assert_eq!(s.parallel_merges, 1);
        assert_eq!(s.parallel_candidates, 81);
        let rendered = s.render();
        assert!(rendered.contains("parallel engine"), "{rendered}");
        assert!(rendered.contains("merge candidates"), "{rendered}");
    }

    #[test]
    fn server_events_aggregate_into_their_own_section() {
        let mut r = JsonlRecorder::new(Vec::new());
        for (status, us) in [(200u64, 900u64), (200, 1500), (404, 80)] {
            r.event(Event::Request {
                method: "GET".into(),
                endpoint: "/skyline".into(),
                status,
                elapsed_us: us,
                trace: String::new(),
            });
        }
        r.event(Event::Request {
            method: "POST".into(),
            endpoint: "/datasets".into(),
            status: 201,
            elapsed_us: 4000,
            trace: "aabbccdd00112233".into(),
        });
        r.event(Event::CacheHit {
            dataset: "d".into(),
            algorithm: "SFS".into(),
            version: 3,
            trace: String::new(),
        });
        let text = String::from_utf8(r.into_inner().unwrap()).unwrap();
        let s = TraceSummary::from_text(&text);
        assert_eq!(s.skipped, 0);
        let sky = &s.endpoints["GET /skyline"];
        assert_eq!(sky.count, 3);
        assert_eq!(sky.errors, 1);
        assert_eq!(sky.total_us, 2480);
        assert_eq!(sky.max_us, 1500);
        assert_eq!(s.endpoints["POST /datasets"].count, 1);
        assert_eq!(s.cache_hits, 1);
        let rendered = s.render();
        assert!(rendered.contains("== server =="), "{rendered}");
        assert!(rendered.contains("GET /skyline"), "{rendered}");
        assert!(rendered.contains("cache hits"), "{rendered}");
    }

    #[test]
    fn robustness_events_aggregate_into_the_server_section() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.event(Event::Shed {
            endpoint: "/skyline".into(),
        });
        r.event(Event::Shed {
            endpoint: "/skyline".into(),
        });
        r.event(Event::DeadlineExceeded {
            dataset: "d".into(),
            algorithm: "SFS-SUBSET".into(),
            deadline_ms: 5,
        });
        r.event(Event::HandlerPanic {
            endpoint: "/metrics".into(),
        });
        r.event(Event::Recovery {
            dataset: "d".into(),
            replayed: 12,
            version: 30,
        });
        r.event(Event::Recovery {
            dataset: "e".into(),
            replayed: 3,
            version: 3,
        });
        let text = String::from_utf8(r.into_inner().unwrap()).unwrap();
        let s = TraceSummary::from_text(&text);
        assert_eq!(s.skipped, 0);
        assert_eq!(s.shed_total, 2);
        assert_eq!(s.deadline_exceeded_total, 1);
        assert_eq!(s.panics_total, 1);
        assert_eq!(s.recoveries, 2);
        assert_eq!(s.recovery_replayed, 15);
        let rendered = s.render();
        assert!(rendered.contains("== server =="), "{rendered}");
        assert!(rendered.contains("shed (503)"), "{rendered}");
        assert!(rendered.contains("deadline (504)"), "{rendered}");
        assert!(rendered.contains("handler panics"), "{rendered}");
        assert!(rendered.contains("15 WAL records replayed"), "{rendered}");
    }

    #[test]
    fn replication_events_aggregate_into_their_own_section() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.event(Event::FeedPoll {
            dataset: "hotels".into(),
            since: 10,
            returned: 4,
            next: 14,
            latest: 14,
            heartbeat: false,
        });
        r.event(Event::FeedPoll {
            dataset: "hotels".into(),
            since: 14,
            returned: 0,
            next: 14,
            latest: 14,
            heartbeat: true,
        });
        r.event(Event::ReplicaApply {
            dataset: "hotels".into(),
            version: 14,
            records: 4,
            lag: 2,
        });
        r.event(Event::ReplicaResync {
            dataset: "hotels".into(),
            version: 10,
            reason: "initial".into(),
        });
        let text = String::from_utf8(r.into_inner().unwrap()).unwrap();
        let s = TraceSummary::from_text(&text);
        assert_eq!(s.skipped, 0);
        assert_eq!(s.feed_polls, 2);
        assert_eq!(s.feed_heartbeats, 1);
        assert_eq!(s.feed_records_served, 4);
        assert_eq!(s.replica_applies, 1);
        assert_eq!(s.replica_records, 4);
        assert_eq!(s.replica_max_lag, 2);
        assert_eq!(s.replica_resyncs, 1);
        let rendered = s.render();
        assert!(rendered.contains("== replication =="), "{rendered}");
        assert!(rendered.contains("feed polls"), "{rendered}");
        assert!(rendered.contains("resyncs"), "{rendered}");
    }

    #[test]
    fn cluster_events_aggregate_into_their_own_section() {
        let mut r = JsonlRecorder::new(Vec::new());
        for (shard, status, attempts, us) in [
            (0u64, 200u64, 1u64, 800u64),
            (1, 200, 2, 2300),
            (1, 0, 3, 5000),
        ] {
            r.event(Event::ShardRpc {
                shard,
                endpoint: "/skyline".into(),
                status,
                attempts,
                elapsed_us: us,
                trace: "00112233aabbccdd".into(),
            });
        }
        r.event(Event::ClusterMerge {
            shards: 2,
            missing: 1,
            candidates: 90,
            skyline_size: 80,
            dominance_tests: 350,
            elapsed_us: 420,
        });
        r.event(Event::ClusterMerge {
            shards: 2,
            missing: 0,
            candidates: 110,
            skyline_size: 95,
            dominance_tests: 500,
            elapsed_us: 380,
        });
        let text = String::from_utf8(r.into_inner().unwrap()).unwrap();
        let s = TraceSummary::from_text(&text);
        assert_eq!(s.skipped, 0);
        assert_eq!(s.shard_rpcs["shard 0"].count, 1);
        assert_eq!(s.shard_rpcs["shard 1"].count, 2);
        assert_eq!(s.shard_rpcs["shard 1"].errors, 1, "status 0 is an error");
        assert_eq!(s.shard_rpc_attempts, 6);
        assert_eq!(s.cluster_merges, 2);
        assert_eq!(s.cluster_partial_merges, 1);
        assert_eq!(s.cluster_candidates, 200);
        assert_eq!(s.cluster_merge_us, 800);
        let rendered = s.render();
        assert!(rendered.contains("== cluster =="), "{rendered}");
        assert!(rendered.contains("shard 1"), "{rendered}");
        assert!(rendered.contains("(1 partial)"), "{rendered}");
    }

    #[test]
    fn stage_breakdowns_aggregate_and_render_the_dominant_stage() {
        let mut r = JsonlRecorder::new(Vec::new());
        for (wait, merge, straggler) in [(38_000u64, 1_200u64, "shard1"), (35_000, 900, "shard0")] {
            r.event(Event::StageBreakdown {
                trace: "deadbeef01234567".into(),
                endpoint: "/skyline".into(),
                total_us: wait + merge + 150,
                stages: vec![
                    ("accept".into(), 10),
                    ("route".into(), 5),
                    ("connect".into(), 60),
                    ("send".into(), 25),
                    ("shard_wait".into(), wait),
                    ("gather".into(), 30),
                    ("merge".into(), merge),
                    ("respond".into(), 20),
                    ("shard1.compute".into(), wait - 500),
                ],
                straggler: straggler.into(),
            });
        }
        let text = String::from_utf8(r.into_inner().unwrap()).unwrap();
        let s = TraceSummary::from_text(&text);
        assert_eq!(s.skipped, 0);
        assert_eq!(s.stage_breakdowns, 2);
        // First-seen order is pipeline order.
        assert_eq!(s.stage_hists[0].0, "accept");
        assert_eq!(s.stage_hists[4].0, "shard_wait");
        assert_eq!(s.stage_hists[4].1.count(), 2);
        // Per-leg detail never wins dominance; shard_wait does.
        let (dominant, _) = s.dominant_stage().expect("has stages");
        assert_eq!(dominant, "shard_wait");
        assert_eq!(s.stragglers["shard1"], 1);
        assert_eq!(s.stragglers["shard0"], 1);
        let rendered = s.render_stages();
        assert!(rendered.contains("== stages =="), "{rendered}");
        assert!(
            rendered.contains("dominant stage   shard_wait"),
            "{rendered}"
        );
        assert!(rendered.contains("stragglers"), "{rendered}");
        // The full render includes the stage section too.
        assert!(s.render().contains("== stages =="));
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let text = "not json\n{\"type\":\"mystery\"}\n{\"no_type\":1}\n\n";
        let s = TraceSummary::from_text(text);
        assert_eq!(s.lines, 3);
        // "mystery" has a type (counted) but parses to no event.
        assert_eq!(s.skipped, 3);
        assert_eq!(s.type_counts.get("mystery"), Some(&1));
    }

    #[test]
    fn empty_trace_renders() {
        let s = TraceSummary::from_text("");
        let text = s.render();
        assert!(text.contains("0 records"));
    }
}
